//! Synthetic censorship logs calibrated to the Syria statistic.
//!
//! §2.2 cites Chaabane et al.'s analysis of two days of leaked Syrian
//! proxy logs: **1.57 % of the population accessed at least one censored
//! site** — too many users for alert-on-every-censored-request targeting
//! to be actionable. The real logs are not available (and should not be),
//! so this module generates a synthetic log with the same aggregate shape:
//!
//! * per-user request counts are Poisson with mean `mean_requests`;
//! * each request independently hits censored content with probability
//!   `p_censored`;
//! * hence the fraction of users with ≥1 censored access is
//!   `1 − E[(1−p)^N] = 1 − exp(−λ·p)` — and `p` is solved from the target
//!   fraction in [`SyriaLogConfig::paper_calibrated`].

use underradar_netsim::rng::SimRng;
use underradar_netsim::time::{SimDuration, SimTime};

use crate::zipf::Zipf;

/// One log line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyriaLogEntry {
    /// Anonymous user id.
    pub user: u32,
    /// Request time within the log window.
    pub time: SimTime,
    /// Requested domain (rank into the popularity table, or a censored
    /// site name).
    pub domain: String,
    /// Whether the proxy censored the request.
    pub censored: bool,
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct SyriaLogConfig {
    /// Number of users in the population.
    pub users: u32,
    /// Log window (the leak covered two days).
    pub window: SimDuration,
    /// Mean requests per user over the window (Poisson λ).
    pub mean_requests: f64,
    /// Per-request probability of touching censored content.
    pub p_censored: f64,
    /// Number of ordinary domains (Zipf popularity).
    pub domains: usize,
    /// Names of censored sites requests may hit.
    pub censored_sites: Vec<String>,
}

impl SyriaLogConfig {
    /// Calibrated so the expected fraction of users with ≥1 censored
    /// access equals the paper's 1.57 %.
    pub fn paper_calibrated(users: u32) -> SyriaLogConfig {
        let target = 0.0157f64;
        let lambda = 100.0;
        // 1 - exp(-λ p) = target  =>  p = -ln(1 - target) / λ
        let p_censored = -(1.0 - target).ln() / lambda;
        SyriaLogConfig {
            users,
            window: SimDuration::from_days(2),
            mean_requests: lambda,
            p_censored,
            domains: 2000,
            censored_sites: vec![
                "facebook.com".to_string(),
                "youtube.com".to_string(),
                "twitter.com".to_string(),
                "aljazeera.net".to_string(),
                "wikileaks.org".to_string(),
            ],
        }
    }

    /// The analytic expectation of the fraction of users with ≥1 censored
    /// access under this config.
    pub fn expected_fraction(&self) -> f64 {
        1.0 - (-self.mean_requests * self.p_censored).exp()
    }
}

/// A generated log.
#[derive(Debug)]
pub struct SyriaLog {
    /// All entries, time-ordered per user (not globally sorted; sort if
    /// needed).
    pub entries: Vec<SyriaLogEntry>,
    /// Population size the log was generated for.
    pub users: u32,
}

impl SyriaLog {
    /// Generate a log.
    pub fn generate(config: &SyriaLogConfig, rng: &mut SimRng) -> SyriaLog {
        let zipf = Zipf::new(config.domains.max(1), 1.0);
        let mut entries = Vec::new();
        let window_ns = config.window.as_nanos();
        for user in 0..config.users {
            let n = poisson(config.mean_requests, rng);
            for _ in 0..n {
                let censored = rng.chance(config.p_censored);
                let domain = if censored {
                    config.censored_sites[rng.index(config.censored_sites.len().max(1))].clone()
                } else {
                    format!("site{}.example", zipf.sample(rng))
                };
                entries.push(SyriaLogEntry {
                    user,
                    time: SimTime::from_nanos(rng.range_u64(0, window_ns.max(1))),
                    domain,
                    censored,
                });
            }
        }
        SyriaLog {
            entries,
            users: config.users,
        }
    }

    /// Total requests.
    pub fn total_requests(&self) -> usize {
        self.entries.len()
    }

    /// Censored requests.
    pub fn censored_requests(&self) -> usize {
        self.entries.iter().filter(|e| e.censored).count()
    }

    /// Distinct users with at least one censored access.
    pub fn users_with_censored_access(&self) -> usize {
        let mut seen = vec![false; self.users as usize];
        for e in &self.entries {
            if e.censored {
                seen[e.user as usize] = true;
            }
        }
        seen.iter().filter(|&&s| s).count()
    }

    /// Mirror log-level totals into `tel` under `workloads.syria.*`,
    /// including the headline users-touching-censored-content fraction in
    /// parts-per-million. Idempotent.
    pub fn export_telemetry(&self, tel: &underradar_telemetry::Telemetry) {
        if !tel.is_enabled() {
            return;
        }
        tel.set_counter("workloads.syria.requests", self.total_requests() as u64);
        tel.set_counter(
            "workloads.syria.censored_requests",
            self.censored_requests() as u64,
        );
        tel.set_gauge("workloads.syria.users", i64::from(self.users));
        tel.set_gauge(
            "workloads.syria.users_censored",
            self.users_with_censored_access() as i64,
        );
        tel.set_gauge(
            "workloads.syria.users_censored_ppm",
            (self.fraction_users_censored() * 1e6).round() as i64,
        );
    }

    /// The headline statistic: fraction of the population that touched
    /// censored content at least once.
    pub fn fraction_users_censored(&self) -> f64 {
        if self.users == 0 {
            return 0.0;
        }
        self.users_with_censored_access() as f64 / self.users as f64
    }
}

/// Knuth's Poisson sampler (fine for λ ≤ a few hundred).
fn poisson(lambda: f64, rng: &mut SimRng) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0f64;
    loop {
        p *= rng.unit().max(f64::MIN_POSITIVE);
        if p <= l {
            return k;
        }
        k += 1;
        if k > 100_000 {
            return k; // guard against pathological λ
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_the_paper_fraction() {
        let config = SyriaLogConfig::paper_calibrated(30_000);
        assert!((config.expected_fraction() - 0.0157).abs() < 1e-9);
        let mut rng = SimRng::seed_from_u64(42);
        let log = SyriaLog::generate(&config, &mut rng);
        let frac = log.fraction_users_censored();
        assert!(
            (frac - 0.0157).abs() < 0.003,
            "measured {frac}, expected ≈0.0157"
        );
    }

    #[test]
    fn request_volume_matches_lambda() {
        let config = SyriaLogConfig::paper_calibrated(2_000);
        let mut rng = SimRng::seed_from_u64(7);
        let log = SyriaLog::generate(&config, &mut rng);
        let per_user = log.total_requests() as f64 / 2_000.0;
        assert!((per_user - 100.0).abs() < 3.0, "mean requests {per_user}");
    }

    #[test]
    fn censored_entries_use_censored_sites() {
        let config = SyriaLogConfig::paper_calibrated(500);
        let mut rng = SimRng::seed_from_u64(9);
        let log = SyriaLog::generate(&config, &mut rng);
        for e in log.entries.iter().filter(|e| e.censored) {
            assert!(config.censored_sites.contains(&e.domain), "{}", e.domain);
        }
        for e in log.entries.iter().filter(|e| !e.censored).take(100) {
            assert!(e.domain.starts_with("site"));
        }
    }

    #[test]
    fn times_inside_window() {
        let config = SyriaLogConfig::paper_calibrated(100);
        let mut rng = SimRng::seed_from_u64(3);
        let log = SyriaLog::generate(&config, &mut rng);
        let end = SimTime::ZERO + config.window;
        assert!(log.entries.iter().all(|e| e.time < end));
    }

    #[test]
    fn poisson_sampler_mean() {
        let mut rng = SimRng::seed_from_u64(11);
        let n = 5_000;
        let sum: u64 = (0..n).map(|_| u64::from(poisson(30.0, &mut rng))).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 30.0).abs() < 0.5, "poisson mean {mean}");
        assert_eq!(poisson(0.0, &mut rng), 0);
    }

    #[test]
    fn empty_population() {
        let mut config = SyriaLogConfig::paper_calibrated(0);
        config.users = 0;
        let mut rng = SimRng::seed_from_u64(1);
        let log = SyriaLog::generate(&config, &mut rng);
        assert_eq!(log.total_requests(), 0);
        assert_eq!(log.fraction_users_censored(), 0.0);
    }
}
