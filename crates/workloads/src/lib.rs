#![warn(missing_docs)]
// Library paths must surface failures as typed errors or documented
// invariant expects — never bare unwraps (test code is exempt).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! # underradar-workloads
//!
//! Synthetic traffic and log generators that stand in for the real-world
//! data sources the paper leans on:
//!
//! * [`zipf`] — a Zipf rank sampler (domain popularity is Zipfian; the
//!   blocked domains live in the unpopular tail).
//! * [`population`] — background "population" traffic for an access
//!   network: web browsing, DNS lookups, mail, P2P bulk transfer, and the
//!   constant Internet-wide scanning noise Durumeric et al. measured
//!   (10.8 M scans from 1.76 M hosts against a 5.5 M-address darknet in
//!   one month). The MVR's job is to cut this down; the measurements hide
//!   in it.
//! * [`syria`] — a synthetic censorship-log generator calibrated to the
//!   Chaabane et al. Syria statistic the paper's §2.2 argument uses:
//!   ≈1.57 % of the population accessed at least one censored site over
//!   two days — "far too many people for the surveillance system to
//!   pursue".

pub mod population;
pub mod syria;
pub mod targets;
pub mod zipf;

pub use population::{PopulationConfig, PopulationTraffic, TimedPacket};
pub use syria::{SyriaLog, SyriaLogConfig, SyriaLogEntry};
pub use zipf::Zipf;
