//! Campaign-scale target lists.
//!
//! Real measurement campaigns probe hundreds to thousands of URLs drawn
//! from curated test lists (the Citizen Lab lists OONI uses) plus
//! country-specific additions. This module provides deterministic target
//! lists at those scales without any network access: a small curated
//! sample of globally interesting domains, and a synthetic generator for
//! stress-scale campaigns. Plain domain strings only — mapping to
//! simulated addresses is the campaign engine's job.

/// A curated sample of measurement-list domains: global news, social
/// media, circumvention, and control sites — the categories §2 of the
/// paper calls out as commonly censored (and commonly measured).
pub fn curated_sample() -> Vec<&'static str> {
    vec![
        "twitter.com",
        "youtube.com",
        "bbc.com",
        "facebook.com",
        "wikipedia.org",
        "torproject.org",
        "psiphon.ca",
        "rferl.org",
        "aljazeera.com",
        "example.org",
    ]
}

/// The first `n` domains of the curated sample (clamped to its length).
pub fn curated(n: usize) -> Vec<&'static str> {
    let mut sample = curated_sample();
    sample.truncate(n);
    sample
}

/// A deterministic synthetic list of `n` distinct domains for
/// stress-scale campaigns ("site-007.example.net", ...). Same `n` always
/// yields the same list.
pub fn synthetic(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("site-{i:03}.example.net")).collect()
}

/// A campaign-scale mix: the curated sample padded with synthetic
/// domains up to `n` total.
pub fn campaign_mix(n: usize) -> Vec<String> {
    let mut out: Vec<String> = curated(n).into_iter().map(str::to_string).collect();
    let pad = n.saturating_sub(out.len());
    out.extend(synthetic(pad).into_iter().map(|d| format!("pad-{d}")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lists_are_deterministic_and_distinct() {
        assert_eq!(curated(3), vec!["twitter.com", "youtube.com", "bbc.com"]);
        assert_eq!(synthetic(2), synthetic(2));
        let mix = campaign_mix(25);
        assert_eq!(mix.len(), 25);
        let mut uniq = mix.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 25, "no duplicate domains");
    }

    #[test]
    fn curated_clamps() {
        assert_eq!(curated(999).len(), curated_sample().len());
    }
}
