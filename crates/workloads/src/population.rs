//! Background population traffic.
//!
//! Generates timestamped packets for an access network's ordinary
//! behaviour — web, DNS, mail, P2P — plus the Internet-wide scanning noise
//! that arrives from outside. Streams are fed to the surveillance system
//! (to exercise MVR volume accounting) and mixed with measurement traffic
//! (to check evasion against a realistic baseline, not silence).

use std::net::Ipv4Addr;

use underradar_netsim::addr::Cidr;
use underradar_netsim::packet::{Packet, PacketBody};
use underradar_netsim::rng::SimRng;
use underradar_netsim::time::{SimDuration, SimTime};
use underradar_netsim::wire::tcp::TcpFlags;

use crate::zipf::Zipf;

/// A packet with its generation time.
#[derive(Debug, Clone)]
pub struct TimedPacket {
    /// When the packet crosses the monitored link.
    pub time: SimTime,
    /// The packet.
    pub packet: Packet,
}

/// Rates and shape of the population.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// Number of client hosts.
    pub clients: usize,
    /// The access network prefix the clients live in.
    pub client_prefix: Cidr,
    /// Length of the generated window.
    pub duration: SimDuration,
    /// Aggregate web requests per second across the population.
    pub web_rps: f64,
    /// Aggregate DNS queries per second.
    pub dns_rps: f64,
    /// Aggregate mail deliveries per second.
    pub email_rps: f64,
    /// Aggregate P2P packets per second.
    pub p2p_pps: f64,
    /// Background scan SYNs per second arriving from the Internet
    /// (Durumeric-style noise; sources are external).
    pub scan_pps: f64,
    /// Number of distinct web domains (Zipf popularity).
    pub domains: usize,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            clients: 200,
            client_prefix: Cidr::slash16(Ipv4Addr::new(10, 20, 0, 0)),
            duration: SimDuration::from_secs(60),
            web_rps: 40.0,
            dns_rps: 30.0,
            email_rps: 2.0,
            p2p_pps: 25.0,
            scan_pps: 10.0,
            domains: 500,
        }
    }
}

/// The generator.
pub struct PopulationTraffic;

impl PopulationTraffic {
    /// The server address for a domain rank (stable mapping into
    /// TEST-NET-3-adjacent space).
    pub fn domain_ip(rank: usize) -> Ipv4Addr {
        Ipv4Addr::new(93, 184, (rank / 250) as u8, (rank % 250) as u8 + 1)
    }

    /// The domain name string for a rank.
    pub fn domain_name(rank: usize) -> String {
        format!("site{rank}.example")
    }

    /// Mirror a generated stream into `tel` under
    /// `workloads.population.*`: packet/byte totals, a wire-size
    /// histogram, and a span over the generation window. Idempotent for
    /// the counters; call once per stream (the span appends).
    pub fn export_telemetry(stream: &[TimedPacket], tel: &underradar_telemetry::Telemetry) {
        if !tel.is_enabled() {
            return;
        }
        let bytes: u64 = stream.iter().map(|t| t.packet.wire_len() as u64).sum();
        tel.set_counter("workloads.population.packets", stream.len() as u64);
        tel.set_counter("workloads.population.bytes", bytes);
        let hist = tel.histogram("workloads.population.pkt_bytes");
        for t in stream {
            hist.observe(t.packet.wire_len() as u64);
        }
        if let (Some(first), Some(last)) = (stream.first(), stream.last()) {
            tel.record_span(
                "workloads.population",
                first.time.as_nanos(),
                last.time.as_nanos(),
            );
        }
        // Provenance: when the flight recorder is live, one workload-stage
        // record names the traffic that fed the pipeline, so a trial's
        // causal chain starts from what was generated, not mid-stream.
        let tracer = tel.tracer();
        if tracer.is_live() {
            tracer.record(underradar_telemetry::TraceRecord {
                t_ns: stream.first().map(|t| t.time.as_nanos()).unwrap_or(0),
                seq: 0,
                stage: "workload",
                kind: "population_generated",
                flow: None,
                fields: vec![
                    ("packets", (stream.len() as u64).into()),
                    ("bytes", bytes.into()),
                ],
            });
        }
    }

    /// Generate the population's packet stream, sorted by time.
    pub fn generate(config: &PopulationConfig, rng: &mut SimRng) -> Vec<TimedPacket> {
        let mut out = Vec::new();
        let zipf = Zipf::new(config.domains.max(1), 1.0);
        let horizon = config.duration.as_secs_f64();
        let client_at = |i: u64, cfg: &PopulationConfig| {
            cfg.client_prefix.nth(1 + i % cfg.clients.max(1) as u64)
        };

        // Web: request + response pair per event.
        Self::poisson_events(
            config.web_rps,
            horizon,
            rng,
            |t, rng| {
                let client = client_at(rng.next_u64(), config);
                let rank = zipf.sample(rng);
                let server = Self::domain_ip(rank);
                let sport = 32768 + (rng.next_u32() % 28000) as u16;
                let req = format!(
                    "GET /page{} HTTP/1.0\r\nHost: {}\r\n\r\n",
                    rng.next_u32() % 50,
                    Self::domain_name(rank)
                );
                vec![
                    TimedPacket {
                        time: t,
                        packet: Packet::tcp(
                            client,
                            server,
                            sport,
                            80,
                            1,
                            1,
                            TcpFlags::psh_ack(),
                            req.into_bytes(),
                        ),
                    },
                    TimedPacket {
                        time: t + SimDuration::from_millis(30),
                        packet: Packet::tcp(
                            server,
                            client,
                            80,
                            sport,
                            1,
                            1,
                            TcpFlags::psh_ack(),
                            vec![b'x'; 400 + (rng.next_u32() % 1000) as usize],
                        ),
                    },
                ]
            },
            &mut out,
        );

        // DNS: query + response.
        Self::poisson_events(
            config.dns_rps,
            horizon,
            rng,
            |t, rng| {
                let client = client_at(rng.next_u64(), config);
                let rank = zipf.sample(rng);
                let resolver = Ipv4Addr::new(10, 20, 0, 53);
                let sport = 32768 + (rng.next_u32() % 28000) as u16;
                // A compact fake DNS payload (name in wire form) is enough for
                // classification and rule matching.
                let name = Self::domain_name(rank);
                let mut payload = vec![0x12, 0x34, 0x01, 0x00, 0x00, 0x01, 0, 0, 0, 0, 0, 0];
                for label in name.split('.') {
                    payload.push(label.len() as u8);
                    payload.extend_from_slice(label.as_bytes());
                }
                payload.extend_from_slice(&[0, 0, 1, 0, 1]);
                vec![
                    TimedPacket {
                        time: t,
                        packet: Packet::udp(client, resolver, sport, 53, payload.clone()),
                    },
                    TimedPacket {
                        time: t + SimDuration::from_millis(10),
                        packet: Packet::udp(resolver, client, 53, sport, payload),
                    },
                ]
            },
            &mut out,
        );

        // Email: a couple of SMTP data packets to the local MX.
        Self::poisson_events(
            config.email_rps,
            horizon,
            rng,
            |t, rng| {
                let client = client_at(rng.next_u64(), config);
                let mx = Ipv4Addr::new(10, 20, 0, 25);
                let sport = 32768 + (rng.next_u32() % 28000) as u16;
                vec![TimedPacket {
                    time: t,
                    packet: Packet::tcp(
                        client,
                        mx,
                        sport,
                        25,
                        1,
                        1,
                        TcpFlags::psh_ack(),
                        b"MAIL FROM:<user@campus.example>\r\n".to_vec(),
                    ),
                }]
            },
            &mut out,
        );

        // P2P: raw bulk packets between a stable subset of clients and the
        // outside world.
        Self::poisson_events(
            config.p2p_pps,
            horizon,
            rng,
            |t, rng| {
                let client = client_at(rng.next_u64() % 16, config); // a few heavy hitters
                let peer = Ipv4Addr::new(
                    100 + (rng.next_u32() % 100) as u8,
                    rng.next_u32() as u8,
                    rng.next_u32() as u8,
                    1 + (rng.next_u32() % 250) as u8,
                );
                vec![TimedPacket {
                    time: t,
                    packet: Packet {
                        src: client,
                        dst: peer,
                        ttl: 64,
                        ident: 0,
                        body: PacketBody::Raw {
                            protocol: 99,
                            payload: vec![0u8; 700 + (rng.next_u32() % 600) as usize],
                        },
                    },
                }]
            },
            &mut out,
        );

        // Background scanning from outside (high source fanout, SYNs).
        Self::poisson_events(
            config.scan_pps,
            horizon,
            rng,
            |t, rng| {
                // Scanner sources come from public space well outside the
                // access prefix (first octet 120..209).
                let scanner = Ipv4Addr::new(
                    120 + (rng.next_u32() % 90) as u8,
                    rng.next_u32() as u8,
                    rng.next_u32() as u8,
                    1 + (rng.next_u32() % 250) as u8,
                );
                let victim = config.client_prefix.nth(rng.next_u64() % 65_000);
                let port = [22u16, 23, 80, 443, 445, 3389][(rng.next_u32() % 6) as usize];
                vec![TimedPacket {
                    time: t,
                    packet: Packet::tcp(
                        scanner,
                        victim,
                        54321,
                        port,
                        0,
                        0,
                        TcpFlags::syn(),
                        vec![],
                    ),
                }]
            },
            &mut out,
        );

        out.sort_by_key(|tp| tp.time);
        out
    }

    fn poisson_events<F>(
        rate: f64,
        horizon_secs: f64,
        rng: &mut SimRng,
        mut make: F,
        out: &mut Vec<TimedPacket>,
    ) where
        F: FnMut(SimTime, &mut SimRng) -> Vec<TimedPacket>,
    {
        if rate <= 0.0 {
            return;
        }
        let mut t = 0.0f64;
        loop {
            t += rng.exp(1.0 / rate);
            if t >= horizon_secs {
                break;
            }
            let at = SimTime::from_nanos((t * 1e9) as u64);
            out.extend(make(at, rng));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generate(seed: u64) -> Vec<TimedPacket> {
        let mut rng = SimRng::seed_from_u64(seed);
        PopulationTraffic::generate(&PopulationConfig::default(), &mut rng)
    }

    #[test]
    fn stream_is_time_sorted_and_bounded() {
        let stream = generate(1);
        assert!(!stream.is_empty());
        for w in stream.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        let horizon = PopulationConfig::default().duration + SimDuration::from_millis(40);
        assert!(stream.iter().all(|tp| tp.time < SimTime::ZERO + horizon));
    }

    #[test]
    fn rates_are_roughly_respected() {
        let stream = generate(2);
        let cfg = PopulationConfig::default();
        let web = stream
            .iter()
            .filter(|tp| tp.packet.dst_port() == Some(80))
            .count() as f64;
        let expected = cfg.web_rps * cfg.duration.as_secs_f64();
        assert!(
            (web - expected).abs() < expected * 0.35,
            "web {web} vs {expected}"
        );
        let dns_q = stream
            .iter()
            .filter(|tp| tp.packet.dst_port() == Some(53))
            .count();
        assert!(dns_q > 0);
    }

    #[test]
    fn traffic_mix_has_all_classes() {
        let stream = generate(3);
        assert!(
            stream.iter().any(|tp| tp.packet.dst_port() == Some(80)),
            "web"
        );
        assert!(
            stream.iter().any(|tp| tp.packet.dst_port() == Some(53)),
            "dns"
        );
        assert!(
            stream.iter().any(|tp| tp.packet.dst_port() == Some(25)),
            "email"
        );
        assert!(
            stream
                .iter()
                .any(|tp| matches!(tp.packet.body, PacketBody::Raw { .. })),
            "p2p"
        );
        assert!(
            stream.iter().any(|tp| tp
                .packet
                .as_tcp()
                .map(|t| t.flags.has_syn() && !t.flags.has_ack())
                .unwrap_or(false)),
            "scanning"
        );
    }

    #[test]
    fn clients_live_in_prefix_and_scanners_outside() {
        let stream = generate(4);
        let cfg = PopulationConfig::default();
        for tp in &stream {
            // Web *requests* (scanner SYNs to port 80 carry no payload).
            if tp.packet.dst_port() == Some(80)
                && tp
                    .packet
                    .as_tcp()
                    .map(|t| !t.payload.is_empty())
                    .unwrap_or(false)
            {
                assert!(
                    cfg.client_prefix.contains(tp.packet.src),
                    "web client in prefix"
                );
            }
            if let Some(t) = tp.packet.as_tcp() {
                if t.flags.has_syn() && !t.flags.has_ack() && t.src_port == 54321 {
                    assert!(
                        !cfg.client_prefix.contains(tp.packet.src),
                        "scanner outside"
                    );
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(9);
        let b = generate(9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.time, y.time);
            assert_eq!(x.packet, y.packet);
        }
    }

    #[test]
    fn export_telemetry_records_workload_provenance_when_traced() {
        let stream = generate(5);
        let tel = underradar_telemetry::Telemetry::with_trace(16);
        PopulationTraffic::export_telemetry(&stream, &tel);
        let records = tel.tracer().records();
        assert_eq!(records.len(), 1, "one provenance record per stream");
        let r = &records[0];
        assert_eq!((r.stage, r.kind), ("workload", "population_generated"));
        assert_eq!(r.field_u64("packets"), Some(stream.len() as u64));
        assert_eq!(r.t_ns, stream[0].time.as_nanos());
        // Untraced telemetry records nothing and costs one branch.
        let plain = underradar_telemetry::Telemetry::enabled();
        PopulationTraffic::export_telemetry(&stream, &plain);
        assert!(plain.tracer().records().is_empty());
    }

    #[test]
    fn zero_rates_generate_nothing() {
        let cfg = PopulationConfig {
            web_rps: 0.0,
            dns_rps: 0.0,
            email_rps: 0.0,
            p2p_pps: 0.0,
            scan_pps: 0.0,
            ..PopulationConfig::default()
        };
        let mut rng = SimRng::seed_from_u64(1);
        assert!(PopulationTraffic::generate(&cfg, &mut rng).is_empty());
    }

    #[test]
    fn domain_mapping_is_stable() {
        assert_eq!(
            PopulationTraffic::domain_ip(0),
            PopulationTraffic::domain_ip(0)
        );
        assert_ne!(
            PopulationTraffic::domain_ip(0),
            PopulationTraffic::domain_ip(1)
        );
        assert_eq!(PopulationTraffic::domain_name(7), "site7.example");
    }
}
