//! Zipf-distributed rank sampling.
//!
//! Domain popularity, request targets and similar heavy-tailed choices are
//! sampled from a Zipf distribution with exponent `s` over `n` ranks.
//! Implemented with a precomputed CDF and binary search; construction is
//! O(n), sampling O(log n).

use underradar_netsim::rng::SimRng;

/// A Zipf sampler over ranks `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s` (s = 1.0 is the
    /// classic Zipf). `n` of zero yields a degenerate sampler returning 0.
    pub fn new(n: usize, s: f64) -> Zipf {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc.max(f64::MIN_POSITIVE);
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is degenerate.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Sample a rank in `0..n` (0 = most popular).
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        if self.cdf.is_empty() {
            return 0;
        }
        let u = rng.unit();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).unwrap_or(std::cmp::Ordering::Equal))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// The probability mass of a rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_dominates_tail() {
        let z = Zipf::new(1000, 1.0);
        assert!(z.pmf(0) > z.pmf(10));
        assert!(z.pmf(10) > z.pmf(500));
        let mut rng = SimRng::seed_from_u64(1);
        let mut head = 0;
        let n = 50_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        let frac = head as f64 / n as f64;
        // For Zipf(1.0, 1000): mass of top-10 ≈ H(10)/H(1000) ≈ 2.93/7.49 ≈ 0.39.
        assert!((frac - 0.39).abs() < 0.03, "head mass {frac}");
    }

    #[test]
    fn samples_cover_range() {
        let z = Zipf::new(50, 1.0);
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 50);
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(200, 1.2);
        let total: f64 = (0..200).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.pmf(999), 0.0);
    }

    #[test]
    fn degenerate_cases() {
        let z = Zipf::new(0, 1.0);
        assert!(z.is_empty());
        let mut rng = SimRng::seed_from_u64(3);
        assert_eq!(z.sample(&mut rng), 0);
        let z1 = Zipf::new(1, 1.0);
        assert_eq!(z1.sample(&mut rng), 0);
        assert_eq!(z1.len(), 1);
    }

    #[test]
    fn flat_exponent_is_uniformish() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-9);
        }
    }
}
