//! The owned packet representation circulated inside the simulator.
//!
//! Nodes exchange parsed [`Packet`]s rather than raw bytes for convenience,
//! but every packet can be serialized to canonical wire bytes ([`Packet::to_wire`])
//! and re-parsed ([`Packet::from_wire`]); the property tests assert the two
//! are inverses, so the parsed form is a faithful stand-in for the wire.

use std::fmt;
use std::net::Ipv4Addr;

use crate::error::WireError;
use crate::wire::icmp::{IcmpKind, IcmpRepr};
use crate::wire::ipv4::{IpProtocol, Ipv4Repr, DEFAULT_TTL};
use crate::wire::tcp::{TcpFlags, TcpRepr};
use crate::wire::udp::UdpRepr;

/// A TCP segment: header fields plus payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Flags.
    pub flags: TcpFlags,
    /// Advertised window.
    pub window: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// A UDP datagram: ports plus payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// An ICMP message plus its payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcmpSegment {
    /// Message kind.
    pub kind: IcmpKind,
    /// Payload (quoted packet bytes for errors, echo data for pings).
    pub payload: Vec<u8>,
}

/// The transport-layer body of a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketBody {
    /// A TCP segment.
    Tcp(TcpSegment),
    /// A UDP datagram.
    Udp(UdpDatagram),
    /// An ICMP message.
    Icmp(IcmpSegment),
    /// An opaque payload under an unhandled IP protocol (e.g. the P2P-ish
    /// background traffic uses protocol 99 payloads).
    Raw {
        /// IP protocol number.
        protocol: u8,
        /// Raw payload bytes.
        payload: Vec<u8>,
    },
}

impl PacketBody {
    /// The IP protocol this body is carried under.
    pub fn protocol(&self) -> IpProtocol {
        match self {
            PacketBody::Tcp(_) => IpProtocol::Tcp,
            PacketBody::Udp(_) => IpProtocol::Udp,
            PacketBody::Icmp(_) => IpProtocol::Icmp,
            PacketBody::Raw { protocol, .. } => IpProtocol::from_number(*protocol),
        }
    }

    /// The application payload bytes, if any (TCP/UDP payload, ICMP data,
    /// raw body).
    pub fn payload(&self) -> &[u8] {
        match self {
            PacketBody::Tcp(t) => &t.payload,
            PacketBody::Udp(u) => &u.payload,
            PacketBody::Icmp(i) => &i.payload,
            PacketBody::Raw { payload, .. } => payload,
        }
    }

    /// Mutable access to the application payload bytes (used by link-level
    /// corruption to flip a byte in transit).
    pub fn payload_mut(&mut self) -> &mut Vec<u8> {
        match self {
            PacketBody::Tcp(t) => &mut t.payload,
            PacketBody::Udp(u) => &mut u.payload,
            PacketBody::Icmp(i) => &mut i.payload,
            PacketBody::Raw { payload, .. } => payload,
        }
    }
}

/// An IPv4 packet flowing through the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Source address (unvalidated; spoofing is a first-class capability).
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Time to live.
    pub ttl: u8,
    /// IP identification field.
    pub ident: u16,
    /// Transport body.
    pub body: PacketBody,
}

impl Packet {
    /// Build a TCP packet with the default TTL.
    #[allow(clippy::too_many_arguments)]
    pub fn tcp(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        seq: u32,
        ack: u32,
        flags: TcpFlags,
        payload: Vec<u8>,
    ) -> Packet {
        Packet {
            src,
            dst,
            ttl: DEFAULT_TTL,
            ident: 0,
            body: PacketBody::Tcp(TcpSegment {
                src_port,
                dst_port,
                seq,
                ack,
                flags,
                window: 65535,
                payload,
            }),
        }
    }

    /// Build a UDP packet with the default TTL.
    pub fn udp(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: Vec<u8>,
    ) -> Packet {
        Packet {
            src,
            dst,
            ttl: DEFAULT_TTL,
            ident: 0,
            body: PacketBody::Udp(UdpDatagram {
                src_port,
                dst_port,
                payload,
            }),
        }
    }

    /// Build an ICMP packet with the default TTL.
    pub fn icmp(src: Ipv4Addr, dst: Ipv4Addr, kind: IcmpKind, payload: Vec<u8>) -> Packet {
        Packet {
            src,
            dst,
            ttl: DEFAULT_TTL,
            ident: 0,
            body: PacketBody::Icmp(IcmpSegment { kind, payload }),
        }
    }

    /// Override the TTL (builder style) — used by TTL-limited replies.
    pub fn with_ttl(mut self, ttl: u8) -> Packet {
        self.ttl = ttl;
        self
    }

    /// Override the IP identification field (builder style).
    pub fn with_ident(mut self, ident: u16) -> Packet {
        self.ident = ident;
        self
    }

    /// Override the advertised TCP window (builder style). No-op for
    /// non-TCP bodies.
    pub fn with_tcp_window(mut self, window: u16) -> Packet {
        if let PacketBody::Tcp(seg) = &mut self.body {
            seg.window = window;
        }
        self
    }

    /// The TCP segment, if this is a TCP packet.
    pub fn as_tcp(&self) -> Option<&TcpSegment> {
        match &self.body {
            PacketBody::Tcp(t) => Some(t),
            _ => None,
        }
    }

    /// The UDP datagram, if this is a UDP packet.
    pub fn as_udp(&self) -> Option<&UdpDatagram> {
        match &self.body {
            PacketBody::Udp(u) => Some(u),
            _ => None,
        }
    }

    /// The ICMP segment, if this is an ICMP packet.
    pub fn as_icmp(&self) -> Option<&IcmpSegment> {
        match &self.body {
            PacketBody::Icmp(i) => Some(i),
            _ => None,
        }
    }

    /// The flow key the flight recorder attaches to decision records for
    /// this packet (ports 0 when the body has none).
    pub fn trace_flow(&self) -> underradar_telemetry::TraceFlow {
        underradar_telemetry::TraceFlow {
            src: self.src,
            src_port: self.src_port().unwrap_or(0),
            dst: self.dst,
            dst_port: self.dst_port().unwrap_or(0),
        }
    }

    /// Source transport port, if the body has one.
    pub fn src_port(&self) -> Option<u16> {
        match &self.body {
            PacketBody::Tcp(t) => Some(t.src_port),
            PacketBody::Udp(u) => Some(u.src_port),
            _ => None,
        }
    }

    /// Destination transport port, if the body has one.
    pub fn dst_port(&self) -> Option<u16> {
        match &self.body {
            PacketBody::Tcp(t) => Some(t.dst_port),
            PacketBody::Udp(u) => Some(u.dst_port),
            _ => None,
        }
    }

    /// Total wire length in bytes (IP header + transport header + payload).
    pub fn wire_len(&self) -> usize {
        let transport = match &self.body {
            PacketBody::Tcp(t) => crate::wire::tcp::HEADER_LEN + t.payload.len(),
            PacketBody::Udp(u) => crate::wire::udp::HEADER_LEN + u.payload.len(),
            PacketBody::Icmp(i) => crate::wire::icmp::HEADER_LEN + i.payload.len(),
            PacketBody::Raw { payload, .. } => payload.len(),
        };
        crate::wire::ipv4::HEADER_LEN + transport
    }

    /// Serialize to canonical wire bytes with valid checksums.
    pub fn to_wire(&self) -> Vec<u8> {
        let transport = match &self.body {
            PacketBody::Tcp(t) => TcpRepr {
                src_port: t.src_port,
                dst_port: t.dst_port,
                seq: t.seq,
                ack: t.ack,
                flags: t.flags,
                window: t.window,
            }
            .emit(&t.payload, self.src, self.dst),
            PacketBody::Udp(u) => UdpRepr {
                src_port: u.src_port,
                dst_port: u.dst_port,
            }
            .emit(&u.payload, self.src, self.dst),
            PacketBody::Icmp(i) => IcmpRepr { kind: i.kind }.emit(&i.payload),
            PacketBody::Raw { payload, .. } => payload.clone(),
        };
        Ipv4Repr {
            src: self.src,
            dst: self.dst,
            protocol: self.body.protocol(),
            ttl: self.ttl,
            ident: self.ident,
            payload_len: transport.len(),
        }
        .emit(&transport)
    }

    /// Parse a packet from wire bytes, verifying all checksums.
    pub fn from_wire(buf: &[u8]) -> Result<Packet, WireError> {
        let (ip, off) = Ipv4Repr::parse(buf)?;
        let seg = &buf[off..off + ip.payload_len];
        let body = match ip.protocol {
            IpProtocol::Tcp => {
                let (tcp, poff) = TcpRepr::parse(seg, ip.src, ip.dst)?;
                PacketBody::Tcp(TcpSegment {
                    src_port: tcp.src_port,
                    dst_port: tcp.dst_port,
                    seq: tcp.seq,
                    ack: tcp.ack,
                    flags: tcp.flags,
                    window: tcp.window,
                    payload: seg[poff..].to_vec(),
                })
            }
            IpProtocol::Udp => {
                let (udp, poff) = UdpRepr::parse(seg, ip.src, ip.dst)?;
                PacketBody::Udp(UdpDatagram {
                    src_port: udp.src_port,
                    dst_port: udp.dst_port,
                    payload: seg[poff..].to_vec(),
                })
            }
            IpProtocol::Icmp => {
                let (icmp, poff) = IcmpRepr::parse(seg)?;
                PacketBody::Icmp(IcmpSegment {
                    kind: icmp.kind,
                    payload: seg[poff..].to_vec(),
                })
            }
            IpProtocol::Other(protocol) => PacketBody::Raw {
                protocol,
                payload: seg.to_vec(),
            },
        };
        Ok(Packet {
            src: ip.src,
            dst: ip.dst,
            ttl: ip.ttl,
            ident: ip.ident,
            body,
        })
    }

    /// A compact single-line summary for traces and debugging.
    pub fn summary(&self) -> String {
        match &self.body {
            PacketBody::Tcp(t) => format!(
                "{}:{} > {}:{} TCP [{}] seq={} ack={} len={}",
                self.src,
                t.src_port,
                self.dst,
                t.dst_port,
                t.flags,
                t.seq,
                t.ack,
                t.payload.len()
            ),
            PacketBody::Udp(u) => format!(
                "{}:{} > {}:{} UDP len={}",
                self.src,
                u.src_port,
                self.dst,
                u.dst_port,
                u.payload.len()
            ),
            PacketBody::Icmp(i) => {
                format!("{} > {} ICMP {:?}", self.src, self.dst, i.kind)
            }
            PacketBody::Raw { protocol, payload } => {
                format!(
                    "{} > {} proto={} len={}",
                    self.src,
                    self.dst,
                    protocol,
                    payload.len()
                )
            }
        }
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    #[test]
    fn tcp_wire_roundtrip() {
        let p = Packet::tcp(
            A,
            B,
            4000,
            80,
            100,
            200,
            TcpFlags::psh_ack(),
            b"GET /".to_vec(),
        )
        .with_ttl(33)
        .with_ident(7);
        let wire = p.to_wire();
        let q = Packet::from_wire(&wire).expect("roundtrip");
        assert_eq!(p, q);
    }

    #[test]
    fn udp_wire_roundtrip() {
        let p = Packet::udp(A, B, 5555, 53, b"query".to_vec());
        assert_eq!(Packet::from_wire(&p.to_wire()).expect("roundtrip"), p);
    }

    #[test]
    fn icmp_wire_roundtrip() {
        let p = Packet::icmp(A, B, IcmpKind::TimeExceeded, vec![1, 2, 3]);
        assert_eq!(Packet::from_wire(&p.to_wire()).expect("roundtrip"), p);
    }

    #[test]
    fn raw_wire_roundtrip() {
        let p = Packet {
            src: A,
            dst: B,
            ttl: 9,
            ident: 0,
            body: PacketBody::Raw {
                protocol: 99,
                payload: b"p2p-chunk".to_vec(),
            },
        };
        assert_eq!(Packet::from_wire(&p.to_wire()).expect("roundtrip"), p);
    }

    #[test]
    fn wire_len_matches_emitted_length() {
        let cases = vec![
            Packet::tcp(A, B, 1, 2, 0, 0, TcpFlags::syn(), vec![]),
            Packet::udp(A, B, 1, 2, vec![0; 37]),
            Packet::icmp(A, B, IcmpKind::EchoRequest { ident: 1, seq: 2 }, vec![0; 5]),
        ];
        for p in cases {
            assert_eq!(p.wire_len(), p.to_wire().len(), "{}", p.summary());
        }
    }

    #[test]
    fn accessors() {
        let p = Packet::tcp(A, B, 1234, 80, 0, 0, TcpFlags::syn(), vec![]);
        assert_eq!(p.src_port(), Some(1234));
        assert_eq!(p.dst_port(), Some(80));
        assert!(p.as_tcp().is_some());
        assert!(p.as_udp().is_none());
        let p = Packet::icmp(A, B, IcmpKind::TimeExceeded, vec![]);
        assert_eq!(p.src_port(), None);
        assert!(p.as_icmp().is_some());
    }

    #[test]
    fn summary_contains_endpoints() {
        let p = Packet::tcp(A, B, 1234, 80, 5, 0, TcpFlags::syn(), vec![]);
        let s = p.summary();
        assert!(s.contains("10.0.0.1:1234"));
        assert!(s.contains("10.0.0.2:80"));
        assert!(s.contains("[S]"));
    }

    #[test]
    fn corrupted_wire_fails_cleanly() {
        let p = Packet::udp(A, B, 1, 53, b"hello".to_vec());
        let mut wire = p.to_wire();
        wire[25] ^= 0x55; // corrupt a UDP payload byte
        assert!(Packet::from_wire(&wire).is_err());
        assert!(Packet::from_wire(&[]).is_err());
    }
}
