//! IPv4 prefix (CIDR) handling.
//!
//! Used for switch routing tables, ingress-filter scopes (/24 and /16 per
//! Beverly et al.), and attribution granularity in the surveillance model.

use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An IPv4 CIDR prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cidr {
    network: Ipv4Addr,
    prefix: u8,
}

/// Error parsing a CIDR string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CidrParseError(String);

impl fmt::Display for CidrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid CIDR: {}", self.0)
    }
}

impl std::error::Error for CidrParseError {}

impl Cidr {
    /// Create a prefix; host bits of `addr` are masked off. Prefix lengths
    /// above 32 are clamped to 32.
    pub fn new(addr: Ipv4Addr, prefix: u8) -> Cidr {
        let prefix = prefix.min(32);
        let network = Ipv4Addr::from(u32::from(addr) & Self::mask(prefix));
        Cidr { network, prefix }
    }

    /// A /32 covering exactly one address.
    pub fn host(addr: Ipv4Addr) -> Cidr {
        Cidr::new(addr, 32)
    }

    /// The /24 containing `addr`.
    pub fn slash24(addr: Ipv4Addr) -> Cidr {
        Cidr::new(addr, 24)
    }

    /// The /16 containing `addr`.
    pub fn slash16(addr: Ipv4Addr) -> Cidr {
        Cidr::new(addr, 16)
    }

    fn mask(prefix: u8) -> u32 {
        if prefix == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(prefix.min(32)))
        }
    }

    /// The network address.
    pub fn network(&self) -> Ipv4Addr {
        self.network
    }

    /// The prefix length.
    pub fn prefix(&self) -> u8 {
        self.prefix
    }

    /// Whether `addr` is inside this prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        u32::from(addr) & Self::mask(self.prefix) == u32::from(self.network)
    }

    /// Number of addresses covered by the prefix.
    pub fn size(&self) -> u64 {
        1u64 << (32 - u32::from(self.prefix))
    }

    /// The `i`-th address in the prefix (wrapping within the prefix), handy
    /// for generating host populations.
    pub fn nth(&self, i: u64) -> Ipv4Addr {
        let offset = (i % self.size()) as u32;
        Ipv4Addr::from(u32::from(self.network).wrapping_add(offset))
    }
}

impl fmt::Display for Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network, self.prefix)
    }
}

impl FromStr for Cidr {
    type Err = CidrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, prefix) = s
            .split_once('/')
            .ok_or_else(|| CidrParseError(s.to_string()))?;
        let addr: Ipv4Addr = addr.parse().map_err(|_| CidrParseError(s.to_string()))?;
        let prefix: u8 = prefix.parse().map_err(|_| CidrParseError(s.to_string()))?;
        if prefix > 32 {
            return Err(CidrParseError(s.to_string()));
        }
        Ok(Cidr::new(addr, prefix))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_host_bits() {
        let c = Cidr::new(Ipv4Addr::new(10, 1, 2, 3), 24);
        assert_eq!(c.network(), Ipv4Addr::new(10, 1, 2, 0));
        assert_eq!(c.to_string(), "10.1.2.0/24");
    }

    #[test]
    fn contains_boundaries() {
        let c = Cidr::new(Ipv4Addr::new(192, 168, 4, 0), 22);
        assert!(c.contains(Ipv4Addr::new(192, 168, 4, 0)));
        assert!(c.contains(Ipv4Addr::new(192, 168, 7, 255)));
        assert!(!c.contains(Ipv4Addr::new(192, 168, 8, 0)));
        assert!(!c.contains(Ipv4Addr::new(192, 168, 3, 255)));
    }

    #[test]
    fn zero_prefix_contains_everything() {
        let c = Cidr::new(Ipv4Addr::new(0, 0, 0, 0), 0);
        assert!(c.contains(Ipv4Addr::new(255, 255, 255, 255)));
        assert!(c.contains(Ipv4Addr::new(1, 2, 3, 4)));
        assert_eq!(c.size(), 1 << 32);
    }

    #[test]
    fn host_prefix() {
        let a = Ipv4Addr::new(8, 8, 8, 8);
        let c = Cidr::host(a);
        assert!(c.contains(a));
        assert!(!c.contains(Ipv4Addr::new(8, 8, 8, 9)));
        assert_eq!(c.size(), 1);
    }

    #[test]
    fn shortcut_constructors() {
        let a = Ipv4Addr::new(10, 20, 30, 40);
        assert_eq!(Cidr::slash24(a).to_string(), "10.20.30.0/24");
        assert_eq!(Cidr::slash16(a).to_string(), "10.20.0.0/16");
        assert_eq!(Cidr::slash24(a).size(), 256);
        assert_eq!(Cidr::slash16(a).size(), 65_536);
    }

    #[test]
    fn nth_wraps_within_prefix() {
        let c = Cidr::slash24(Ipv4Addr::new(10, 0, 0, 0));
        assert_eq!(c.nth(0), Ipv4Addr::new(10, 0, 0, 0));
        assert_eq!(c.nth(5), Ipv4Addr::new(10, 0, 0, 5));
        assert_eq!(c.nth(256), Ipv4Addr::new(10, 0, 0, 0));
    }

    #[test]
    fn parse_roundtrip() {
        let c: Cidr = "172.16.0.0/12".parse().expect("parse");
        assert_eq!(c.prefix(), 12);
        assert_eq!(c.to_string(), "172.16.0.0/12");
        assert!("1.2.3.4".parse::<Cidr>().is_err());
        assert!("1.2.3.4/33".parse::<Cidr>().is_err());
        assert!("x/24".parse::<Cidr>().is_err());
    }

    #[test]
    fn clamps_prefix() {
        let c = Cidr::new(Ipv4Addr::new(1, 2, 3, 4), 99);
        assert_eq!(c.prefix(), 32);
    }
}
