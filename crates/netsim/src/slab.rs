//! Generational slab arena shared by the hot-state containers.
//!
//! Extracted from the IDS crate's LRU order queue so flow tables,
//! reassembly bookkeeping, and MVR class state share one audited
//! implementation. A [`Slab`] hands out typed generational handles
//! ([`SlabKey`]): slot indices are recycled through a free list, but each
//! recycle bumps the slot's generation, so a stale handle can never alias
//! the slot's next occupant — lookups through it return `None` instead.
//!
//! [`OrderQueue`] is the original intrusive doubly-linked list, ported
//! onto [`Slab`]: O(1) push/pop/remove with no allocation after the slab
//! warms up, used wherever eviction order must be maintained without
//! scanning (the pattern [`crate::flow::FlowTable`] generalizes).

use std::marker::PhantomData;

/// A typed generational handle into a [`Slab<T>`].
///
/// `Copy` and 8 bytes: an index plus the generation the slot had when the
/// value was inserted. After the value is removed the slot's generation
/// advances, so this key — and any copy of it — stops resolving.
pub struct SlabKey<T> {
    index: u32,
    gen: u32,
    _ty: PhantomData<fn() -> T>,
}

impl<T> SlabKey<T> {
    /// The raw slot index. Stable for the value's lifetime; useful for
    /// indexing dense side tables (pair it with [`SlabKey::generation`]
    /// to detect reuse).
    pub fn index(&self) -> usize {
        self.index as usize
    }

    /// The generation the slot had when this key was issued.
    pub fn generation(&self) -> u32 {
        self.gen
    }

    /// Reassemble a key from parts previously read off [`SlabKey::index`]
    /// and [`SlabKey::generation`] (arena composition within the crate).
    pub(crate) fn from_parts(index: u32, gen: u32) -> SlabKey<T> {
        SlabKey {
            index,
            gen,
            _ty: PhantomData,
        }
    }
}

// Manual impls: `derive` would bound them on `T`, but the key is just an
// (index, generation) pair regardless of the slot type.
impl<T> Clone for SlabKey<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SlabKey<T> {}
impl<T> PartialEq for SlabKey<T> {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index && self.gen == other.gen
    }
}
impl<T> Eq for SlabKey<T> {}
impl<T> std::hash::Hash for SlabKey<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.index.hash(state);
        self.gen.hash(state);
    }
}
impl<T> std::fmt::Debug for SlabKey<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SlabKey({}@g{})", self.index, self.gen)
    }
}

#[derive(Debug)]
struct Entry<T> {
    /// Bumped on removal; a slot's generation counts how many values have
    /// died in it. (A u32 wraps after 4 billion recycles of one slot —
    /// beyond any simulated population's churn.)
    gen: u32,
    value: Option<T>,
}

/// A generational slab: dense `Vec` storage, free-list slot reuse, and
/// stale-handle detection. All operations are O(1); the only allocations
/// are `Vec` growth when the live count reaches a new high-water mark.
#[derive(Debug)]
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Slab<T> {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// An empty slab with room for `cap` values before reallocating.
    pub fn with_capacity(cap: usize) -> Slab<T> {
        Slab {
            entries: Vec::with_capacity(cap),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Insert a value, returning its handle. Reuses a free slot if one
    /// exists (the handle carries the slot's current generation).
    pub fn insert(&mut self, value: T) -> SlabKey<T> {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let entry = &mut self.entries[index as usize];
            debug_assert!(entry.value.is_none());
            entry.value = Some(value);
            return SlabKey::from_parts(index, entry.gen);
        }
        let index = self.entries.len() as u32;
        self.entries.push(Entry {
            gen: 0,
            value: Some(value),
        });
        SlabKey::from_parts(index, 0)
    }

    /// Remove the value behind `key`. Stale keys (slot already recycled or
    /// removed) return `None` — removal is idempotent by construction.
    pub fn remove(&mut self, key: SlabKey<T>) -> Option<T> {
        let entry = self.entries.get_mut(key.index as usize)?;
        if entry.gen != key.gen || entry.value.is_none() {
            return None;
        }
        let value = entry.value.take();
        entry.gen = entry.gen.wrapping_add(1);
        self.free.push(key.index);
        self.len -= 1;
        value
    }

    /// Shared access to the value behind `key` (`None` if stale).
    pub fn get(&self, key: SlabKey<T>) -> Option<&T> {
        let entry = self.entries.get(key.index as usize)?;
        if entry.gen != key.gen {
            return None;
        }
        entry.value.as_ref()
    }

    /// Mutable access to the value behind `key` (`None` if stale).
    pub fn get_mut(&mut self, key: SlabKey<T>) -> Option<&mut T> {
        let entry = self.entries.get_mut(key.index as usize)?;
        if entry.gen != key.gen {
            return None;
        }
        entry.value.as_mut()
    }

    /// Whether `key` still resolves to a live value.
    pub fn contains(&self, key: SlabKey<T>) -> bool {
        self.get(key).is_some()
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab holds no live values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots allocated (live + free) — the bookkeeping footprint
    /// that leak-regression tests bound against the live count.
    pub fn slab_size(&self) -> usize {
        self.entries.len()
    }

    /// Bytes of backing storage currently reserved for slot entries (the
    /// per-flow memory-budget accounting used by the scale experiment).
    pub fn slot_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<Entry<T>>()
    }

    /// Iterate over live values in slot order (deterministic, but *not*
    /// insertion order — pair with an [`OrderQueue`] when order matters).
    pub fn iter(&self) -> impl Iterator<Item = (SlabKey<T>, &T)> {
        self.entries.iter().enumerate().filter_map(|(i, e)| {
            e.value
                .as_ref()
                .map(|v| (SlabKey::from_parts(i as u32, e.gen), v))
        })
    }
}

/// Internal node of an [`OrderQueue`]; public only because it names the
/// queue's handle type ([`OrderId`]). All fields are private.
#[derive(Debug)]
pub struct OrderSlot<K> {
    key: K,
    prev: Option<OrderId<K>>,
    next: Option<OrderId<K>>,
}

/// Handle to an [`OrderQueue`] entry. Generational: removing through a
/// stale handle is a no-op, so double-removal needs no caller bookkeeping.
pub type OrderId<K> = SlabKey<OrderSlot<K>>;

/// FIFO queue with O(1) removal from the middle: an intrusive doubly
/// linked list threaded through a [`Slab`]. Push a key when a value is
/// created, keep the returned [`OrderId`], and hand it back to
/// [`OrderQueue::remove`] when the value is dropped; [`OrderQueue::front`]
/// is then always the oldest live key — the eviction candidate.
#[derive(Debug)]
pub struct OrderQueue<K> {
    slab: Slab<OrderSlot<K>>,
    head: Option<OrderId<K>>,
    tail: Option<OrderId<K>>,
}

impl<K: Copy> Default for OrderQueue<K> {
    fn default() -> Self {
        OrderQueue::new()
    }
}

impl<K: Copy> OrderQueue<K> {
    /// An empty queue.
    pub fn new() -> OrderQueue<K> {
        OrderQueue {
            slab: Slab::new(),
            head: None,
            tail: None,
        }
    }

    /// Append `key`, returning the id used for O(1) removal.
    pub fn push_back(&mut self, key: K) -> OrderId<K> {
        let prev = self.tail;
        let id = self.slab.insert(OrderSlot {
            key,
            prev,
            next: None,
        });
        match prev {
            Some(t) => {
                if let Some(slot) = self.slab.get_mut(t) {
                    slot.next = Some(id);
                }
            }
            None => self.head = Some(id),
        }
        self.tail = Some(id);
        id
    }

    /// The oldest key, if any.
    pub fn front(&self) -> Option<K> {
        let head = self.head?;
        self.slab.get(head).map(|slot| slot.key)
    }

    /// Remove and return the oldest key.
    pub fn pop_front(&mut self) -> Option<K> {
        let head = self.head?;
        let key = self.slab.get(head).map(|slot| slot.key);
        self.remove(head);
        key
    }

    /// Remove the entry `id` points at. Idempotent: a stale id (already
    /// removed, or its slot since recycled) is a no-op.
    pub fn remove(&mut self, id: OrderId<K>) {
        let Some(slot) = self.slab.remove(id) else {
            return;
        };
        match slot.prev {
            Some(p) => {
                if let Some(prev) = self.slab.get_mut(p) {
                    prev.next = slot.next;
                }
            }
            None => self.head = slot.next,
        }
        match slot.next {
            Some(n) => {
                if let Some(next) = self.slab.get_mut(n) {
                    next.prev = slot.prev;
                }
            }
            None => self.tail = slot.prev,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.slab.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.slab.is_empty()
    }

    /// Size of the underlying slab (live + free slots): bounded by the
    /// high-water mark of live entries, never by total churn.
    pub fn slab_size(&self) -> usize {
        self.slab.slab_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab: Slab<&'static str> = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.get(b), Some(&"b"));
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.get(a), None, "removed key stops resolving");
    }

    #[test]
    fn stale_handles_never_alias_recycled_slots() {
        let mut slab: Slab<u32> = Slab::new();
        let a = slab.insert(1);
        slab.remove(a);
        let b = slab.insert(2);
        assert_eq!(b.index(), a.index(), "slot recycled");
        assert_ne!(b.generation(), a.generation(), "generation advanced");
        assert_eq!(slab.get(a), None, "stale key misses");
        assert_eq!(slab.get(b), Some(&2));
        assert_eq!(slab.remove(a), None, "stale removal is a no-op");
        assert_eq!(slab.get(b), Some(&2), "live value untouched by stale key");
    }

    #[test]
    fn slab_size_is_bounded_by_high_water_mark() {
        let mut slab: Slab<u64> = Slab::new();
        for round in 0..50u64 {
            let keys: Vec<_> = (0..8).map(|i| slab.insert(round * 8 + i)).collect();
            for k in keys {
                slab.remove(k);
            }
        }
        assert_eq!(slab.len(), 0);
        assert!(slab.slab_size() <= 8, "slots recycled, not leaked");
    }

    #[test]
    fn iter_yields_live_values_in_slot_order() {
        let mut slab: Slab<char> = Slab::new();
        let a = slab.insert('a');
        let _b = slab.insert('b');
        let _c = slab.insert('c');
        slab.remove(a);
        let got: Vec<char> = slab.iter().map(|(_, v)| *v).collect();
        assert_eq!(got, vec!['b', 'c']);
    }

    #[test]
    fn fifo_order() {
        let mut q = OrderQueue::new();
        q.push_back(1u32);
        q.push_back(2);
        q.push_back(3);
        assert_eq!(q.front(), Some(1));
        assert_eq!(q.pop_front(), Some(1));
        assert_eq!(q.pop_front(), Some(2));
        assert_eq!(q.pop_front(), Some(3));
        assert_eq!(q.pop_front(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn middle_removal_preserves_order() {
        let mut q = OrderQueue::new();
        let ids: Vec<_> = (0..5u32).map(|k| q.push_back(k)).collect();
        q.remove(ids[2]);
        q.remove(ids[0]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop_front(), Some(1));
        assert_eq!(q.pop_front(), Some(3));
        assert_eq!(q.pop_front(), Some(4));
    }

    #[test]
    fn removal_is_idempotent_and_slots_recycle() {
        let mut q = OrderQueue::new();
        let id = q.push_back(7u32);
        q.remove(id);
        q.remove(id); // stale: no-op
        assert!(q.is_empty());
        let id2 = q.push_back(8);
        assert_eq!(q.slab_size(), 1, "slot recycled");
        assert_eq!(q.front(), Some(8));
        q.remove(id); // stale id from the recycled slot's past life: no-op
        assert_eq!(q.front(), Some(8), "live entry untouched");
        q.remove(id2);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_churn_stays_bounded() {
        let mut q = OrderQueue::new();
        let mut live: Vec<OrderId<u32>> = Vec::new();
        for i in 0..1000u32 {
            live.push(q.push_back(i));
            if live.len() > 16 {
                let id = live.remove((i as usize * 7) % live.len());
                q.remove(id);
            }
        }
        assert_eq!(q.len(), live.len());
        assert!(q.slab_size() <= 17, "slab bounded by peak live entries");
    }
}
