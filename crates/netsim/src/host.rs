//! Hosts: end systems with a TCP/UDP stack, application tasks and services.
//!
//! A [`Host`] owns:
//!
//! * **Tasks** ([`HostTask`]) — client-side state machines started at a
//!   scheduled time. Tasks can open TCP connections, bind UDP ports, send
//!   raw (including spoofed) packets, observe every incoming packet, and set
//!   timers. Measurement techniques in `underradar-core` are tasks.
//! * **TCP services** ([`Service`]) — per-connection server handlers spawned
//!   by a listener when a SYN arrives (HTTP, SMTP servers).
//! * **UDP services** ([`UdpService`]) — datagram handlers bound to a port
//!   (DNS servers).
//!
//! The host also reproduces the kernel behaviours the paper's techniques
//! lean on: a TCP segment for which no socket exists is answered with RST —
//! this is exactly why a spoofed client would kill a mimicked flow (§4.1)
//! and why SYN scans of closed ports see RSTs (§3.1).

use std::any::Any;
use std::collections::HashMap;
use std::net::Ipv4Addr;

use crate::event::TimerToken;
use crate::node::{IfaceId, Node, NodeCtx};
use crate::packet::{Packet, PacketBody, TcpSegment};
use crate::stack::tcp::{TcpConn, TcpEvent};
use crate::stack::udp::{UdpBindings, UdpOwner};
use crate::time::{SimDuration, SimTime};
use crate::wire::icmp::IcmpKind;
use crate::wire::tcp::TcpFlags;

/// The interface every host uses (hosts are single-homed).
pub const HOST_IFACE: IfaceId = IfaceId(0);

/// Default base (minimum) retransmission timeout. Connections adapt their
/// actual RTO from RTT samples and back off exponentially; this is the floor.
pub const DEFAULT_RTO: SimDuration = SimDuration::from_millis(200);

/// Handle to a TCP connection on a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConnId(pub u64);

/// What a raw-packet observer decides about a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawVerdict {
    /// Let the packet continue into the stack.
    Continue,
    /// Swallow the packet (the stack never sees it).
    Consume,
}

/// Convenience alias for raw handler callbacks.
pub type RawHandler = Box<dyn FnMut(&Packet) -> RawVerdict>;

/// A client-side application running on a host.
///
/// All callbacks receive a [`HostApi`] for I/O. Implementations are state
/// machines; the typical pattern is to kick off work in [`HostTask::on_start`]
/// and react to events.
pub trait HostTask: Any {
    /// Called at the task's scheduled start time.
    fn on_start(&mut self, api: &mut HostApi<'_, '_>);

    /// A TCP event arrived on a connection this task opened.
    fn on_tcp(&mut self, _api: &mut HostApi<'_, '_>, _conn: ConnId, _event: TcpEvent) {}

    /// A UDP datagram arrived on a port this task bound.
    fn on_udp(
        &mut self,
        _api: &mut HostApi<'_, '_>,
        _local_port: u16,
        _src: Ipv4Addr,
        _src_port: u16,
        _payload: &[u8],
    ) {
    }

    /// Every packet delivered to the host passes here first (sniffing).
    /// Returning [`RawVerdict::Consume`] hides it from the stack.
    fn on_raw(&mut self, _api: &mut HostApi<'_, '_>, _packet: &Packet) -> RawVerdict {
        RawVerdict::Continue
    }

    /// A timer set with [`HostApi::set_timer`] fired.
    fn on_timer(&mut self, _api: &mut HostApi<'_, '_>, _token: u64) {}
}

/// A per-connection TCP server handler.
pub trait Service: Any {
    /// The handshake completed.
    fn on_connected(&mut self, _api: &mut ServiceApi<'_, '_>) {}
    /// Payload bytes arrived.
    fn on_data(&mut self, api: &mut ServiceApi<'_, '_>, data: &[u8]);
    /// The peer closed its sending side.
    fn on_peer_closed(&mut self, _api: &mut ServiceApi<'_, '_>) {}
    /// The connection died (RST or retransmission timeout).
    fn on_aborted(&mut self, _api: &mut ServiceApi<'_, '_>) {}
    /// The connection closed cleanly.
    fn on_closed(&mut self, _api: &mut ServiceApi<'_, '_>) {}
}

/// A UDP datagram server bound to a port.
pub trait UdpService: Any {
    /// A datagram arrived.
    fn on_datagram(
        &mut self,
        api: &mut UdpApi<'_, '_>,
        src: Ipv4Addr,
        src_port: u16,
        payload: &[u8],
    );
}

/// Counters a host maintains (assertable in experiments).
#[derive(Debug, Clone, Copy, Default)]
pub struct HostCounters {
    /// TCP segments delivered to the stack.
    pub tcp_in: u64,
    /// UDP datagrams delivered to the stack.
    pub udp_in: u64,
    /// RSTs sent in response to segments with no matching socket.
    pub rst_sent: u64,
    /// ICMP echo replies sent.
    pub echo_replies: u64,
    /// Packets swallowed by raw handlers.
    pub raw_consumed: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnOwner {
    Task(usize),
    Service,
}

struct ConnEntry {
    conn: TcpConn,
    owner: ConnOwner,
    /// Epoch for RTO timers: a fired timer is honored only if its recorded
    /// epoch matches, which "cancels" timers obsoleted by progress.
    epoch: u64,
}

#[derive(Debug, Clone, Copy)]
enum TimerPurpose {
    TaskStart(usize),
    Task(usize, u64),
    Rto(ConnId, u64),
}

type ConnKey = (u16, Ipv4Addr, u16); // (local port, remote addr, remote port)

/// Host-internal stack state, separated from the task table so tasks can be
/// called while the stack is mutably borrowed.
pub struct HostStack {
    ip: Ipv4Addr,
    conns: HashMap<ConnId, ConnEntry>,
    conn_index: HashMap<ConnKey, ConnId>,
    listeners: HashMap<u16, usize>,
    udp_binds: UdpBindings,
    next_conn: u64,
    next_ephemeral: u16,
    timer_map: HashMap<TimerToken, TimerPurpose>,
    rto: SimDuration,
    respond_rst: bool,
    reply_to_ping: bool,
    counters: HostCounters,
    /// Events produced during stack processing, dispatched afterwards.
    pending_dispatch: Vec<(ConnId, TcpEvent)>,
}

impl HostStack {
    /// This host's IP address.
    pub fn ip(&self) -> Ipv4Addr {
        self.ip
    }

    fn alloc_conn_id(&mut self) -> ConnId {
        let id = ConnId(self.next_conn);
        self.next_conn += 1;
        id
    }

    fn alloc_ephemeral(&mut self) -> u16 {
        // Skip listener ports; collisions on in-use four-tuples are
        // tolerated (different remotes disambiguate).
        loop {
            let p = self.next_ephemeral;
            self.next_ephemeral = if self.next_ephemeral == u16::MAX {
                49152
            } else {
                self.next_ephemeral + 1
            };
            if !self.listeners.contains_key(&p) && !self.udp_binds.is_bound(p) {
                return p;
            }
        }
    }

    fn arm_rto(&mut self, ctx: &mut NodeCtx<'_>, cid: ConnId) {
        let Some(entry) = self.conns.get_mut(&cid) else {
            return;
        };
        if !entry.conn.has_unacked() {
            return;
        }
        entry.epoch += 1;
        // The connection's RTO reflects RTT samples and exponential backoff.
        let token = ctx.set_timer(entry.conn.rto());
        self.timer_map
            .insert(token, TimerPurpose::Rto(cid, entry.epoch));
    }

    /// Send packets out of the host interface.
    fn flush(&mut self, ctx: &mut NodeCtx<'_>, packets: Vec<Packet>) {
        for p in packets {
            ctx.send(HOST_IFACE, p);
        }
    }

    fn conn_send(&mut self, ctx: &mut NodeCtx<'_>, cid: ConnId, data: &[u8]) {
        let Some(entry) = self.conns.get_mut(&cid) else {
            return;
        };
        let packets = entry.conn.send(data, ctx.now());
        self.flush(ctx, packets);
        self.arm_rto(ctx, cid);
    }

    fn conn_close(&mut self, ctx: &mut NodeCtx<'_>, cid: ConnId) {
        let Some(entry) = self.conns.get_mut(&cid) else {
            return;
        };
        let packets = entry.conn.close(ctx.now());
        self.flush(ctx, packets);
        self.arm_rto(ctx, cid);
    }

    fn conn_abort(&mut self, ctx: &mut NodeCtx<'_>, cid: ConnId) {
        let Some(entry) = self.conns.get_mut(&cid) else {
            return;
        };
        if let Some(rst) = entry.conn.abort() {
            ctx.send(HOST_IFACE, rst);
        }
        self.gc(cid);
    }

    fn set_reply_ttl(&mut self, cid: ConnId, ttl: u8) {
        if let Some(entry) = self.conns.get_mut(&cid) {
            entry.conn.reply_ttl = Some(ttl);
        }
    }

    fn conn_peer(&self, cid: ConnId) -> Option<(Ipv4Addr, u16)> {
        self.conns.get(&cid).map(|e| e.conn.remote)
    }

    /// Remove a closed connection from the tables.
    fn gc(&mut self, cid: ConnId) {
        let closed = self
            .conns
            .get(&cid)
            .map(|e| e.conn.is_closed())
            .unwrap_or(false);
        if closed {
            if let Some(entry) = self.conns.remove(&cid) {
                let key = (entry.conn.local.1, entry.conn.remote.0, entry.conn.remote.1);
                self.conn_index.remove(&key);
            }
        }
    }

    /// RFC 793-style RST in response to a segment with no matching socket.
    fn rst_for(&self, pkt: &Packet, seg: &TcpSegment) -> Packet {
        if seg.flags.has_ack() {
            Packet::tcp(
                self.ip,
                pkt.src,
                seg.dst_port,
                seg.src_port,
                seg.ack,
                0,
                TcpFlags::rst(),
                Vec::new(),
            )
        } else {
            let ack = seg
                .seq
                .wrapping_add(seg.payload.len() as u32)
                .wrapping_add(u32::from(seg.flags.has_syn()))
                .wrapping_add(u32::from(seg.flags.has_fin()));
            Packet::tcp(
                self.ip,
                pkt.src,
                seg.dst_port,
                seg.src_port,
                0,
                ack,
                TcpFlags::rst_ack(),
                Vec::new(),
            )
        }
    }
}

/// The I/O surface handed to [`HostTask`] callbacks.
pub struct HostApi<'a, 'b> {
    stack: &'a mut HostStack,
    ctx: &'a mut NodeCtx<'b>,
    task_idx: usize,
}

impl HostApi<'_, '_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }

    /// This host's IP address.
    pub fn ip(&self) -> Ipv4Addr {
        self.stack.ip
    }

    /// The deterministic RNG stream.
    pub fn rng(&mut self) -> &mut crate::rng::SimRng {
        self.ctx.rng()
    }

    /// Open a TCP connection; events arrive via [`HostTask::on_tcp`].
    pub fn tcp_connect(&mut self, dst: Ipv4Addr, dst_port: u16) -> ConnId {
        let local_port = self.stack.alloc_ephemeral();
        let iss = self.ctx.rng().next_u32();
        let (mut conn, syn) = TcpConn::connect(
            (self.stack.ip, local_port),
            (dst, dst_port),
            iss,
            self.ctx.now(),
        );
        conn.set_base_rto(self.stack.rto);
        let cid = self.stack.alloc_conn_id();
        self.stack
            .conn_index
            .insert((local_port, dst, dst_port), cid);
        self.stack.conns.insert(
            cid,
            ConnEntry {
                conn,
                owner: ConnOwner::Task(self.task_idx),
                epoch: 0,
            },
        );
        self.ctx.send(HOST_IFACE, syn);
        self.stack.arm_rto(self.ctx, cid);
        cid
    }

    /// Send bytes on a connection.
    pub fn tcp_send(&mut self, conn: ConnId, data: &[u8]) {
        self.stack.conn_send(self.ctx, conn, data);
    }

    /// Close a connection gracefully (FIN).
    pub fn tcp_close(&mut self, conn: ConnId) {
        self.stack.conn_close(self.ctx, conn);
    }

    /// Abort a connection (RST).
    pub fn tcp_abort(&mut self, conn: ConnId) {
        self.stack.conn_abort(self.ctx, conn);
    }

    /// Stamp all future output of a connection with `ttl`.
    pub fn tcp_set_reply_ttl(&mut self, conn: ConnId, ttl: u8) {
        self.stack.set_reply_ttl(conn, ttl);
    }

    /// Bind a UDP port for this task (0 picks an ephemeral port). Returns
    /// the bound port, or `None` if the requested port is taken.
    pub fn udp_bind(&mut self, port: u16) -> Option<u16> {
        let port = if port == 0 {
            self.stack.alloc_ephemeral()
        } else {
            port
        };
        if self
            .stack
            .udp_binds
            .bind(port, UdpOwner::Task(self.task_idx))
        {
            Some(port)
        } else {
            None
        }
    }

    /// Send a UDP datagram from a bound (or arbitrary) local port.
    pub fn udp_send(&mut self, src_port: u16, dst: Ipv4Addr, dst_port: u16, payload: Vec<u8>) {
        let pkt = Packet::udp(self.stack.ip, dst, src_port, dst_port, payload);
        self.ctx.send(HOST_IFACE, pkt);
    }

    /// Transmit an arbitrary packet (spoofed sources, crafted TTLs, raw
    /// SYNs — the measurement primitives).
    pub fn raw_send(&mut self, packet: Packet) {
        self.ctx.send(HOST_IFACE, packet);
    }

    /// Set a timer; `user_token` comes back via [`HostTask::on_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, user_token: u64) {
        let token = self.ctx.set_timer(delay);
        self.stack
            .timer_map
            .insert(token, TimerPurpose::Task(self.task_idx, user_token));
    }
}

/// The I/O surface handed to [`Service`] callbacks (scoped to one
/// connection).
pub struct ServiceApi<'a, 'b> {
    stack: &'a mut HostStack,
    ctx: &'a mut NodeCtx<'b>,
    conn: ConnId,
}

impl ServiceApi<'_, '_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }

    /// The remote endpoint of this connection.
    pub fn peer(&self) -> Option<(Ipv4Addr, u16)> {
        self.stack.conn_peer(self.conn)
    }

    /// Send bytes to the peer.
    pub fn send(&mut self, data: &[u8]) {
        self.stack.conn_send(self.ctx, self.conn, data);
    }

    /// Close this side (FIN).
    pub fn close(&mut self) {
        self.stack.conn_close(self.ctx, self.conn);
    }

    /// Abort (RST).
    pub fn abort(&mut self) {
        self.stack.conn_abort(self.ctx, self.conn);
    }

    /// Stamp replies with a limited TTL — the Fig 3b server knob.
    pub fn set_reply_ttl(&mut self, ttl: u8) {
        self.stack.set_reply_ttl(self.conn, ttl);
    }
}

/// The I/O surface handed to [`UdpService`] callbacks.
pub struct UdpApi<'a, 'b> {
    stack: &'a mut HostStack,
    ctx: &'a mut NodeCtx<'b>,
    local_port: u16,
}

impl UdpApi<'_, '_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }

    /// This host's IP.
    pub fn ip(&self) -> Ipv4Addr {
        self.stack.ip
    }

    /// The port this service is bound to.
    pub fn local_port(&self) -> u16 {
        self.local_port
    }

    /// Send a datagram from the service's port.
    pub fn send(&mut self, dst: Ipv4Addr, dst_port: u16, payload: Vec<u8>) {
        let pkt = Packet::udp(self.stack.ip, dst, self.local_port, dst_port, payload);
        self.ctx.send(HOST_IFACE, pkt);
    }
}

type ServiceFactory = Box<dyn Fn() -> Box<dyn Service>>;

/// An end host.
pub struct Host {
    name: String,
    stack: HostStack,
    tasks: Vec<Option<Box<dyn HostTask>>>,
    task_starts: Vec<(usize, SimTime)>,
    listener_factories: Vec<ServiceFactory>,
    conn_services: HashMap<ConnId, Box<dyn Service>>,
    udp_services: Vec<Option<Box<dyn UdpService>>>,
}

impl Host {
    /// Create a host named `name` with address `ip`.
    pub fn new(name: &str, ip: Ipv4Addr) -> Host {
        Host {
            name: name.to_string(),
            stack: HostStack {
                ip,
                conns: HashMap::new(),
                conn_index: HashMap::new(),
                listeners: HashMap::new(),
                udp_binds: UdpBindings::new(),
                next_conn: 0,
                next_ephemeral: 49152,
                timer_map: HashMap::new(),
                rto: DEFAULT_RTO,
                respond_rst: true,
                reply_to_ping: true,
                counters: HostCounters::default(),
                pending_dispatch: Vec::new(),
            },
            tasks: Vec::new(),
            task_starts: Vec::new(),
            listener_factories: Vec::new(),
            conn_services: HashMap::new(),
            udp_services: Vec::new(),
        }
    }

    /// This host's IP address.
    pub fn ip(&self) -> Ipv4Addr {
        self.stack.ip
    }

    /// Stack counters.
    pub fn counters(&self) -> HostCounters {
        self.stack.counters
    }

    /// Disable RST responses to unexpected TCP segments (a host that drops
    /// silently instead of the default kernel behaviour).
    pub fn set_respond_rst(&mut self, respond: bool) {
        self.stack.respond_rst = respond;
    }

    /// Override the base retransmission timeout applied to new connections
    /// (the floor under the adaptive, backed-off per-connection RTO).
    pub fn set_rto(&mut self, rto: SimDuration) {
        self.stack.rto = rto;
    }

    /// Schedule `task` to start at `at`. Returns the task index, usable
    /// with [`Host::task_ref`] to read results after the run.
    ///
    /// Start timers are armed when the simulation starts; to add a task to
    /// an already-running simulation, use [`Host::add_task`] +
    /// [`Host::bind_task_start`] with an externally scheduled timer
    /// ([`crate::Simulator::alloc_timer_token`] /
    /// [`crate::Simulator::schedule_timer`]).
    pub fn spawn_task_at(&mut self, at: SimTime, task: Box<dyn HostTask>) -> usize {
        let idx = self.add_task(task);
        self.task_starts.push((idx, at));
        idx
    }

    /// Register a task without scheduling its start (see
    /// [`Host::spawn_task_at`] for the late-spawn protocol).
    pub fn add_task(&mut self, task: Box<dyn HostTask>) -> usize {
        let idx = self.tasks.len();
        self.tasks.push(Some(task));
        idx
    }

    /// Bind an externally scheduled timer token to a task's start: when
    /// the token fires, `on_start` runs.
    pub fn bind_task_start(&mut self, idx: usize, token: TimerToken) {
        self.stack
            .timer_map
            .insert(token, TimerPurpose::TaskStart(idx));
    }

    /// Typed access to a task (e.g. to read collected measurements).
    pub fn task_ref<T: HostTask>(&self, idx: usize) -> Option<&T> {
        self.tasks.get(idx)?.as_ref()?;
        let any: &dyn Any = self.tasks[idx].as_deref()? as &dyn Any;
        any.downcast_ref::<T>()
    }

    /// Listen for TCP connections on `port`; `factory` builds a [`Service`]
    /// per accepted connection.
    pub fn add_tcp_listener<F>(&mut self, port: u16, factory: F)
    where
        F: Fn() -> Box<dyn Service> + 'static,
    {
        let idx = self.listener_factories.len();
        self.listener_factories.push(Box::new(factory));
        self.stack.listeners.insert(port, idx);
    }

    /// Bind a UDP service to `port`. Returns `false` if the port is taken.
    pub fn add_udp_service(&mut self, port: u16, service: Box<dyn UdpService>) -> bool {
        let idx = self.udp_services.len();
        if !self.stack.udp_binds.bind(port, UdpOwner::Service(idx)) {
            return false;
        }
        self.udp_services.push(Some(service));
        true
    }

    /// Typed access to a UDP service.
    pub fn udp_service_ref<T: UdpService>(&self, idx: usize) -> Option<&T> {
        let any: &dyn Any = self.udp_services.get(idx)?.as_deref()? as &dyn Any;
        any.downcast_ref::<T>()
    }

    fn with_task<F>(&mut self, ctx: &mut NodeCtx<'_>, idx: usize, f: F)
    where
        F: FnOnce(&mut dyn HostTask, &mut HostApi<'_, '_>),
    {
        let Some(slot) = self.tasks.get_mut(idx) else {
            return;
        };
        let Some(mut task) = slot.take() else { return };
        {
            let mut api = HostApi {
                stack: &mut self.stack,
                ctx,
                task_idx: idx,
            };
            f(task.as_mut(), &mut api);
        }
        self.tasks[idx] = Some(task);
        self.drain_dispatch(ctx);
    }

    fn with_service<F>(&mut self, ctx: &mut NodeCtx<'_>, cid: ConnId, f: F)
    where
        F: FnOnce(&mut dyn Service, &mut ServiceApi<'_, '_>),
    {
        let Some(mut service) = self.conn_services.remove(&cid) else {
            return;
        };
        {
            let mut api = ServiceApi {
                stack: &mut self.stack,
                ctx,
                conn: cid,
            };
            f(service.as_mut(), &mut api);
        }
        // Drop the handler once its connection is gone.
        if self.stack.conns.contains_key(&cid) {
            self.conn_services.insert(cid, service);
        }
        self.drain_dispatch(ctx);
    }

    /// Deliver queued (conn, event) pairs to their owners. Dispatching can
    /// itself enqueue more events (e.g. a task closing a connection inside
    /// a callback), so loop until quiescent.
    fn drain_dispatch(&mut self, ctx: &mut NodeCtx<'_>) {
        while let Some((cid, event)) = {
            let s = &mut self.stack.pending_dispatch;
            if s.is_empty() {
                None
            } else {
                Some(s.remove(0))
            }
        } {
            let owner = match self.stack.conns.get(&cid) {
                Some(e) => e.owner,
                // Connection already gone (aborted); route terminal events
                // to services that may still exist.
                None if self.conn_services.contains_key(&cid) => ConnOwner::Service,
                None => continue,
            };
            match owner {
                ConnOwner::Task(idx) => {
                    self.with_task(ctx, idx, |task, api| task.on_tcp(api, cid, event));
                }
                ConnOwner::Service => {
                    self.with_service(ctx, cid, |svc, api| match event {
                        TcpEvent::Connected => svc.on_connected(api),
                        TcpEvent::Data(d) => svc.on_data(api, &d),
                        TcpEvent::PeerClosed => svc.on_peer_closed(api),
                        TcpEvent::Reset | TcpEvent::TimedOut | TcpEvent::Refused => {
                            svc.on_aborted(api)
                        }
                        TcpEvent::Closed => svc.on_closed(api),
                    });
                }
            }
            self.stack.gc(cid);
            if !self.stack.conns.contains_key(&cid) {
                self.conn_services.remove(&cid);
            }
        }
    }

    fn handle_tcp(&mut self, ctx: &mut NodeCtx<'_>, pkt: &Packet, seg: &TcpSegment) {
        self.stack.counters.tcp_in += 1;
        let key: ConnKey = (seg.dst_port, pkt.src, seg.src_port);
        if let Some(&cid) = self.stack.conn_index.get(&key) {
            let Some(entry) = self.stack.conns.get_mut(&cid) else {
                return;
            };
            let (out, events) = entry.conn.on_segment(seg, ctx.now());
            self.stack.flush(ctx, out);
            self.stack.arm_rto(ctx, cid);
            for e in events {
                self.stack.pending_dispatch.push((cid, e));
            }
            self.drain_dispatch(ctx);
            self.stack.gc(cid);
            return;
        }

        // No socket. A SYN to a listening port creates a connection.
        if seg.flags.has_syn() && !seg.flags.has_ack() {
            if let Some(&factory_idx) = self.stack.listeners.get(&seg.dst_port) {
                let iss = ctx.rng().next_u32();
                let (mut conn, syn_ack) = TcpConn::accept(
                    (self.stack.ip, seg.dst_port),
                    (pkt.src, seg.src_port),
                    seg.seq,
                    iss,
                    ctx.now(),
                );
                conn.set_base_rto(self.stack.rto);
                let cid = self.stack.alloc_conn_id();
                self.stack.conn_index.insert(key, cid);
                self.stack.conns.insert(
                    cid,
                    ConnEntry {
                        conn,
                        owner: ConnOwner::Service,
                        epoch: 0,
                    },
                );
                let service = (self.listener_factories[factory_idx])();
                self.conn_services.insert(cid, service);
                ctx.send(HOST_IFACE, syn_ack);
                self.stack.arm_rto(ctx, cid);
                return;
            }
        }

        // Closed port or unexpected segment: kernel-style RST.
        if self.stack.respond_rst && !seg.flags.has_rst() {
            let rst = self.stack.rst_for(pkt, seg);
            ctx.send(HOST_IFACE, rst);
            self.stack.counters.rst_sent += 1;
        }
    }

    fn handle_udp(&mut self, ctx: &mut NodeCtx<'_>, pkt: &Packet) {
        let Some(dgram) = pkt.as_udp() else { return };
        self.stack.counters.udp_in += 1;
        match self.stack.udp_binds.owner(dgram.dst_port) {
            Some(UdpOwner::Task(idx)) => {
                let (src, src_port, local_port) = (pkt.src, dgram.src_port, dgram.dst_port);
                let payload = dgram.payload.clone();
                self.with_task(ctx, idx, |task, api| {
                    task.on_udp(api, local_port, src, src_port, &payload)
                });
            }
            Some(UdpOwner::Service(idx)) => {
                let Some(mut svc) = self.udp_services.get_mut(idx).and_then(Option::take) else {
                    return;
                };
                {
                    let mut api = UdpApi {
                        stack: &mut self.stack,
                        ctx,
                        local_port: dgram.dst_port,
                    };
                    svc.on_datagram(&mut api, pkt.src, dgram.src_port, &dgram.payload);
                }
                self.udp_services[idx] = Some(svc);
            }
            None => {
                // Unbound port: silently dropped (ICMP port unreachable is
                // not modeled; no experiment depends on it).
            }
        }
    }

    fn handle_icmp(&mut self, ctx: &mut NodeCtx<'_>, pkt: &Packet) {
        let Some(icmp) = pkt.as_icmp() else { return };
        if self.stack.reply_to_ping {
            if let IcmpKind::EchoRequest { ident, seq } = icmp.kind {
                let reply = Packet::icmp(
                    self.stack.ip,
                    pkt.src,
                    IcmpKind::EchoReply { ident, seq },
                    icmp.payload.clone(),
                );
                ctx.send(HOST_IFACE, reply);
                self.stack.counters.echo_replies += 1;
            }
        }
    }
}

impl Node for Host {
    fn name(&self) -> &str {
        &self.name
    }

    fn start(&mut self, ctx: &mut NodeCtx<'_>) {
        for (idx, at) in self.task_starts.clone() {
            let delay = at.saturating_since(ctx.now());
            let token = ctx.set_timer(delay);
            self.stack
                .timer_map
                .insert(token, TimerPurpose::TaskStart(idx));
        }
    }

    fn receive(&mut self, ctx: &mut NodeCtx<'_>, _iface: IfaceId, packet: Packet) {
        // Raw observers first (in task order).
        for idx in 0..self.tasks.len() {
            let Some(mut task) = self.tasks[idx].take() else {
                continue;
            };
            let verdict = {
                let mut api = HostApi {
                    stack: &mut self.stack,
                    ctx,
                    task_idx: idx,
                };
                task.on_raw(&mut api, &packet)
            };
            self.tasks[idx] = Some(task);
            self.drain_dispatch(ctx);
            if verdict == RawVerdict::Consume {
                self.stack.counters.raw_consumed += 1;
                return;
            }
        }

        // Only traffic addressed to us enters the stack (no promiscuous
        // mode; raw observers above see everything delivered to the NIC).
        if packet.dst != self.stack.ip {
            return;
        }

        match &packet.body {
            PacketBody::Tcp(seg) => {
                let seg = seg.clone();
                self.handle_tcp(ctx, &packet, &seg);
            }
            PacketBody::Udp(_) => self.handle_udp(ctx, &packet),
            PacketBody::Icmp(_) => self.handle_icmp(ctx, &packet),
            PacketBody::Raw { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: TimerToken) {
        let Some(purpose) = self.stack.timer_map.remove(&token) else {
            return;
        };
        match purpose {
            TimerPurpose::TaskStart(idx) => {
                self.with_task(ctx, idx, |task, api| task.on_start(api));
            }
            TimerPurpose::Task(idx, user) => {
                self.with_task(ctx, idx, |task, api| task.on_timer(api, user));
            }
            TimerPurpose::Rto(cid, epoch) => {
                let Some(entry) = self.stack.conns.get_mut(&cid) else {
                    return;
                };
                if entry.epoch != epoch || !entry.conn.has_unacked() {
                    return;
                }
                let (out, events) = entry.conn.on_rto(ctx.now());
                self.stack.flush(ctx, out);
                self.stack.arm_rto(ctx, cid);
                for e in events {
                    self.stack.pending_dispatch.push((cid, e));
                }
                self.drain_dispatch(ctx);
                self.stack.gc(cid);
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::sim::Simulator;

    const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 2);
    const SERVER_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 2, 2);

    /// Echo service: sends back whatever it receives, then closes when the
    /// peer closes.
    struct EchoService {
        received: Vec<u8>,
    }

    impl Service for EchoService {
        fn on_data(&mut self, api: &mut ServiceApi<'_, '_>, data: &[u8]) {
            self.received.extend_from_slice(data);
            api.send(data);
        }
        fn on_peer_closed(&mut self, api: &mut ServiceApi<'_, '_>) {
            api.close();
        }
    }

    /// Client task: connect, send a message, collect the echo, close.
    struct EchoClient {
        server: Ipv4Addr,
        conn: Option<ConnId>,
        echoed: Vec<u8>,
        connected: bool,
        closed: bool,
        refused: bool,
        reset: bool,
        timed_out: bool,
    }

    impl EchoClient {
        fn new(server: Ipv4Addr) -> Self {
            EchoClient {
                server,
                conn: None,
                echoed: Vec::new(),
                connected: false,
                closed: false,
                refused: false,
                reset: false,
                timed_out: false,
            }
        }
    }

    impl HostTask for EchoClient {
        fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
            self.conn = Some(api.tcp_connect(self.server, 7));
        }
        fn on_tcp(&mut self, api: &mut HostApi<'_, '_>, conn: ConnId, event: TcpEvent) {
            match event {
                TcpEvent::Connected => {
                    self.connected = true;
                    api.tcp_send(conn, b"hello echo");
                }
                TcpEvent::Data(d) => {
                    self.echoed.extend_from_slice(&d);
                    if self.echoed == b"hello echo" {
                        api.tcp_close(conn);
                    }
                }
                TcpEvent::Closed => self.closed = true,
                TcpEvent::Refused => self.refused = true,
                TcpEvent::Reset => self.reset = true,
                TcpEvent::TimedOut => self.timed_out = true,
                TcpEvent::PeerClosed => {}
            }
        }
    }

    fn two_hosts(loss: f64) -> (Simulator, crate::node::NodeId, crate::node::NodeId) {
        let mut sim = Simulator::new(11);
        let client = Host::new("client", CLIENT_IP);
        let mut server = Host::new("server", SERVER_IP);
        server.add_tcp_listener(7, || {
            Box::new(EchoService {
                received: Vec::new(),
            })
        });
        let c = sim.add_node(Box::new(client));
        let s = sim.add_node(Box::new(server));
        sim.wire(
            c,
            HOST_IFACE,
            s,
            HOST_IFACE,
            LinkConfig::default().with_loss(loss),
        )
        .expect("wire");
        (sim, c, s)
    }

    #[test]
    fn tcp_echo_end_to_end() {
        let (mut sim, c, _s) = two_hosts(0.0);
        sim.node_mut::<Host>(c)
            .expect("client host")
            .spawn_task_at(SimTime::ZERO, Box::new(EchoClient::new(SERVER_IP)));
        sim.run_for(SimDuration::from_secs(5)).expect("run");
        let host = sim.node_ref::<Host>(c).expect("client host");
        let task = host.task_ref::<EchoClient>(0).expect("task");
        assert!(task.connected);
        assert_eq!(task.echoed, b"hello echo");
        assert!(task.closed, "clean bidirectional close");
    }

    #[test]
    fn tcp_echo_survives_packet_loss() {
        // 20% loss: retransmission must still deliver everything.
        let (mut sim, c, _s) = two_hosts(0.20);
        sim.node_mut::<Host>(c)
            .expect("client host")
            .spawn_task_at(SimTime::ZERO, Box::new(EchoClient::new(SERVER_IP)));
        sim.run_for(SimDuration::from_secs(30)).expect("run");
        let task = sim
            .node_ref::<Host>(c)
            .expect("client host")
            .task_ref::<EchoClient>(0)
            .expect("task");
        assert!(task.connected, "handshake completed despite loss");
        assert_eq!(task.echoed, b"hello echo");
    }

    #[test]
    fn syn_to_closed_port_is_refused() {
        let (mut sim, c, s) = two_hosts(0.0);
        struct ClosedPortClient {
            refused: bool,
        }
        impl HostTask for ClosedPortClient {
            fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
                api.tcp_connect(SERVER_IP, 81); // nothing listens on 81
            }
            fn on_tcp(&mut self, _api: &mut HostApi<'_, '_>, _c: ConnId, ev: TcpEvent) {
                if ev == TcpEvent::Refused {
                    self.refused = true;
                }
            }
        }
        sim.node_mut::<Host>(c)
            .expect("client")
            .spawn_task_at(SimTime::ZERO, Box::new(ClosedPortClient { refused: false }));
        sim.run_for(SimDuration::from_secs(2)).expect("run");
        assert!(
            sim.node_ref::<Host>(c)
                .expect("client")
                .task_ref::<ClosedPortClient>(0)
                .expect("task")
                .refused
        );
        assert_eq!(
            sim.node_ref::<Host>(s).expect("server").counters().rst_sent,
            1
        );
    }

    #[test]
    fn syn_to_unreachable_host_times_out() {
        let mut sim = Simulator::new(1);
        let client = Host::new("client", CLIENT_IP);
        let c = sim.add_node(Box::new(client));
        // Wire to a black hole: a host that never answers (respond_rst off,
        // and not the destination IP anyway).
        let mut hole = Host::new("hole", Ipv4Addr::new(10, 9, 9, 9));
        hole.set_respond_rst(false);
        let h = sim.add_node(Box::new(hole));
        sim.wire(c, HOST_IFACE, h, HOST_IFACE, LinkConfig::default())
            .expect("wire");
        sim.node_mut::<Host>(c)
            .expect("client")
            .spawn_task_at(SimTime::ZERO, Box::new(EchoClient::new(SERVER_IP)));
        // With exponential backoff the last retry fires after
        // 200ms·(2+4+8+16+32+64) ≈ 25s; give the run room for it.
        sim.run_for(SimDuration::from_secs(30)).expect("run");
        let task = sim
            .node_ref::<Host>(c)
            .expect("client")
            .task_ref::<EchoClient>(0)
            .expect("task");
        assert!(task.timed_out, "SYN retransmissions exhausted");
        assert!(!task.connected);
    }

    #[test]
    fn unexpected_syn_ack_draws_rst() {
        // The Fig 3b replay problem: a spoofed "client" that receives a
        // SYN/ACK it never asked for answers with RST.
        let (mut sim, c, s) = two_hosts(0.0);
        let syn_ack = Packet::tcp(
            SERVER_IP,
            CLIENT_IP,
            7,
            5555,
            100,
            1,
            TcpFlags::syn_ack(),
            vec![],
        );
        sim.inject_at(c, HOST_IFACE, syn_ack, SimTime::ZERO)
            .expect("inject");
        sim.run_for(SimDuration::from_secs(1)).expect("run");
        assert_eq!(
            sim.node_ref::<Host>(c).expect("client").counters().rst_sent,
            1
        );
        let _ = s;
    }

    #[test]
    fn raw_handler_can_consume_before_stack() {
        let (mut sim, c, _s) = two_hosts(0.0);
        struct Sniffer {
            seen: usize,
        }
        impl HostTask for Sniffer {
            fn on_start(&mut self, _api: &mut HostApi<'_, '_>) {}
            fn on_raw(&mut self, _api: &mut HostApi<'_, '_>, p: &Packet) -> RawVerdict {
                if p.as_tcp()
                    .map(|t| t.flags.has_syn() && t.flags.has_ack())
                    .unwrap_or(false)
                {
                    self.seen += 1;
                    return RawVerdict::Consume;
                }
                RawVerdict::Continue
            }
        }
        sim.node_mut::<Host>(c)
            .expect("client")
            .spawn_task_at(SimTime::ZERO, Box::new(Sniffer { seen: 0 }));
        let syn_ack = Packet::tcp(
            SERVER_IP,
            CLIENT_IP,
            7,
            5555,
            0,
            1,
            TcpFlags::syn_ack(),
            vec![],
        );
        sim.inject_at(c, HOST_IFACE, syn_ack, SimTime::ZERO)
            .expect("inject");
        sim.run_for(SimDuration::from_secs(1)).expect("run");
        let host = sim.node_ref::<Host>(c).expect("client");
        assert_eq!(host.task_ref::<Sniffer>(0).expect("task").seen, 1);
        assert_eq!(host.counters().rst_sent, 0, "stack never saw the SYN/ACK");
        assert_eq!(host.counters().raw_consumed, 1);
    }

    #[test]
    fn udp_task_roundtrip() {
        let mut sim = Simulator::new(2);
        struct UdpEchoService;
        impl UdpService for UdpEchoService {
            fn on_datagram(
                &mut self,
                api: &mut UdpApi<'_, '_>,
                src: Ipv4Addr,
                src_port: u16,
                payload: &[u8],
            ) {
                let mut reply = payload.to_vec();
                reply.reverse();
                api.send(src, src_port, reply);
            }
        }
        struct UdpClient {
            reply: Vec<u8>,
        }
        impl HostTask for UdpClient {
            fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
                let port = api.udp_bind(0).expect("bind");
                api.udp_send(port, SERVER_IP, 9999, b"abc".to_vec());
            }
            fn on_udp(
                &mut self,
                _api: &mut HostApi<'_, '_>,
                _local: u16,
                _src: Ipv4Addr,
                _sport: u16,
                payload: &[u8],
            ) {
                self.reply = payload.to_vec();
            }
        }
        let client = Host::new("client", CLIENT_IP);
        let mut server = Host::new("server", SERVER_IP);
        assert!(server.add_udp_service(9999, Box::new(UdpEchoService)));
        let c = sim.add_node(Box::new(client));
        let s = sim.add_node(Box::new(server));
        sim.wire(c, HOST_IFACE, s, HOST_IFACE, LinkConfig::default())
            .expect("wire");
        sim.node_mut::<Host>(c)
            .expect("client")
            .spawn_task_at(SimTime::ZERO, Box::new(UdpClient { reply: Vec::new() }));
        sim.run_for(SimDuration::from_secs(1)).expect("run");
        assert_eq!(
            sim.node_ref::<Host>(c)
                .expect("client")
                .task_ref::<UdpClient>(0)
                .expect("t")
                .reply,
            b"cba"
        );
    }

    #[test]
    fn ping_gets_echo_reply() {
        let (mut sim, c, s) = two_hosts(0.0);
        let ping = Packet::icmp(
            CLIENT_IP,
            SERVER_IP,
            IcmpKind::EchoRequest { ident: 1, seq: 1 },
            b"probe".to_vec(),
        );
        sim.send_from(c, HOST_IFACE, ping, SimTime::ZERO)
            .expect("send");
        sim.enable_capture();
        sim.run_for(SimDuration::from_secs(1)).expect("run");
        assert_eq!(
            sim.node_ref::<Host>(s)
                .expect("server")
                .counters()
                .echo_replies,
            1
        );
        let cap = sim.capture().expect("cap");
        let reply = cap
            .records()
            .iter()
            .find(|r| {
                r.packet
                    .as_icmp()
                    .map(|i| matches!(i.kind, IcmpKind::EchoReply { .. }))
                    .unwrap_or(false)
            })
            .expect("echo reply on the wire");
        assert_eq!(reply.packet.as_icmp().expect("icmp").payload, b"probe");
    }

    #[test]
    fn task_timers_roundtrip() {
        let (mut sim, c, _s) = two_hosts(0.0);
        struct TimerTask {
            fired: Vec<u64>,
        }
        impl HostTask for TimerTask {
            fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
                api.set_timer(SimDuration::from_millis(5), 100);
                api.set_timer(SimDuration::from_millis(1), 200);
            }
            fn on_timer(&mut self, _api: &mut HostApi<'_, '_>, token: u64) {
                self.fired.push(token);
            }
        }
        sim.node_mut::<Host>(c)
            .expect("client")
            .spawn_task_at(SimTime::ZERO, Box::new(TimerTask { fired: Vec::new() }));
        sim.run_for(SimDuration::from_secs(1)).expect("run");
        assert_eq!(
            sim.node_ref::<Host>(c)
                .expect("client")
                .task_ref::<TimerTask>(0)
                .expect("t")
                .fired,
            vec![200, 100],
            "timers fire in delay order with user tokens"
        );
    }

    #[test]
    fn late_spawn_after_simulation_started() {
        // spawn_task_at only arms timers at Node::start; the add_task +
        // bind_task_start protocol works mid-run.
        let (mut sim, c, _s) = two_hosts(0.0);
        sim.run_for(SimDuration::from_secs(1))
            .expect("warm up: sim started");
        let token = sim.alloc_timer_token();
        let host = sim.node_mut::<Host>(c).expect("client host");
        let idx = host.add_task(Box::new(EchoClient::new(SERVER_IP)));
        host.bind_task_start(idx, token);
        sim.schedule_timer(c, SimTime::ZERO + SimDuration::from_secs(2), token)
            .expect("schedule");
        sim.run_for(SimDuration::from_secs(10)).expect("run");
        let task = sim
            .node_ref::<Host>(c)
            .expect("client host")
            .task_ref::<EchoClient>(idx)
            .expect("task");
        assert!(task.connected, "late-spawned task ran");
        assert_eq!(task.echoed, b"hello echo");
    }

    #[test]
    fn spoofed_raw_send_carries_foreign_source() {
        let (mut sim, c, _s) = two_hosts(0.0);
        struct Spoofer;
        impl HostTask for Spoofer {
            fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
                let spoofed = Packet::udp(
                    Ipv4Addr::new(10, 0, 1, 77), // not our address
                    SERVER_IP,
                    5000,
                    53,
                    b"spoofed query".to_vec(),
                );
                api.raw_send(spoofed);
            }
        }
        sim.node_mut::<Host>(c)
            .expect("client")
            .spawn_task_at(SimTime::ZERO, Box::new(Spoofer));
        sim.enable_capture();
        sim.run_for(SimDuration::from_secs(1)).expect("run");
        let cap = sim.capture().expect("cap");
        assert_eq!(cap.from_addr(Ipv4Addr::new(10, 0, 1, 77)).count(), 1);
    }
}
