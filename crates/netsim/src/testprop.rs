//! In-tree property-testing support: seeded input generators and a case
//! runner, used by the workspace test suites in place of an external
//! property-testing dependency.
//!
//! Tests call [`cases`] with a fixed seed and a closure; the closure gets a
//! [`Gen`] to draw arbitrary-but-reproducible inputs from. A failing case
//! prints its case index, so `cases(N, seed, ...)` plus the index replays
//! the exact input deterministically.

use crate::rng::SimRng;

/// A seeded input generator for property tests.
#[derive(Debug)]
pub struct Gen {
    rng: SimRng,
}

impl Gen {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Gen {
        Gen {
            rng: SimRng::seed_from_u64(seed),
        }
    }

    /// Uniform `u64`.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform `u32`.
    pub fn u32(&mut self) -> u32 {
        self.rng.next_u32()
    }

    /// Uniform `u16`.
    pub fn u16(&mut self) -> u16 {
        (self.rng.next_u64() >> 48) as u16
    }

    /// Uniform `u8`.
    pub fn u8(&mut self) -> u8 {
        (self.rng.next_u64() >> 56) as u8
    }

    /// Uniform `bool`.
    pub fn bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.rng.range_u32(lo, hi)
    }

    /// Uniform `u8` in `[lo, hi)`.
    pub fn u8_in(&mut self, lo: u8, hi: u8) -> u8 {
        self.rng.range_u32(u32::from(lo), u32::from(hi)) as u8
    }

    /// Arbitrary bytes with a length drawn from `[min_len, max_len)`.
    pub fn bytes(&mut self, min_len: usize, max_len: usize) -> Vec<u8> {
        let len = self.usize_in(min_len, max_len.max(min_len + 1));
        (0..len).map(|_| self.u8()).collect()
    }

    /// A string of `len` characters drawn uniformly from `alphabet`.
    pub fn string_from(&mut self, alphabet: &[u8], len: usize) -> String {
        let s: Vec<u8> = (0..len)
            .map(|_| alphabet[self.rng.index(alphabet.len())])
            .collect();
        String::from_utf8(s).expect("alphabet is ASCII")
    }

    /// A printable-ASCII string with a length drawn from `[min_len, max_len)`.
    pub fn printable(&mut self, min_len: usize, max_len: usize) -> String {
        let len = self.usize_in(min_len, max_len.max(min_len + 1));
        let alphabet: Vec<u8> = (b' '..=b'~').collect();
        self.string_from(&alphabet, len)
    }

    /// Pick a uniform element of `items`.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.rng.index(items.len())]
    }

    /// Direct access to the underlying [`SimRng`] for custom draws.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }
}

/// Run `n` generated cases of a property. Each case gets a [`Gen`] derived
/// deterministically from `seed` and the case index; the index is reported
/// on panic so failures reproduce exactly.
pub fn cases<F: FnMut(&mut Gen)>(n: usize, seed: u64, mut property: F) {
    for case in 0..n {
        let mut g = Gen::new(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| property(&mut g)));
        if let Err(payload) = result {
            eprintln!("property failed at case {case} (seed {seed})");
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_reproducible() {
        let mut first = Vec::new();
        cases(5, 99, |g| first.push(g.u64()));
        let mut second = Vec::new();
        cases(5, 99, |g| second.push(g.u64()));
        assert_eq!(first, second);
        let distinct: std::collections::HashSet<u64> = first.iter().copied().collect();
        assert_eq!(distinct.len(), first.len(), "per-case streams differ");
    }

    #[test]
    fn generators_respect_bounds() {
        cases(50, 7, |g| {
            assert!(g.usize_in(2, 9) < 9);
            let b = g.bytes(1, 4);
            assert!((1..4).contains(&b.len()));
            let s = g.printable(0, 10);
            assert!(s.len() < 10);
            assert!(s.bytes().all(|c| (b' '..=b'~').contains(&c)));
            assert!((3..=5).contains(g.choose(&[3, 4, 5])));
        });
    }
}
