//! The deterministic event queue.
//!
//! Events are ordered by simulated time with a monotonically increasing
//! sequence number as tie-breaker, so two events scheduled for the same
//! instant fire in the order they were scheduled — determinism does not
//! depend on queue internals.
//!
//! Two implementations share that contract:
//!
//! * [`HeapQueue`] — the reference `BinaryHeap`, O(log n) per operation
//!   with a full `(time, seq)` comparison at every sift step;
//! * [`EventQueue`] — a hierarchical timer wheel ([`TimerWheel`]): six
//!   levels of 64 slots over a 1.024 µs tick, occupancy bitmaps for slot
//!   scans, and an overflow heap past the ~19 h horizon. Insertion is
//!   O(1) (two shifts and a bitmap OR), which is what same-granularity
//!   timer storms (retransmits, teardowns, link deliveries across a
//!   population) actually exercise. Slot contents are sorted by
//!   `(time, seq)` when the wheel reaches them, so the pop sequence is
//!   *identical* to the heap's — property-tested in this module and
//!   gated in `benches/perf.rs`.
//!
//! The simulator uses [`EventQueue`]; [`HeapQueue`] stays public as the
//! trace-equivalence oracle and the bench baseline.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::node::{IfaceId, NodeId};
use crate::packet::Packet;
use crate::time::SimTime;

/// An opaque handle identifying a timer set by a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken(pub u64);

/// What happens when an event fires.
#[derive(Debug, Clone)]
pub enum EventKind {
    /// Deliver a packet to a node's interface.
    Deliver {
        /// Receiving node.
        node: NodeId,
        /// Receiving interface on that node.
        iface: IfaceId,
        /// The packet being delivered.
        packet: Packet,
    },
    /// Fire a timer on a node.
    Timer {
        /// The node whose timer fires.
        node: NodeId,
        /// The token the node received when setting the timer.
        token: TimerToken,
    },
    /// Put a packet onto the link wired at a node's interface, as if the
    /// node had emitted it at the event's time. Used by
    /// [`crate::sim::Simulator::send_from`] so scheduled sends touch link
    /// state (serialization horizon, loss draws) in simulated-time order,
    /// not call order.
    Transmit {
        /// Emitting node.
        node: NodeId,
        /// Emitting interface on that node.
        iface: IfaceId,
        /// The packet to transmit.
        packet: Packet,
    },
}

/// A scheduled event.
#[derive(Debug, Clone)]
pub struct Event {
    /// When the event fires.
    pub time: SimTime,
    /// Scheduling order, used as a tie-breaker for equal times.
    pub seq: u64,
    /// The action.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The reference min-queue: a binary heap with stable FIFO ordering at
/// equal timestamps. Kept public as the oracle the wheel is
/// property-tested against and the baseline the perf bench gates on.
#[derive(Debug, Default)]
pub struct HeapQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl HeapQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` at `time`.
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// The timestamp of the earliest event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Slots per wheel level (one occupancy `u64` per level).
const WHEEL_SLOTS: usize = 64;
/// Bits of tick index consumed per level.
const LEVEL_BITS: u32 = 6;
/// Wheel levels; spans `64^6` ticks (~19.5 h at a 1.024 µs tick) before
/// the overflow heap takes over.
const WHEEL_LEVELS: usize = 6;
/// log2 of the tick length in nanoseconds (1024 ns ≈ 1 µs).
const TICK_SHIFT: u32 = 10;

/// A hierarchical timer wheel with the same `(time, seq)` pop order as
/// [`HeapQueue`].
///
/// Invariants:
///
/// * `current` is the tick of the most recently drained level-0 slot;
///   every pending wheel event has a tick `> current` (events landing at
///   or before `current` go straight into the sorted `ready` buffer).
/// * An event lives at the level of the highest 6-bit tick digit where
///   its tick differs from `current`, in the slot named by its own digit
///   at that level. Whenever `current` changes a digit, the slot now
///   named by that digit is drained and its events re-filed lower, so a
///   level's current-digit slot is always empty.
/// * Events past the wheel's horizon wait in an overflow heap; they are
///   strictly later than every wheel event, so they re-file only when the
///   wheel drains empty.
#[derive(Debug)]
pub struct TimerWheel {
    levels: Vec<Vec<Vec<Event>>>,
    occupied: [u64; WHEEL_LEVELS],
    /// Tick of the last drained level-0 slot.
    current: u64,
    /// Events due now, sorted by `(time, seq)` descending (pop from the
    /// end yields the minimum).
    ready: Vec<Event>,
    overflow: BinaryHeap<Event>,
    len: usize,
}

impl Default for TimerWheel {
    fn default() -> Self {
        TimerWheel {
            levels: (0..WHEEL_LEVELS)
                .map(|_| (0..WHEEL_SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            occupied: [0; WHEEL_LEVELS],
            current: 0,
            ready: Vec::new(),
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }
}

impl TimerWheel {
    /// Create an empty wheel.
    pub fn new() -> Self {
        Self::default()
    }

    fn tick_of(time: SimTime) -> u64 {
        time.as_nanos() >> TICK_SHIFT
    }

    fn digit(tick: u64, level: usize) -> usize {
        ((tick >> (LEVEL_BITS * level as u32)) & (WHEEL_SLOTS as u64 - 1)) as usize
    }

    /// File an event into `ready`, a wheel slot, or the overflow heap —
    /// seq already assigned, `len` already accounted.
    fn file(&mut self, event: Event) {
        let tick = Self::tick_of(event.time);
        if tick <= self.current {
            // Due now (or scheduled into the past): keep `ready` sorted
            // descending by (time, seq) so the end is the minimum.
            let pos = self
                .ready
                .partition_point(|e| (e.time, e.seq) > (event.time, event.seq));
            self.ready.insert(pos, event);
            return;
        }
        let differing = tick ^ self.current;
        let level = ((63 - differing.leading_zeros()) / LEVEL_BITS) as usize;
        if level >= WHEEL_LEVELS {
            self.overflow.push(event);
            return;
        }
        let slot = Self::digit(tick, level);
        self.levels[level][slot].push(event);
        self.occupied[level] |= 1 << slot;
    }

    /// Drain a level's slot, re-filing its events (lower levels or
    /// `ready`).
    fn cascade(&mut self, level: usize, slot: usize) {
        self.occupied[level] &= !(1 << slot);
        let events = std::mem::take(&mut self.levels[level][slot]);
        for event in events {
            self.file(event);
        }
    }

    /// Advance the wheel until `ready` holds the next due events (or the
    /// structure is empty).
    fn fill_ready(&mut self) {
        while self.ready.is_empty() && self.len > 0 {
            // Nearest occupied level-0 slot at or after the current digit.
            let d0 = Self::digit(self.current, 0);
            let mask = self.occupied[0] & (u64::MAX << d0);
            if mask != 0 {
                let slot = mask.trailing_zeros() as usize;
                self.current = (self.current & !(WHEEL_SLOTS as u64 - 1)) | slot as u64;
                self.occupied[0] &= !(1 << slot);
                let mut events = std::mem::take(&mut self.levels[0][slot]);
                events.sort_unstable_by_key(|e| std::cmp::Reverse((e.time, e.seq)));
                self.ready = events;
                continue;
            }
            // Level 0 exhausted for this window: pull the nearest
            // higher-level slot down. Strictly-greater digits only — the
            // current digit's slot is drained whenever `current` moves.
            let mut cascaded = false;
            for level in 1..WHEEL_LEVELS {
                let d = Self::digit(self.current, level);
                let mask = self.occupied[level] & (u64::MAX << d).wrapping_shl(1);
                if mask != 0 {
                    let slot = mask.trailing_zeros() as usize;
                    let shift = LEVEL_BITS * level as u32;
                    // Jump to the start of that slot's window.
                    self.current = (self.current & !(((1u64 << shift) << LEVEL_BITS) - 1))
                        | ((slot as u64) << shift);
                    self.cascade(level, slot);
                    cascaded = true;
                    break;
                }
            }
            if cascaded {
                continue;
            }
            // Wheel fully drained: jump to the overflow's earliest tick
            // and re-file everything within the new horizon.
            match self.overflow.peek() {
                Some(next) => {
                    self.current = Self::tick_of(next.time);
                    while let Some(e) = self.overflow.peek() {
                        let tick = Self::tick_of(e.time);
                        if (tick ^ self.current) >> (LEVEL_BITS * WHEEL_LEVELS as u32) != 0 {
                            break;
                        }
                        let event = self.overflow.pop().expect("peeked overflow event");
                        self.file(event);
                    }
                }
                None => return,
            }
        }
    }

    /// File `event` (seq must already be assigned by the caller).
    pub fn insert(&mut self, event: Event) {
        self.len += 1;
        self.file(event);
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.fill_ready();
        let event = self.ready.pop();
        if event.is_some() {
            self.len -= 1;
        }
        event
    }

    /// The earliest event without removing it.
    pub fn peek(&mut self) -> Option<&Event> {
        self.fill_ready();
        self.ready.last()
    }

    /// Pop the maximal run of consecutive earliest events that are
    /// deliveries at `time` to `(node, iface)`, pushing their packets
    /// onto `out` in pop order. Equivalent to a peek/pop loop — same
    /// events, same order — but walks the sorted ready buffer directly,
    /// so a same-instant delivery run costs one scan and one bulk move
    /// instead of a peek/pop call pair per event. Returns the run length.
    pub fn pop_deliver_run(
        &mut self,
        time: SimTime,
        node: NodeId,
        iface: IfaceId,
        out: &mut Vec<Packet>,
    ) -> usize {
        self.fill_ready();
        // `ready` is sorted descending by (time, seq): the run is the
        // suffix ending at the minimum.
        let mut end = self.ready.len();
        while end > 0 {
            let e = &self.ready[end - 1];
            let same = e.time == time
                && matches!(
                    &e.kind,
                    EventKind::Deliver { node: n, iface: i, .. } if *n == node && *i == iface
                );
            if !same {
                break;
            }
            end -= 1;
        }
        let n = self.ready.len() - end;
        for event in self.ready.drain(end..).rev() {
            if let EventKind::Deliver { packet, .. } = event.kind {
                out.push(packet);
            }
        }
        self.len -= n;
        n
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The simulator's min-queue of events: a [`TimerWheel`] behind the same
/// stable FIFO-at-equal-timestamps contract as [`HeapQueue`].
#[derive(Debug, Default)]
pub struct EventQueue {
    wheel: TimerWheel,
    next_seq: u64,
}

impl EventQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` at `time`.
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.wheel.insert(Event { time, seq, kind });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.wheel.pop()
    }

    /// The earliest event without removing it (used by the simulator's
    /// batched drain to extend a same-instant delivery run).
    pub fn peek(&mut self) -> Option<&Event> {
        self.wheel.peek()
    }

    /// Bulk-pop the pending same-instant delivery run to `(node, iface)`
    /// at `time` (see [`TimerWheel::pop_deliver_run`]).
    pub fn pop_deliver_run(
        &mut self,
        time: SimTime,
        node: NodeId,
        iface: IfaceId,
        out: &mut Vec<Packet>,
    ) -> usize {
        self.wheel.pop_deliver_run(time, node, iface, out)
    }

    /// The timestamp of the earliest event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.wheel.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.wheel.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.wheel.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn timer(node: usize, token: u64) -> EventKind {
        EventKind::Timer {
            node: NodeId(node),
            token: TimerToken(token),
        }
    }

    fn token_of(e: &Event) -> u64 {
        match e.kind {
            EventKind::Timer { token, .. } => token.0,
            _ => unreachable!(),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        let t = |s| SimTime::ZERO + SimDuration::from_secs(s);
        q.push(t(3), timer(0, 3));
        q.push(t(1), timer(0, 1));
        q.push(t(2), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| token_of(&e))
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(100);
        for i in 0..50 {
            q.push(t, timer(0, i));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| token_of(&e))
            .collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_tracks_minimum() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_nanos(50), timer(0, 0));
        q.push(SimTime::from_nanos(10), timer(0, 1));
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(10)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(50)));
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, timer(0, 0));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_crosses_level_boundaries() {
        // Walk the wheel across several level-0 windows with pushes
        // interleaved between pops, including re-pushes at the just-popped
        // instant (which must land behind nothing).
        let mut q = EventQueue::new();
        let mut expected = Vec::new();
        for i in 0..200u64 {
            // Spread across ~4 level-1 windows (64 ticks per level-0 turn).
            let t = SimTime::from_nanos(i * 1500 * 1024 / 200 * 64);
            q.push(t, timer(0, i));
            expected.push((t, i));
        }
        expected.sort_by_key(|&(t, i)| (t, i));
        let mut popped = Vec::new();
        while let Some(e) = q.pop() {
            popped.push((e.time, token_of(&e)));
            // Occasionally push a later event mid-drain.
            if popped.len() == 50 {
                let t = e.time + SimDuration::from_millis(1);
                q.push(t, timer(0, 10_000));
            }
        }
        assert_eq!(popped.len(), 201);
        // The mid-drain push landed in time order.
        let idx = popped
            .iter()
            .position(|&(_, tok)| tok == 10_000)
            .expect("mid-drain event");
        assert!(popped[..idx].iter().all(|&(t, _)| t <= popped[idx].0));
    }

    #[test]
    fn overflow_events_past_the_horizon_still_order() {
        let mut q = EventQueue::new();
        // ~19.5 h horizon at a 1.024 µs tick; push one event a week out,
        // one a day out, one now.
        let day = SimTime::ZERO + SimDuration::from_hours(24);
        let week = SimTime::ZERO + SimDuration::from_hours(24 * 7);
        q.push(week, timer(0, 2));
        q.push(day, timer(0, 1));
        q.push(SimTime::from_nanos(5), timer(0, 0));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| token_of(&e))
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    /// The satellite property test: random schedules (timer storms with
    /// clustered and far-flung times, interleaved pops, same-instant
    /// bursts) through the wheel and the heap must produce identical
    /// event traces.
    #[test]
    fn wheel_trace_equals_heap_trace_on_random_schedules() {
        crate::testprop::cases(150, 0x77EE1, |g| {
            let mut wheel = EventQueue::new();
            let mut heap = HeapQueue::new();
            let mut base = 0u64;
            let ops = g.usize_in(2, 400);
            let mut wheel_trace = Vec::new();
            let mut heap_trace = Vec::new();
            let mut pending = 0i64;
            for i in 0..ops {
                let roll = g.usize_in(0, 100);
                if roll < 60 || pending == 0 {
                    // Push: cluster most times near `base` (same-tick
                    // bursts), sprinkle far-future and past times.
                    let t = match g.usize_in(0, 10) {
                        0..=5 => base + g.u64() % 4096,
                        6..=7 => base + g.u64() % 200_000_000,
                        8 => base.saturating_sub(g.u64() % 10_000),
                        // Far out: exercises higher levels and overflow.
                        _ => base + 1_000_000_000 * (1 + g.u64() % 200_000),
                    };
                    let time = SimTime::from_nanos(t);
                    wheel.push(time, timer(0, i as u64));
                    heap.push(time, timer(0, i as u64));
                    pending += 1;
                } else {
                    let w = wheel.pop().expect("wheel has pending events");
                    let h = heap.pop().expect("heap has pending events");
                    // Advancing base past popped times keeps later pushes
                    // plausible (mostly-monotonic schedules) while the
                    // `past` arm still back-schedules.
                    base = base.max(w.time.as_nanos());
                    wheel_trace.push((w.time, w.seq, token_of(&w)));
                    heap_trace.push((h.time, h.seq, token_of(&h)));
                    pending -= 1;
                }
            }
            while let Some(w) = wheel.pop() {
                let h = heap.pop().expect("heap drains in lockstep");
                wheel_trace.push((w.time, w.seq, token_of(&w)));
                heap_trace.push((h.time, h.seq, token_of(&h)));
            }
            assert!(heap.pop().is_none(), "heap drained with the wheel");
            assert_eq!(
                wheel_trace, heap_trace,
                "wheel and heap event traces diverged"
            );
        });
    }
}
