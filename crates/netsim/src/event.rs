//! The deterministic event queue.
//!
//! Events are ordered by simulated time with a monotonically increasing
//! sequence number as tie-breaker, so two events scheduled for the same
//! instant fire in the order they were scheduled — determinism does not
//! depend on heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::node::{IfaceId, NodeId};
use crate::packet::Packet;
use crate::time::SimTime;

/// An opaque handle identifying a timer set by a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken(pub u64);

/// What happens when an event fires.
#[derive(Debug, Clone)]
pub enum EventKind {
    /// Deliver a packet to a node's interface.
    Deliver {
        /// Receiving node.
        node: NodeId,
        /// Receiving interface on that node.
        iface: IfaceId,
        /// The packet being delivered.
        packet: Packet,
    },
    /// Fire a timer on a node.
    Timer {
        /// The node whose timer fires.
        node: NodeId,
        /// The token the node received when setting the timer.
        token: TimerToken,
    },
    /// Put a packet onto the link wired at a node's interface, as if the
    /// node had emitted it at the event's time. Used by
    /// [`crate::sim::Simulator::send_from`] so scheduled sends touch link
    /// state (serialization horizon, loss draws) in simulated-time order,
    /// not call order.
    Transmit {
        /// Emitting node.
        node: NodeId,
        /// Emitting interface on that node.
        iface: IfaceId,
        /// The packet to transmit.
        packet: Packet,
    },
}

/// A scheduled event.
#[derive(Debug, Clone)]
pub struct Event {
    /// When the event fires.
    pub time: SimTime,
    /// Scheduling order, used as a tie-breaker for equal times.
    pub seq: u64,
    /// The action.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-queue of events with stable FIFO ordering at equal timestamps.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` at `time`.
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// The timestamp of the earliest event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn timer(node: usize, token: u64) -> EventKind {
        EventKind::Timer {
            node: NodeId(node),
            token: TimerToken(token),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        let t = |s| SimTime::ZERO + SimDuration::from_secs(s);
        q.push(t(3), timer(0, 3));
        q.push(t(1), timer(0, 1));
        q.push(t(2), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(100);
        for i in 0..50 {
            q.push(t, timer(0, i));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_tracks_minimum() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_nanos(50), timer(0, 0));
        q.push(SimTime::from_nanos(10), timer(0, 1));
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(10)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(50)));
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, timer(0, 0));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
