//! The simulator: owns nodes, links and the event queue, and runs the
//! discrete-event loop.
//!
//! ```
//! use underradar_netsim::{Simulator, LinkConfig, Packet, SimTime, SimDuration};
//! use underradar_netsim::node::{Node, NodeCtx, IfaceId};
//! use std::any::Any;
//!
//! struct Sink { name: String, got: usize }
//! impl Node for Sink {
//!     fn name(&self) -> &str { &self.name }
//!     fn receive(&mut self, _: &mut NodeCtx<'_>, _: IfaceId, _: Packet) { self.got += 1; }
//!     fn as_any(&self) -> &dyn Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn Any { self }
//! }
//!
//! let mut sim = Simulator::new(1);
//! let a = sim.add_node(Box::new(Sink { name: "a".into(), got: 0 }));
//! let b = sim.add_node(Box::new(Sink { name: "b".into(), got: 0 }));
//! sim.wire(a, IfaceId(0), b, IfaceId(0), LinkConfig::default()).expect("fresh ifaces wire");
//! let pkt = Packet::udp([10,0,0,1].into(), [10,0,0,2].into(), 1, 2, vec![]);
//! sim.send_from(a, IfaceId(0), pkt, SimTime::ZERO).expect("node a exists");
//! sim.run_for(SimDuration::from_secs(1)).expect("within event budget");
//! assert_eq!(sim.node_ref::<Sink>(b).expect("node b exists").got, 1);
//! ```

use crate::capture::{Capture, CapturedPacket};
use crate::error::NetsimError;
use crate::event::{EventKind, EventQueue, TimerToken};
use crate::link::{Endpoint, Link, LinkConfig, LinkId, TxOutcome};
use crate::node::{Emit, IfaceId, Node, NodeCtx, NodeId};
use crate::packet::Packet;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use underradar_telemetry::{Counter, HistogramHandle, Telemetry, TraceRecord, Tracer};

/// Default cap on processed events, a guard against runaway packet storms.
pub const DEFAULT_EVENT_BUDGET: u64 = 50_000_000;

/// Pre-resolved scheduler metric handles. All-disabled by default, so the
/// hot loop pays one boolean check per event when telemetry is off.
struct SimMetrics {
    live: bool,
    events_deliver: Counter,
    events_timer: Counter,
    events_transmit: Counter,
    link_transmits: Counter,
    link_tx_bytes: Counter,
    link_drops: Counter,
    link_reordered: Counter,
    link_duplicates: Counter,
    link_corrupted: Counter,
    queue_depth: HistogramHandle,
}

impl SimMetrics {
    fn disabled() -> Self {
        SimMetrics {
            live: false,
            events_deliver: Counter::disabled(),
            events_timer: Counter::disabled(),
            events_transmit: Counter::disabled(),
            link_transmits: Counter::disabled(),
            link_tx_bytes: Counter::disabled(),
            link_drops: Counter::disabled(),
            link_reordered: Counter::disabled(),
            link_duplicates: Counter::disabled(),
            link_corrupted: Counter::disabled(),
            queue_depth: HistogramHandle::disabled(),
        }
    }

    fn resolve(tel: &Telemetry) -> Self {
        SimMetrics {
            live: tel.is_enabled(),
            events_deliver: tel.counter("netsim.events.deliver"),
            events_timer: tel.counter("netsim.events.timer"),
            events_transmit: tel.counter("netsim.events.transmit"),
            link_transmits: tel.counter("netsim.link.transmits"),
            link_tx_bytes: tel.counter("netsim.link.tx_bytes"),
            link_drops: tel.counter("netsim.link.drops"),
            link_reordered: tel.counter("netsim.link.reordered"),
            link_duplicates: tel.counter("netsim.link.duplicates"),
            link_corrupted: tel.counter("netsim.link.corrupted"),
            queue_depth: tel.histogram("netsim.queue.depth"),
        }
    }
}

/// A link-stage flight-recorder record: an impairment draw that fired.
/// `seq` is the scheduler's transmit counter; `cap` (when a capture is
/// attached) is the index this packet occupies in it.
fn link_record(
    when: SimTime,
    seq: u64,
    kind: &'static str,
    packet: &Packet,
    capture: Option<&Capture>,
) -> TraceRecord {
    let mut fields: Vec<(&'static str, underradar_telemetry::FieldValue)> = Vec::with_capacity(2);
    fields.push(("bytes", (packet.wire_len() as u64).into()));
    if let Some(cap) = capture {
        fields.push(("cap", (cap.len() as u64).into()));
    }
    TraceRecord {
        t_ns: when.as_nanos(),
        seq,
        stage: "link",
        kind,
        flow: Some(packet.trace_flow()),
        fields,
    }
}

/// The discrete-event network simulator.
pub struct Simulator {
    nodes: Vec<Option<Box<dyn Node>>>,
    names: Vec<String>,
    /// Per node, per interface: the link it is wired to (if any).
    wiring: Vec<Vec<Option<LinkId>>>,
    links: Vec<Link>,
    queue: EventQueue,
    rng: SimRng,
    now: SimTime,
    started: bool,
    capture: Option<Capture>,
    event_budget: u64,
    events_processed: u64,
    next_timer: u64,
    emits: Vec<Emit>,
    /// Reusable buffer for batched same-instant deliveries; lives on the
    /// simulator so steady-state batching allocates nothing per packet.
    batch: Vec<Packet>,
    telemetry: Telemetry,
    metrics: SimMetrics,
    tracer: Tracer,
    /// Running transmit attempt counter (1-based); stamps link-stage
    /// flight-recorder records so they correlate with the pcap capture.
    tx_seq: u64,
}

impl Simulator {
    /// Create a simulator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Simulator {
            nodes: Vec::new(),
            names: Vec::new(),
            wiring: Vec::new(),
            links: Vec::new(),
            queue: EventQueue::new(),
            rng: SimRng::seed_from_u64(seed),
            now: SimTime::ZERO,
            started: false,
            capture: None,
            event_budget: DEFAULT_EVENT_BUDGET,
            events_processed: 0,
            next_timer: 0,
            emits: Vec::new(),
            batch: Vec::new(),
            telemetry: Telemetry::disabled(),
            metrics: SimMetrics::disabled(),
            tracer: Tracer::disabled(),
            tx_seq: 0,
        }
    }

    /// Attach a telemetry handle. The scheduler records live counters
    /// (events by kind, link transmits/bytes/drops, queue depths) into it;
    /// when the handle is disabled — the default — the hot loop pays one
    /// boolean check per event.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.metrics = SimMetrics::resolve(&tel);
        self.tracer = tel.tracer();
        self.telemetry = tel;
    }

    /// The resolved flight-recorder handle (disabled unless the attached
    /// telemetry was built with tracing).
    pub fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }

    /// The attached telemetry handle (disabled unless
    /// [`Simulator::set_telemetry`] was called).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Export point-in-time scheduler state into `tel`: total events
    /// processed, node/link counts, pending events, and the simulated
    /// clock. Idempotent (uses absolute totals), so it can be called at
    /// any point; live per-kind counters require [`Simulator::set_telemetry`].
    pub fn export_telemetry(&self, tel: &Telemetry) {
        if !tel.is_enabled() {
            return;
        }
        tel.set_counter("netsim.events_processed", self.events_processed);
        tel.set_gauge("netsim.nodes", self.nodes.len() as i64);
        tel.set_gauge("netsim.links", self.links.len() as i64);
        tel.set_gauge("netsim.pending_events", self.queue.len() as i64);
        tel.set_gauge("netsim.now_ns", self.now.as_nanos() as i64);
    }

    /// Enable global packet capture (every packet accepted onto any link).
    pub fn enable_capture(&mut self) {
        if self.capture.is_none() {
            self.capture = Some(Capture::new());
        }
    }

    /// The capture, if enabled.
    pub fn capture(&self) -> Option<&Capture> {
        self.capture.as_ref()
    }

    /// Take the capture out of the simulator (e.g. to analyze after a run).
    pub fn take_capture(&mut self) -> Option<Capture> {
        self.capture.take()
    }

    /// Override the runaway-guard event budget.
    pub fn set_event_budget(&mut self, budget: u64) {
        self.event_budget = budget;
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Register a node, returning its id.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.names.push(node.name().to_string());
        self.nodes.push(Some(node));
        self.wiring.push(Vec::new());
        id
    }

    /// The registered name of `node`.
    pub fn node_name(&self, node: NodeId) -> &str {
        self.names.get(node.0).map(String::as_str).unwrap_or("?")
    }

    /// All node names indexed by id (for [`Capture::render`]).
    pub fn node_names(&self) -> &[String] {
        &self.names
    }

    /// Typed shared access to a node.
    pub fn node_ref<T: Node>(&self, id: NodeId) -> Option<&T> {
        self.nodes.get(id.0)?.as_ref()?.as_any().downcast_ref::<T>()
    }

    /// Typed mutable access to a node.
    ///
    /// Mutations take effect immediately but cannot schedule packets or
    /// timers; use node tasks for in-simulation behaviour.
    pub fn node_mut<T: Node>(&mut self, id: NodeId) -> Option<&mut T> {
        self.nodes
            .get_mut(id.0)?
            .as_mut()?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// Wire `(a, ai)` to `(b, bi)` with a fresh link.
    pub fn wire(
        &mut self,
        a: NodeId,
        ai: IfaceId,
        b: NodeId,
        bi: IfaceId,
        config: LinkConfig,
    ) -> Result<LinkId, NetsimError> {
        for (n, i) in [(a, ai), (b, bi)] {
            if n.0 >= self.nodes.len() {
                return Err(NetsimError::UnknownNode(n.0));
            }
            let table = &mut self.wiring[n.0];
            if table.len() <= i.0 {
                table.resize(i.0 + 1, None);
            }
            if table[i.0].is_some() {
                return Err(NetsimError::IfaceAlreadyWired {
                    node: n.0,
                    iface: i.0,
                });
            }
        }
        let id = LinkId(self.links.len());
        self.links.push(Link::new(
            Endpoint { node: a, iface: ai },
            Endpoint { node: b, iface: bi },
            config,
        ));
        self.wiring[a.0][ai.0] = Some(id);
        self.wiring[b.0][bi.0] = Some(id);
        Ok(id)
    }

    /// Schedule a packet transmission from a node's interface at `time`, as
    /// if the node had emitted it. Useful for test harnesses.
    pub fn send_from(
        &mut self,
        node: NodeId,
        iface: IfaceId,
        packet: Packet,
        time: SimTime,
    ) -> Result<(), NetsimError> {
        if node.0 >= self.nodes.len() {
            return Err(NetsimError::UnknownNode(node.0));
        }
        // Defer the link transmission to the scheduled instant via a queued
        // Transmit event. Touching the link immediately (as earlier versions
        // did) consumed the serialization horizon and loss draws in *call*
        // order, so out-of-order send_from calls produced different traces
        // than the same sends issued chronologically.
        let time = time.max(self.now);
        self.queue.push(
            time,
            EventKind::Transmit {
                node,
                iface,
                packet,
            },
        );
        Ok(())
    }

    /// Deliver a packet directly to a node's interface at `time`, bypassing
    /// any link (loss, latency). Useful for injecting crafted traffic.
    pub fn inject_at(
        &mut self,
        node: NodeId,
        iface: IfaceId,
        packet: Packet,
        time: SimTime,
    ) -> Result<(), NetsimError> {
        if node.0 >= self.nodes.len() {
            return Err(NetsimError::UnknownNode(node.0));
        }
        let time = time.max(self.now);
        self.queue.push(
            time,
            EventKind::Deliver {
                node,
                iface,
                packet,
            },
        );
        Ok(())
    }

    /// Run until the queue is exhausted or `deadline` is reached; the clock
    /// ends at `deadline` if the queue drained earlier.
    pub fn run_until(&mut self, deadline: SimTime) -> Result<(), NetsimError> {
        self.ensure_started();
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step()?;
        }
        self.now = self.now.max(deadline);
        Ok(())
    }

    /// Run for `duration` of simulated time from now.
    pub fn run_for(&mut self, duration: SimDuration) -> Result<(), NetsimError> {
        let deadline = self.now + duration;
        self.run_until(deadline)
    }

    /// Run until no events remain.
    pub fn run_to_completion(&mut self) -> Result<(), NetsimError> {
        self.ensure_started();
        while !self.queue.is_empty() {
            self.step()?;
        }
        Ok(())
    }

    /// Whether any events are pending.
    pub fn has_pending_events(&self) -> bool {
        !self.queue.is_empty()
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for idx in 0..self.nodes.len() {
            self.with_node(NodeId(idx), |node, ctx| node.start(ctx));
        }
    }

    fn step(&mut self) -> Result<(), NetsimError> {
        self.drain_batch().map(|_| ())
    }

    /// Process the next event. When it is a delivery to a node that opted
    /// into batching ([`Node::wants_batch`]), the whole consecutive run of
    /// same-instant deliveries to that node and interface is popped and
    /// handed over as one [`Node::receive_batch`] call, amortizing the
    /// per-packet dispatch. Returns the number of events consumed.
    pub fn drain_batch(&mut self) -> Result<usize, NetsimError> {
        let Some(event) = self.queue.pop() else {
            return Ok(0);
        };
        self.events_processed += 1;
        if self.events_processed > self.event_budget {
            return Err(NetsimError::EventBudgetExhausted {
                budget: self.event_budget,
            });
        }
        self.now = self.now.max(event.time);
        if self.metrics.live {
            self.metrics.queue_depth.observe(self.queue.len() as u64);
        }
        match event.kind {
            EventKind::Deliver {
                node,
                iface,
                packet,
            } => {
                self.metrics.events_deliver.incr();
                let batching = self
                    .nodes
                    .get(node.0)
                    .and_then(|slot| slot.as_deref())
                    .is_some_and(|n| n.wants_batch());
                if !batching {
                    self.with_node(node, |n, ctx| n.receive(ctx, iface, packet));
                    return Ok(1);
                }
                let mut batch = std::mem::take(&mut self.batch);
                batch.clear();
                batch.push(packet);
                // Bulk-pop the rest of the same-instant run: one ready-
                // buffer scan instead of a peek/pop pair per event, with
                // the per-event accounting hoisted to one add each.
                let followers = self
                    .queue
                    .pop_deliver_run(event.time, node, iface, &mut batch);
                self.events_processed += followers as u64;
                self.metrics.events_deliver.add(followers as u64);
                let consumed = batch.len();
                self.with_node(node, |n, ctx| n.receive_batch(ctx, iface, &mut batch));
                batch.clear();
                self.batch = batch;
                return Ok(consumed);
            }
            EventKind::Timer { node, token } => {
                self.metrics.events_timer.incr();
                self.with_node(node, |n, ctx| n.on_timer(ctx, token));
            }
            EventKind::Transmit {
                node,
                iface,
                packet,
            } => {
                self.metrics.events_transmit.incr();
                self.transmit(node, iface, packet, self.now);
            }
        }
        Ok(1)
    }

    /// Call `f` on a node with a fresh context, then apply its emitted
    /// effects. The node is temporarily removed from the table so the
    /// simulator can be borrowed for the context without aliasing.
    fn with_node<F>(&mut self, id: NodeId, f: F)
    where
        F: FnOnce(&mut dyn Node, &mut NodeCtx<'_>),
    {
        let Some(slot) = self.nodes.get_mut(id.0) else {
            return;
        };
        let Some(mut node) = slot.take() else { return };
        debug_assert!(self.emits.is_empty());
        let mut emits = std::mem::take(&mut self.emits);
        {
            let mut ctx = NodeCtx {
                now: self.now,
                node: id,
                emits: &mut emits,
                rng: &mut self.rng,
                next_timer: &mut self.next_timer,
            };
            f(node.as_mut(), &mut ctx);
        }
        self.nodes[id.0] = Some(node);
        for emit in emits.drain(..) {
            match emit {
                Emit::Send { iface, packet } => self.transmit(id, iface, packet, self.now),
                Emit::Timer { delay, token } => {
                    self.queue
                        .push(self.now + delay, EventKind::Timer { node: id, token });
                }
            }
        }
        self.emits = emits;
    }

    /// Put a packet on the link wired to `(node, iface)` at time `when`.
    /// Unwired interfaces silently drop (an unplugged cable). Link
    /// impairments (corruption, duplication) are applied here so every
    /// delivered copy — and the capture — reflects what crossed the wire.
    fn transmit(&mut self, node: NodeId, iface: IfaceId, mut packet: Packet, when: SimTime) {
        let Some(link_id) = self
            .wiring
            .get(node.0)
            .and_then(|t| t.get(iface.0))
            .copied()
            .flatten()
        else {
            return;
        };
        let link = &mut self.links[link_id.0];
        let Some(peer) = link.peer_of(node, iface) else {
            return;
        };
        let wire_len = packet.wire_len();
        self.tx_seq += 1;
        match link.transmit(node, iface, wire_len, when, &mut self.rng) {
            TxOutcome::Deliver(d) => {
                if self.metrics.live {
                    self.metrics.link_transmits.incr();
                    self.metrics.link_tx_bytes.add(wire_len as u64);
                    if d.reordered {
                        self.metrics.link_reordered.incr();
                    }
                }
                if self.tracer.is_live() && d.reordered {
                    self.tracer.record(link_record(
                        when,
                        self.tx_seq,
                        "reordered",
                        &packet,
                        self.capture.as_ref(),
                    ));
                }
                if d.corrupt {
                    let payload = packet.body.payload_mut();
                    if !payload.is_empty() {
                        let idx = self.rng.index(payload.len());
                        payload[idx] ^= 0x55;
                        self.metrics.link_corrupted.incr();
                        if self.tracer.is_live() {
                            self.tracer.record(link_record(
                                when,
                                self.tx_seq,
                                "corrupted",
                                &packet,
                                self.capture.as_ref(),
                            ));
                        }
                    }
                }
                if let Some(cap) = &mut self.capture {
                    cap.record(CapturedPacket {
                        time: when,
                        from_node: node,
                        from_iface: iface,
                        to_node: peer.node,
                        to_iface: peer.iface,
                        packet: packet.clone(),
                    });
                }
                let duplicate = d.duplicate_at.map(|dup_at| (dup_at, packet.clone()));
                self.queue.push(
                    d.at,
                    EventKind::Deliver {
                        node: peer.node,
                        iface: peer.iface,
                        packet,
                    },
                );
                if let Some((dup_at, copy)) = duplicate {
                    self.metrics.link_duplicates.incr();
                    if self.metrics.live {
                        self.metrics.link_tx_bytes.add(wire_len as u64);
                    }
                    if self.tracer.is_live() {
                        self.tracer.record(link_record(
                            when,
                            self.tx_seq,
                            "duplicated",
                            &copy,
                            self.capture.as_ref(),
                        ));
                    }
                    if let Some(cap) = &mut self.capture {
                        cap.record(CapturedPacket {
                            time: when,
                            from_node: node,
                            from_iface: iface,
                            to_node: peer.node,
                            to_iface: peer.iface,
                            packet: copy.clone(),
                        });
                    }
                    // Pushed after the original at the same timestamp, so the
                    // FIFO tie-break delivers the copy second.
                    self.queue.push(
                        dup_at,
                        EventKind::Deliver {
                            node: peer.node,
                            iface: peer.iface,
                            packet: copy,
                        },
                    );
                }
            }
            TxOutcome::Lost => {
                self.metrics.link_drops.incr();
                if self.tracer.is_live() {
                    self.tracer
                        .record(link_record(when, self.tx_seq, "dropped", &packet, None));
                }
            }
        }
    }

    /// Allocate a timer token from the same counter node contexts use, for
    /// pairing with [`Simulator::schedule_timer`] (e.g. to arm work on a
    /// node after the simulation has already started).
    pub fn alloc_timer_token(&mut self) -> TimerToken {
        let token = TimerToken(self.next_timer);
        self.next_timer += 1;
        token
    }

    /// Schedule a timer for a node from outside a node callback (used by
    /// topology setup to arm initial work).
    pub fn schedule_timer(
        &mut self,
        node: NodeId,
        at: SimTime,
        token: TimerToken,
    ) -> Result<(), NetsimError> {
        if node.0 >= self.nodes.len() {
            return Err(NetsimError::UnknownNode(node.0));
        }
        let at = at.max(self.now);
        self.queue.push(at, EventKind::Timer { node, token });
        Ok(())
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("nodes", &self.names)
            .field("links", &self.links.len())
            .field("now", &self.now)
            .field("pending_events", &self.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;
    use std::net::Ipv4Addr;

    /// Echoes every packet back out the interface it arrived on, after a
    /// configurable number of timer-based delays.
    struct Echo {
        name: String,
        received: Vec<(SimTime, Packet)>,
        echo: bool,
    }

    impl Echo {
        fn new(name: &str, echo: bool) -> Self {
            Echo {
                name: name.into(),
                received: Vec::new(),
                echo,
            }
        }
    }

    impl Node for Echo {
        fn name(&self) -> &str {
            &self.name
        }
        fn receive(&mut self, ctx: &mut NodeCtx<'_>, iface: IfaceId, packet: Packet) {
            self.received.push((ctx.now(), packet.clone()));
            if self.echo {
                let mut back = packet;
                std::mem::swap(&mut back.src, &mut back.dst);
                ctx.send(iface, back);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    struct TimerNode {
        name: String,
        fired: Vec<(SimTime, TimerToken)>,
        chain: u32,
    }

    impl Node for TimerNode {
        fn name(&self) -> &str {
            &self.name
        }
        fn start(&mut self, ctx: &mut NodeCtx<'_>) {
            ctx.set_timer(SimDuration::from_millis(10));
        }
        fn receive(&mut self, _: &mut NodeCtx<'_>, _: IfaceId, _: Packet) {}
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: TimerToken) {
            self.fired.push((ctx.now(), token));
            if self.chain > 0 {
                self.chain -= 1;
                ctx.set_timer(SimDuration::from_millis(10));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    const A_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn two_node_sim(echo: bool) -> (Simulator, NodeId, NodeId) {
        let mut sim = Simulator::new(7);
        let a = sim.add_node(Box::new(Echo::new("a", false)));
        let b = sim.add_node(Box::new(Echo::new("b", echo)));
        sim.wire(a, IfaceId(0), b, IfaceId(0), LinkConfig::default())
            .expect("wire");
        (sim, a, b)
    }

    #[test]
    fn packet_crosses_link_with_latency() {
        let (mut sim, a, b) = two_node_sim(false);
        let p = Packet::udp(A_IP, B_IP, 1, 2, b"hi".to_vec());
        sim.send_from(a, IfaceId(0), p, SimTime::ZERO)
            .expect("send");
        sim.run_to_completion().expect("run");
        let bnode = sim.node_ref::<Echo>(b).expect("b");
        assert_eq!(bnode.received.len(), 1);
        // 1ms latency + 30 bytes at 1 Gbps (240ns)
        assert_eq!(bnode.received[0].0, SimTime::from_nanos(1_000_240));
    }

    #[test]
    fn echo_returns_to_sender() {
        let (mut sim, a, b) = two_node_sim(true);
        let p = Packet::udp(A_IP, B_IP, 1, 2, b"ping".to_vec());
        sim.send_from(a, IfaceId(0), p, SimTime::ZERO)
            .expect("send");
        sim.run_to_completion().expect("run");
        let anode = sim.node_ref::<Echo>(a).expect("a");
        assert_eq!(anode.received.len(), 1);
        assert_eq!(anode.received[0].1.src, B_IP, "addresses swapped by echo");
        let _ = b;
    }

    #[test]
    fn start_is_called_once_and_timers_chain() {
        let mut sim = Simulator::new(1);
        let t = sim.add_node(Box::new(TimerNode {
            name: "t".into(),
            fired: vec![],
            chain: 2,
        }));
        sim.run_to_completion().expect("run");
        let node = sim.node_ref::<TimerNode>(t).expect("t");
        assert_eq!(node.fired.len(), 3);
        assert_eq!(node.fired[0].0, SimTime::from_nanos(10_000_000));
        assert_eq!(node.fired[2].0, SimTime::from_nanos(30_000_000));
        // Tokens are unique.
        let mut tokens: Vec<u64> = node.fired.iter().map(|(_, t)| t.0).collect();
        tokens.dedup();
        assert_eq!(tokens.len(), 3);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = Simulator::new(1);
        let t = sim.add_node(Box::new(TimerNode {
            name: "t".into(),
            fired: vec![],
            chain: 10,
        }));
        sim.run_until(SimTime::from_nanos(25_000_000)).expect("run");
        assert_eq!(sim.node_ref::<TimerNode>(t).expect("t").fired.len(), 2);
        assert_eq!(sim.now(), SimTime::from_nanos(25_000_000));
        sim.run_to_completion().expect("run rest");
        assert_eq!(sim.node_ref::<TimerNode>(t).expect("t").fired.len(), 11);
    }

    #[test]
    fn capture_records_link_transmissions() {
        let (mut sim, a, _b) = two_node_sim(true);
        sim.enable_capture();
        let p = Packet::udp(A_IP, B_IP, 1, 2, vec![]);
        sim.send_from(a, IfaceId(0), p, SimTime::ZERO)
            .expect("send");
        sim.run_to_completion().expect("run");
        let cap = sim.capture().expect("capture");
        assert_eq!(cap.len(), 2, "request and echo");
        let text = cap.render(sim.node_names());
        assert!(text.contains("a[0] -> b[0]"));
        assert!(text.contains("b[0] -> a[0]"));
    }

    #[test]
    fn unwired_iface_drops_silently() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Box::new(Echo::new("a", false)));
        let p = Packet::udp(A_IP, B_IP, 1, 2, vec![]);
        sim.send_from(a, IfaceId(5), p, SimTime::ZERO)
            .expect("send");
        sim.run_to_completion().expect("run");
        // Only the scheduled Transmit event itself runs; the packet dies at
        // the unplugged interface, delivering nothing.
        assert_eq!(sim.events_processed(), 1);
        assert_eq!(sim.node_ref::<Echo>(a).expect("a").received.len(), 0);
    }

    /// `send_from` calls issued out of chronological order must produce the
    /// same delivery schedule as the same sends issued in order: the link's
    /// serialization horizon is consumed at the scheduled instants, not at
    /// call time.
    #[test]
    fn send_from_is_order_independent() {
        // 8 Kbps: a 30-byte UDP packet serializes in 30ms, so back-to-back
        // packets visibly queue behind each other.
        let slow = LinkConfig::default()
            .with_latency(SimDuration::from_millis(1))
            .with_bandwidth_bps(8_000);
        let deliveries = |times: &[u64]| -> Vec<SimTime> {
            let mut sim = Simulator::new(7);
            let a = sim.add_node(Box::new(Echo::new("a", false)));
            let b = sim.add_node(Box::new(Echo::new("b", false)));
            sim.wire(a, IfaceId(0), b, IfaceId(0), slow).expect("wire");
            for (i, &t) in times.iter().enumerate() {
                let p = Packet::udp(A_IP, B_IP, 1000 + i as u16, 2, b"xx".to_vec());
                sim.send_from(a, IfaceId(0), p, SimTime::from_nanos(t))
                    .expect("send");
            }
            sim.run_to_completion().expect("run");
            let mut got: Vec<SimTime> = sim
                .node_ref::<Echo>(b)
                .expect("b")
                .received
                .iter()
                .map(|(t, _)| *t)
                .collect();
            got.sort_unstable();
            got
        };
        // Three sends inside one serialization window, scheduled in order
        // vs. reverse call order.
        let in_order = deliveries(&[0, 10_000_000, 20_000_000]);
        let reversed = deliveries(&[20_000_000, 10_000_000, 0]);
        assert_eq!(in_order.len(), 3);
        assert_eq!(in_order, reversed, "call order must not affect the trace");
        // And the queueing is real: each packet waits out its predecessor's
        // serialization (30ms per packet at 8 Kbps).
        assert!(in_order[1] > in_order[0] + SimDuration::from_millis(10));
    }

    #[test]
    fn double_wiring_rejected() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Box::new(Echo::new("a", false)));
        let b = sim.add_node(Box::new(Echo::new("b", false)));
        let c = sim.add_node(Box::new(Echo::new("c", false)));
        sim.wire(a, IfaceId(0), b, IfaceId(0), LinkConfig::default())
            .expect("first");
        let err = sim.wire(a, IfaceId(0), c, IfaceId(0), LinkConfig::default());
        assert_eq!(
            err,
            Err(NetsimError::IfaceAlreadyWired {
                node: a.0,
                iface: 0
            })
        );
    }

    #[test]
    fn unknown_node_errors() {
        let mut sim = Simulator::new(1);
        let ghost = NodeId(42);
        let p = Packet::udp(A_IP, B_IP, 1, 2, vec![]);
        assert!(sim
            .send_from(ghost, IfaceId(0), p.clone(), SimTime::ZERO)
            .is_err());
        assert!(sim.inject_at(ghost, IfaceId(0), p, SimTime::ZERO).is_err());
        assert!(sim
            .schedule_timer(ghost, SimTime::ZERO, TimerToken(0))
            .is_err());
    }

    #[test]
    fn inject_bypasses_link() {
        let (mut sim, _a, b) = two_node_sim(false);
        let p = Packet::udp(A_IP, B_IP, 1, 2, vec![]);
        sim.inject_at(b, IfaceId(0), p, SimTime::from_nanos(500))
            .expect("inject");
        sim.run_to_completion().expect("run");
        let bnode = sim.node_ref::<Echo>(b).expect("b");
        assert_eq!(bnode.received.len(), 1);
        assert_eq!(bnode.received[0].0, SimTime::from_nanos(500));
    }

    #[test]
    fn event_budget_guards_runaway() {
        // Two echo nodes bounce a packet forever on an ideal link.
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Box::new(Echo::new("a", true)));
        let b = sim.add_node(Box::new(Echo::new("b", true)));
        sim.wire(a, IfaceId(0), b, IfaceId(0), LinkConfig::ideal())
            .expect("wire");
        sim.set_event_budget(1_000);
        let p = Packet::udp(A_IP, B_IP, 1, 2, vec![]);
        sim.send_from(a, IfaceId(0), p, SimTime::ZERO)
            .expect("send");
        let err = sim.run_to_completion();
        assert_eq!(
            err,
            Err(NetsimError::EventBudgetExhausted { budget: 1_000 })
        );
    }

    #[test]
    fn telemetry_counts_scheduler_activity() {
        use underradar_telemetry::Telemetry;
        let tel = Telemetry::enabled();
        let (mut sim, a, _b) = two_node_sim(true);
        sim.set_telemetry(tel.clone());
        let p = Packet::udp(A_IP, B_IP, 1, 2, b"ping".to_vec());
        sim.send_from(a, IfaceId(0), p, SimTime::ZERO)
            .expect("send");
        sim.run_to_completion().expect("run");
        sim.export_telemetry(&tel);
        let snap = tel.snapshot();
        // One Transmit (the send_from), two Delivers (request + echo).
        assert_eq!(snap.counter("netsim.events.transmit"), 1);
        assert_eq!(snap.counter("netsim.events.deliver"), 2);
        assert_eq!(snap.counter("netsim.link.transmits"), 2);
        assert!(snap.counter("netsim.link.tx_bytes") >= 2 * 32);
        assert_eq!(snap.counter("netsim.events_processed"), 3);
        assert_eq!(snap.gauge("netsim.nodes"), 2);
        assert_eq!(
            snap.histogram("netsim.queue.depth").map(|h| h.count()),
            Some(3)
        );
    }

    #[test]
    fn telemetry_counts_link_drops() {
        use underradar_telemetry::Telemetry;
        let tel = Telemetry::enabled();
        let mut sim = Simulator::new(3);
        let a = sim.add_node(Box::new(Echo::new("a", false)));
        let b = sim.add_node(Box::new(Echo::new("b", false)));
        sim.wire(
            a,
            IfaceId(0),
            b,
            IfaceId(0),
            LinkConfig::default().with_loss(1.0),
        )
        .expect("wire");
        sim.set_telemetry(tel.clone());
        let p = Packet::udp(A_IP, B_IP, 1, 2, vec![]);
        sim.send_from(a, IfaceId(0), p, SimTime::ZERO)
            .expect("send");
        sim.run_to_completion().expect("run");
        assert_eq!(tel.snapshot().counter("netsim.link.drops"), 1);
    }

    #[test]
    fn duplicate_knob_delivers_every_packet_twice() {
        use underradar_telemetry::Telemetry;
        let tel = Telemetry::enabled();
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Box::new(Echo::new("a", false)));
        let b = sim.add_node(Box::new(Echo::new("b", false)));
        sim.wire(
            a,
            IfaceId(0),
            b,
            IfaceId(0),
            LinkConfig::default().with_duplicate(1.0),
        )
        .expect("wire");
        sim.set_telemetry(tel.clone());
        sim.enable_capture();
        let p = Packet::udp(A_IP, B_IP, 1, 2, b"once".to_vec());
        sim.send_from(a, IfaceId(0), p, SimTime::ZERO)
            .expect("send");
        sim.run_to_completion().expect("run");
        let bnode = sim.node_ref::<Echo>(b).expect("b");
        assert_eq!(bnode.received.len(), 2, "original plus duplicate");
        assert_eq!(bnode.received[0].1, bnode.received[1].1);
        assert_eq!(sim.capture().expect("cap").len(), 2, "both copies captured");
        assert_eq!(tel.snapshot().counter("netsim.link.duplicates"), 1);
    }

    #[test]
    fn corrupt_knob_flips_exactly_one_payload_byte() {
        use underradar_telemetry::Telemetry;
        let tel = Telemetry::enabled();
        let mut sim = Simulator::new(2);
        let a = sim.add_node(Box::new(Echo::new("a", false)));
        let b = sim.add_node(Box::new(Echo::new("b", false)));
        sim.wire(
            a,
            IfaceId(0),
            b,
            IfaceId(0),
            LinkConfig::default().with_corrupt(1.0),
        )
        .expect("wire");
        sim.set_telemetry(tel.clone());
        let sent = b"payload-bytes".to_vec();
        let p = Packet::udp(A_IP, B_IP, 1, 2, sent.clone());
        sim.send_from(a, IfaceId(0), p, SimTime::ZERO)
            .expect("send");
        sim.run_to_completion().expect("run");
        let bnode = sim.node_ref::<Echo>(b).expect("b");
        assert_eq!(bnode.received.len(), 1);
        let got = bnode.received[0].1.body.payload();
        let diffs = sent.iter().zip(got.iter()).filter(|(s, g)| s != g).count();
        assert_eq!(diffs, 1, "exactly one byte flipped");
        assert_eq!(tel.snapshot().counter("netsim.link.corrupted"), 1);
    }

    #[test]
    fn disabled_telemetry_changes_nothing() {
        // Same trace with and without an attached disabled handle.
        let trace = |attach: bool| -> Vec<SimTime> {
            let (mut sim, a, b) = two_node_sim(true);
            if attach {
                sim.set_telemetry(underradar_telemetry::Telemetry::disabled());
            }
            let p = Packet::udp(A_IP, B_IP, 1, 2, b"x".to_vec());
            sim.send_from(a, IfaceId(0), p, SimTime::ZERO)
                .expect("send");
            sim.run_to_completion().expect("run");
            let _ = b;
            sim.node_ref::<Echo>(a)
                .expect("a")
                .received
                .iter()
                .map(|(t, _)| *t)
                .collect()
        };
        assert_eq!(trace(true), trace(false));
    }

    /// A passive monitor that opts into batched delivery and records the
    /// batch boundaries it observed.
    struct BatchingMonitor {
        name: String,
        batches: Vec<usize>,
        received: Vec<(SimTime, Packet)>,
    }

    impl Node for BatchingMonitor {
        fn name(&self) -> &str {
            &self.name
        }
        fn receive(&mut self, ctx: &mut NodeCtx<'_>, _: IfaceId, packet: Packet) {
            self.received.push((ctx.now(), packet));
        }
        fn wants_batch(&self) -> bool {
            true
        }
        fn receive_batch(
            &mut self,
            ctx: &mut NodeCtx<'_>,
            iface: IfaceId,
            packets: &mut Vec<Packet>,
        ) {
            self.batches.push(packets.len());
            for packet in packets.drain(..) {
                self.receive(ctx, iface, packet);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn same_instant_deliveries_coalesce_into_one_batch() {
        let mut sim = Simulator::new(1);
        let m = sim.add_node(Box::new(BatchingMonitor {
            name: "mon".into(),
            batches: vec![],
            received: vec![],
        }));
        // Five same-instant injections plus one later: one batch of 5, one
        // of 1, with packet order and timestamps exactly as unbatched.
        for i in 0..5u16 {
            let p = Packet::udp(A_IP, B_IP, 1000 + i, 2, vec![]).with_ident(i);
            sim.inject_at(m, IfaceId(0), p, SimTime::from_nanos(100))
                .expect("inject");
        }
        let late = Packet::udp(A_IP, B_IP, 2000, 2, vec![]).with_ident(99);
        sim.inject_at(m, IfaceId(0), late, SimTime::from_nanos(200))
            .expect("inject");
        sim.run_to_completion().expect("run");
        let mon = sim.node_ref::<BatchingMonitor>(m).expect("mon");
        assert_eq!(mon.batches, vec![5, 1]);
        let idents: Vec<u16> = mon.received.iter().map(|(_, p)| p.ident).collect();
        assert_eq!(idents, vec![0, 1, 2, 3, 4, 99]);
        assert!(mon.received[..5]
            .iter()
            .all(|(t, _)| *t == SimTime::from_nanos(100)));
        // Every queue event was still accounted against the budget.
        assert_eq!(sim.events_processed(), 6);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed: u64| -> Vec<String> {
            let mut sim = Simulator::new(seed);
            let a = sim.add_node(Box::new(Echo::new("a", false)));
            let b = sim.add_node(Box::new(Echo::new("b", true)));
            sim.wire(
                a,
                IfaceId(0),
                b,
                IfaceId(0),
                LinkConfig::default()
                    .with_loss(0.3)
                    .with_jitter(SimDuration::from_millis(2)),
            )
            .expect("wire");
            sim.enable_capture();
            for i in 0..50u16 {
                let p = Packet::udp(A_IP, B_IP, 1000 + i, 2, vec![0; 10]).with_ident(i);
                sim.send_from(a, IfaceId(0), p, SimTime::from_nanos(u64::from(i) * 1000))
                    .expect("send");
            }
            sim.run_to_completion().expect("run");
            sim.capture()
                .expect("cap")
                .records()
                .iter()
                .map(|r| format!("{} {}", r.time, r.packet.summary()))
                .collect()
        };
        assert_eq!(run(99), run(99));
        assert_ne!(
            run(99),
            run(100),
            "different seeds should diverge under loss/jitter"
        );
    }
}
