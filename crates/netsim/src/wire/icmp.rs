//! ICMP message representation (RFC 792).
//!
//! The simulator needs three ICMP messages: echo request/reply (for
//! reachability baselines) and *time exceeded* — the message a router emits
//! when TTL hits zero, which is the observable side-effect of the paper's
//! TTL-limited stateful mimicry (§4.1, Fig 3b).

use std::net::Ipv4Addr;

use crate::error::WireError;
use crate::wire::checksum;

/// Fixed ICMP header length in bytes (type, code, checksum, rest-of-header).
pub const HEADER_LEN: usize = 8;

/// The ICMP message kinds the simulator understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IcmpKind {
    /// Echo reply (type 0).
    EchoReply {
        /// Echo identifier.
        ident: u16,
        /// Echo sequence number.
        seq: u16,
    },
    /// Destination unreachable (type 3) with the given code.
    DestUnreachable {
        /// Unreachable code (0 net, 1 host, 3 port, ...).
        code: u8,
    },
    /// Echo request (type 8).
    EchoRequest {
        /// Echo identifier.
        ident: u16,
        /// Echo sequence number.
        seq: u16,
    },
    /// Time exceeded in transit (type 11, code 0) — TTL expired at a router.
    TimeExceeded,
    /// Any other type/code, carried opaquely.
    Other {
        /// ICMP type.
        icmp_type: u8,
        /// ICMP code.
        code: u8,
    },
}

/// A parsed ICMP message.
///
/// For error messages (unreachable, time exceeded) the payload carries the
/// leading bytes of the offending IP packet, per RFC 792; the simulator
/// stores whatever bytes were provided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcmpRepr {
    /// Message kind.
    pub kind: IcmpKind,
}

impl IcmpRepr {
    /// Parse an ICMP message from `buf`, verifying the checksum.
    ///
    /// Returns the message and the payload offset (always 8).
    pub fn parse(buf: &[u8]) -> Result<(IcmpRepr, usize), WireError> {
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated {
                needed: HEADER_LEN,
                got: buf.len(),
            });
        }
        if !checksum::verify(buf) {
            return Err(WireError::BadChecksum { layer: "icmp" });
        }
        let icmp_type = buf[0];
        let code = buf[1];
        let ident = u16::from_be_bytes([buf[4], buf[5]]);
        let seq = u16::from_be_bytes([buf[6], buf[7]]);
        let kind = match (icmp_type, code) {
            (0, 0) => IcmpKind::EchoReply { ident, seq },
            (3, c) => IcmpKind::DestUnreachable { code: c },
            (8, 0) => IcmpKind::EchoRequest { ident, seq },
            (11, 0) => IcmpKind::TimeExceeded,
            (t, c) => IcmpKind::Other {
                icmp_type: t,
                code: c,
            },
        };
        Ok((IcmpRepr { kind }, HEADER_LEN))
    }

    /// Emit this message followed by `payload`, computing the checksum over
    /// the whole ICMP message.
    pub fn emit(&self, payload: &[u8]) -> Vec<u8> {
        let (icmp_type, code, rest): (u8, u8, [u8; 4]) = match self.kind {
            IcmpKind::EchoReply { ident, seq } => {
                let mut r = [0u8; 4];
                r[..2].copy_from_slice(&ident.to_be_bytes());
                r[2..].copy_from_slice(&seq.to_be_bytes());
                (0, 0, r)
            }
            IcmpKind::DestUnreachable { code } => (3, code, [0; 4]),
            IcmpKind::EchoRequest { ident, seq } => {
                let mut r = [0u8; 4];
                r[..2].copy_from_slice(&ident.to_be_bytes());
                r[2..].copy_from_slice(&seq.to_be_bytes());
                (8, 0, r)
            }
            IcmpKind::TimeExceeded => (11, 0, [0; 4]),
            IcmpKind::Other { icmp_type, code } => (icmp_type, code, [0; 4]),
        };
        let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
        buf.push(icmp_type);
        buf.push(code);
        buf.extend_from_slice(&[0, 0]); // checksum placeholder
        buf.extend_from_slice(&rest);
        buf.extend_from_slice(payload);
        let c = checksum::checksum(&buf);
        buf[2..4].copy_from_slice(&c.to_be_bytes());
        buf
    }

    /// Build the RFC 792 payload for an ICMP error referencing `original`:
    /// the original IP header plus the first 8 bytes of its payload.
    pub fn error_payload(original_ip_packet: &[u8]) -> Vec<u8> {
        let take = original_ip_packet.len().min(super::ipv4::HEADER_LEN + 8);
        original_ip_packet[..take].to_vec()
    }

    /// Extract the (src, dst) of the original packet embedded in an ICMP
    /// error payload, if enough bytes are present.
    pub fn quoted_addresses(payload: &[u8]) -> Option<(Ipv4Addr, Ipv4Addr)> {
        if payload.len() < super::ipv4::HEADER_LEN {
            return None;
        }
        Some((
            Ipv4Addr::new(payload[12], payload[13], payload[14], payload[15]),
            Ipv4Addr::new(payload[16], payload[17], payload[18], payload[19]),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_roundtrip() {
        let repr = IcmpRepr {
            kind: IcmpKind::EchoRequest { ident: 77, seq: 3 },
        };
        let buf = repr.emit(b"ping-payload");
        let (parsed, off) = IcmpRepr::parse(&buf).expect("parse");
        assert_eq!(parsed, repr);
        assert_eq!(&buf[off..], b"ping-payload");
    }

    #[test]
    fn time_exceeded_roundtrip() {
        let repr = IcmpRepr {
            kind: IcmpKind::TimeExceeded,
        };
        let buf = repr.emit(&[]);
        let (parsed, _) = IcmpRepr::parse(&buf).expect("parse");
        assert_eq!(parsed.kind, IcmpKind::TimeExceeded);
    }

    #[test]
    fn unreachable_codes_preserved() {
        for code in [0u8, 1, 3, 13] {
            let repr = IcmpRepr {
                kind: IcmpKind::DestUnreachable { code },
            };
            let (parsed, _) = IcmpRepr::parse(&repr.emit(&[])).expect("parse");
            assert_eq!(parsed.kind, IcmpKind::DestUnreachable { code });
        }
    }

    #[test]
    fn checksum_detects_corruption() {
        let repr = IcmpRepr {
            kind: IcmpKind::EchoReply { ident: 1, seq: 1 },
        };
        let mut buf = repr.emit(b"abc");
        buf[0] = 8; // flip reply -> request without re-checksumming
        assert!(matches!(
            IcmpRepr::parse(&buf),
            Err(WireError::BadChecksum { .. })
        ));
    }

    #[test]
    fn error_payload_quotes_original() {
        use crate::wire::ipv4::{IpProtocol, Ipv4Repr};
        let orig = Ipv4Repr {
            src: Ipv4Addr::new(10, 0, 0, 9),
            dst: Ipv4Addr::new(10, 0, 0, 10),
            protocol: IpProtocol::Tcp,
            ttl: 1,
            ident: 5,
            payload_len: 20,
        }
        .emit(&[0u8; 20]);
        let quoted = IcmpRepr::error_payload(&orig);
        assert_eq!(quoted.len(), 28);
        let (src, dst) = IcmpRepr::quoted_addresses(&quoted).expect("addresses");
        assert_eq!(src, Ipv4Addr::new(10, 0, 0, 9));
        assert_eq!(dst, Ipv4Addr::new(10, 0, 0, 10));
        assert_eq!(IcmpRepr::quoted_addresses(&quoted[..10]), None);
    }

    #[test]
    fn unknown_types_carried_opaquely() {
        let repr = IcmpRepr {
            kind: IcmpKind::Other {
                icmp_type: 42,
                code: 7,
            },
        };
        let (parsed, _) = IcmpRepr::parse(&repr.emit(b"z")).expect("parse");
        assert_eq!(
            parsed.kind,
            IcmpKind::Other {
                icmp_type: 42,
                code: 7
            }
        );
    }
}
