//! Wire-format packet views.
//!
//! Each submodule provides a typed view over a byte buffer (decode) and an
//! emit function (encode), in the style of smoltcp. Checksums are generated
//! on emit and verified on parse; parse errors are reported through
//! [`crate::WireError`] rather than panics.

pub mod checksum;
pub mod icmp;
pub mod ipv4;
pub mod tcp;
pub mod udp;

pub use icmp::{IcmpKind, IcmpRepr};
pub use ipv4::{IpProtocol, Ipv4Repr};
pub use tcp::{TcpFlags, TcpRepr};
pub use udp::UdpRepr;
