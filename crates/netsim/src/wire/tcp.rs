//! TCP header representation (RFC 793), without options.
//!
//! Options (MSS, SACK, timestamps) are not needed by the simulator's flows
//! or by the paper's techniques, so emitted headers are always 20 bytes;
//! parsed headers may carry options, which are skipped.

use std::fmt;
use std::net::Ipv4Addr;

use crate::error::WireError;
use crate::wire::checksum;

/// Minimum (and emitted) TCP header length in bytes.
pub const HEADER_LEN: usize = 20;

/// TCP flag bits.
///
/// Stored as a plain byte; accessors exist for the flags the simulator and
/// the IDS rule language actually inspect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag bit.
    pub const FIN: u8 = 0x01;
    /// SYN flag bit.
    pub const SYN: u8 = 0x02;
    /// RST flag bit.
    pub const RST: u8 = 0x04;
    /// PSH flag bit.
    pub const PSH: u8 = 0x08;
    /// ACK flag bit.
    pub const ACK: u8 = 0x10;
    /// URG flag bit.
    pub const URG: u8 = 0x20;

    /// A SYN-only segment (connection request).
    pub const fn syn() -> Self {
        TcpFlags(Self::SYN)
    }

    /// A SYN/ACK segment (connection accept).
    pub const fn syn_ack() -> Self {
        TcpFlags(Self::SYN | Self::ACK)
    }

    /// A bare ACK.
    pub const fn ack() -> Self {
        TcpFlags(Self::ACK)
    }

    /// A RST segment.
    pub const fn rst() -> Self {
        TcpFlags(Self::RST)
    }

    /// A RST/ACK segment (typical refusal of a SYN).
    pub const fn rst_ack() -> Self {
        TcpFlags(Self::RST | Self::ACK)
    }

    /// A FIN/ACK segment.
    pub const fn fin_ack() -> Self {
        TcpFlags(Self::FIN | Self::ACK)
    }

    /// A PSH/ACK data segment.
    pub const fn psh_ack() -> Self {
        TcpFlags(Self::PSH | Self::ACK)
    }

    /// Whether SYN is set.
    pub const fn has_syn(self) -> bool {
        self.0 & Self::SYN != 0
    }

    /// Whether ACK is set.
    pub const fn has_ack(self) -> bool {
        self.0 & Self::ACK != 0
    }

    /// Whether RST is set.
    pub const fn has_rst(self) -> bool {
        self.0 & Self::RST != 0
    }

    /// Whether FIN is set.
    pub const fn has_fin(self) -> bool {
        self.0 & Self::FIN != 0
    }

    /// Whether PSH is set.
    pub const fn has_psh(self) -> bool {
        self.0 & Self::PSH != 0
    }

    /// Whether all bits in `mask` are set.
    pub const fn contains(self, mask: u8) -> bool {
        self.0 & mask == mask
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut any = false;
        for (bit, name) in [
            (Self::SYN, "S"),
            (Self::ACK, "A"),
            (Self::FIN, "F"),
            (Self::RST, "R"),
            (Self::PSH, "P"),
            (Self::URG, "U"),
        ] {
            if self.0 & bit != 0 {
                f.write_str(name)?;
                any = true;
            }
        }
        if !any {
            f.write_str("-")?;
        }
        Ok(())
    }
}

/// A parsed TCP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number (meaningful only when ACK is set).
    pub ack: u32,
    /// Flags.
    pub flags: TcpFlags,
    /// Advertised receive window.
    pub window: u16,
}

impl TcpRepr {
    /// Parse a TCP header from `buf` (the transport segment), verifying the
    /// checksum against the pseudo-header built from `src`/`dst`.
    ///
    /// Returns the header and the payload offset.
    pub fn parse(buf: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<(TcpRepr, usize), WireError> {
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated {
                needed: HEADER_LEN,
                got: buf.len(),
            });
        }
        let data_offset = usize::from(buf[12] >> 4) * 4;
        if data_offset < HEADER_LEN {
            return Err(WireError::Malformed("TCP data offset below minimum"));
        }
        if buf.len() < data_offset {
            return Err(WireError::Truncated {
                needed: data_offset,
                got: buf.len(),
            });
        }
        if !checksum::verify_transport(src, dst, 6, buf) {
            return Err(WireError::BadChecksum { layer: "tcp" });
        }
        let repr = TcpRepr {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            ack: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
            flags: TcpFlags(buf[13]),
            window: u16::from_be_bytes([buf[14], buf[15]]),
        };
        Ok((repr, data_offset))
    }

    /// Emit this header followed by `payload`, computing the checksum over
    /// the pseudo-header from `src`/`dst`.
    pub fn emit(&self, payload: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
        buf.extend_from_slice(&self.src_port.to_be_bytes());
        buf.extend_from_slice(&self.dst_port.to_be_bytes());
        buf.extend_from_slice(&self.seq.to_be_bytes());
        buf.extend_from_slice(&self.ack.to_be_bytes());
        buf.push(0x50); // data offset 5 words
        buf.push(self.flags.0);
        buf.extend_from_slice(&self.window.to_be_bytes());
        buf.extend_from_slice(&[0, 0, 0, 0]); // checksum + urgent pointer
        buf.extend_from_slice(payload);
        let c = checksum::transport_checksum(src, dst, 6, &buf);
        buf[16..18].copy_from_slice(&c.to_be_bytes());
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 2);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 2, 0, 3);

    fn sample() -> TcpRepr {
        TcpRepr {
            src_port: 49152,
            dst_port: 80,
            seq: 0x01020304,
            ack: 0x0a0b0c0d,
            flags: TcpFlags::psh_ack(),
            window: 65535,
        }
    }

    #[test]
    fn roundtrip() {
        let repr = sample();
        let buf = repr.emit(b"GET / HTTP/1.0\r\n", SRC, DST);
        let (parsed, off) = TcpRepr::parse(&buf, SRC, DST).expect("parse");
        assert_eq!(parsed, repr);
        assert_eq!(&buf[off..], b"GET / HTTP/1.0\r\n");
    }

    #[test]
    fn checksum_binds_addresses() {
        let buf = sample().emit(b"data", SRC, DST);
        // A swapped (src, dst) pair sums identically, so perturb one octet.
        let other = Ipv4Addr::new(10, 2, 0, 4);
        assert!(matches!(
            TcpRepr::parse(&buf, SRC, other),
            Err(WireError::BadChecksum { layer: "tcp" })
        ));
    }

    #[test]
    fn rejects_short_header() {
        let buf = sample().emit(b"", SRC, DST);
        assert!(matches!(
            TcpRepr::parse(&buf[..10], SRC, DST),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn flag_constructors() {
        assert!(TcpFlags::syn().has_syn());
        assert!(!TcpFlags::syn().has_ack());
        assert!(TcpFlags::syn_ack().has_syn() && TcpFlags::syn_ack().has_ack());
        assert!(TcpFlags::rst().has_rst());
        assert!(TcpFlags::rst_ack().has_rst() && TcpFlags::rst_ack().has_ack());
        assert!(TcpFlags::fin_ack().has_fin());
        assert!(TcpFlags::psh_ack().has_psh());
    }

    #[test]
    fn flag_display() {
        assert_eq!(TcpFlags::syn_ack().to_string(), "SA");
        assert_eq!(TcpFlags::default().to_string(), "-");
        assert_eq!(TcpFlags(TcpFlags::RST | TcpFlags::PSH).to_string(), "RP");
    }

    #[test]
    fn contains_mask() {
        let f = TcpFlags::syn_ack();
        assert!(f.contains(TcpFlags::SYN));
        assert!(f.contains(TcpFlags::SYN | TcpFlags::ACK));
        assert!(!f.contains(TcpFlags::SYN | TcpFlags::RST));
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let mut buf = sample().emit(b"hello", SRC, DST);
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        assert!(matches!(
            TcpRepr::parse(&buf, SRC, DST),
            Err(WireError::BadChecksum { .. })
        ));
    }
}
