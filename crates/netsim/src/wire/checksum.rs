//! The Internet checksum (RFC 1071) and the TCP/UDP pseudo-header.

use std::net::Ipv4Addr;

/// Sum a buffer as 16-bit big-endian words without folding.
///
/// Odd-length buffers are padded with a trailing zero byte, per RFC 1071.
fn sum_words(data: &[u8]) -> u32 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        sum = sum.wrapping_add(u32::from(u16::from_be_bytes([chunk[0], chunk[1]])));
    }
    if let [last] = chunks.remainder() {
        sum = sum.wrapping_add(u32::from(u16::from_be_bytes([*last, 0])));
    }
    sum
}

/// Fold a 32-bit partial sum into the final 16-bit one's-complement checksum.
fn fold(mut sum: u32) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Compute the Internet checksum of `data`.
pub fn checksum(data: &[u8]) -> u16 {
    fold(sum_words(data))
}

/// Verify a buffer whose checksum field is already filled in: the folded sum
/// over the whole buffer must be zero.
pub fn verify(data: &[u8]) -> bool {
    fold(sum_words(data)) == 0
}

/// Compute the TCP/UDP checksum: pseudo-header (src, dst, protocol, length)
/// plus the transport header and payload in `segment`.
pub fn transport_checksum(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, segment: &[u8]) -> u16 {
    let mut sum = sum_words(&src.octets());
    sum = sum.wrapping_add(sum_words(&dst.octets()));
    sum = sum.wrapping_add(u32::from(protocol));
    sum = sum.wrapping_add(segment.len() as u32);
    sum = sum.wrapping_add(sum_words(segment));
    fold(sum)
}

/// Verify a transport segment whose checksum field is filled in.
pub fn verify_transport(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, segment: &[u8]) -> bool {
    transport_checksum(src, dst, protocol, segment) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // The classic example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // Partial sum is 0x2ddf0 -> folded 0xddf0 + 2 = 0xddf2 -> complement 0x220d.
        assert_eq!(checksum(&data), 0x220d);
    }

    #[test]
    fn odd_length_padding() {
        // [0xab] pads to 0xab00; complement is !0xab00.
        assert_eq!(checksum(&[0xab]), !0xab00);
    }

    #[test]
    fn empty_buffer() {
        assert_eq!(checksum(&[]), 0xffff);
        assert!(!verify(&[0x00, 0x01]));
    }

    #[test]
    fn roundtrip_verifies() {
        let mut data = vec![
            0x45, 0x00, 0x00, 0x28, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06, 0, 0,
        ];
        let c = checksum(&data);
        data[10] = (c >> 8) as u8;
        data[11] = (c & 0xff) as u8;
        assert!(verify(&data));
        data[0] ^= 0x01;
        assert!(!verify(&data));
    }

    #[test]
    fn transport_roundtrip() {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let mut seg = vec![
            0x04, 0xd2, 0x00, 0x50, // ports 1234 -> 80
            0x00, 0x00, 0x00, 0x00, // seq
            0x00, 0x00, 0x00, 0x00, // ack
            0x50, 0x02, 0xff, 0xff, // data offset, SYN, window
            0x00, 0x00, 0x00, 0x00, // checksum, urgent
            b'h', b'i',
        ];
        let c = transport_checksum(src, dst, 6, &seg);
        seg[16] = (c >> 8) as u8;
        seg[17] = (c & 0xff) as u8;
        assert!(verify_transport(src, dst, 6, &seg));
        // Note: swapping src and dst does NOT change the checksum (one's
        // complement addition is commutative), so bind-check with a
        // genuinely different address.
        let other = Ipv4Addr::new(10, 0, 0, 3);
        assert!(
            !verify_transport(src, other, 6, &seg),
            "pseudo-header must bind addresses"
        );
    }
}
