//! UDP header representation (RFC 768).

use std::net::Ipv4Addr;

use crate::error::WireError;
use crate::wire::checksum;

/// UDP header length in bytes.
pub const HEADER_LEN: usize = 8;

/// A parsed UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
}

impl UdpRepr {
    /// Parse a UDP header from `buf`, verifying length and checksum.
    ///
    /// Returns the header and the payload offset (always 8).
    pub fn parse(buf: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<(UdpRepr, usize), WireError> {
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated {
                needed: HEADER_LEN,
                got: buf.len(),
            });
        }
        let length = usize::from(u16::from_be_bytes([buf[4], buf[5]]));
        if length < HEADER_LEN {
            return Err(WireError::Malformed("UDP length below header length"));
        }
        if length > buf.len() {
            return Err(WireError::LengthMismatch {
                claimed: length,
                actual: buf.len(),
            });
        }
        // A zero checksum means "not computed" and is legal for UDP/IPv4.
        let cksum = u16::from_be_bytes([buf[6], buf[7]]);
        if cksum != 0 && !checksum::verify_transport(src, dst, 17, &buf[..length]) {
            return Err(WireError::BadChecksum { layer: "udp" });
        }
        Ok((
            UdpRepr {
                src_port: u16::from_be_bytes([buf[0], buf[1]]),
                dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            },
            HEADER_LEN,
        ))
    }

    /// Emit this header followed by `payload`, computing the checksum.
    pub fn emit(&self, payload: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let length = HEADER_LEN + payload.len();
        let mut buf = Vec::with_capacity(length);
        buf.extend_from_slice(&self.src_port.to_be_bytes());
        buf.extend_from_slice(&self.dst_port.to_be_bytes());
        buf.extend_from_slice(&(length as u16).to_be_bytes());
        buf.extend_from_slice(&[0, 0]); // checksum placeholder
        buf.extend_from_slice(payload);
        let mut c = checksum::transport_checksum(src, dst, 17, &buf);
        // RFC 768: a computed checksum of zero is transmitted as all ones.
        if c == 0 {
            c = 0xffff;
        }
        buf[6..8].copy_from_slice(&c.to_be_bytes());
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(172, 16, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(8, 8, 8, 8);

    #[test]
    fn roundtrip() {
        let repr = UdpRepr {
            src_port: 5353,
            dst_port: 53,
        };
        let buf = repr.emit(b"dns query bytes", SRC, DST);
        let (parsed, off) = UdpRepr::parse(&buf, SRC, DST).expect("parse");
        assert_eq!(parsed, repr);
        assert_eq!(&buf[off..], b"dns query bytes");
    }

    #[test]
    fn zero_checksum_accepted() {
        let repr = UdpRepr {
            src_port: 1,
            dst_port: 2,
        };
        let mut buf = repr.emit(b"x", SRC, DST);
        buf[6] = 0;
        buf[7] = 0;
        assert!(UdpRepr::parse(&buf, SRC, DST).is_ok());
    }

    #[test]
    fn bad_checksum_rejected() {
        let repr = UdpRepr {
            src_port: 1,
            dst_port: 2,
        };
        let mut buf = repr.emit(b"payload", SRC, DST);
        let last = buf.len() - 1;
        buf[last] ^= 0xff;
        assert!(matches!(
            UdpRepr::parse(&buf, SRC, DST),
            Err(WireError::BadChecksum { layer: "udp" })
        ));
    }

    #[test]
    fn truncation_and_length_checks() {
        let repr = UdpRepr {
            src_port: 1,
            dst_port: 2,
        };
        let buf = repr.emit(b"abc", SRC, DST);
        assert!(matches!(
            UdpRepr::parse(&buf[..4], SRC, DST),
            Err(WireError::Truncated { .. })
        ));
        let mut long = buf.clone();
        long[4..6].copy_from_slice(&((buf.len() + 5) as u16).to_be_bytes());
        assert!(matches!(
            UdpRepr::parse(&long, SRC, DST),
            Err(WireError::LengthMismatch { .. })
        ));
        let mut short = buf;
        short[4..6].copy_from_slice(&4u16.to_be_bytes());
        assert!(matches!(
            UdpRepr::parse(&short, SRC, DST),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn empty_payload() {
        let repr = UdpRepr {
            src_port: 9,
            dst_port: 10,
        };
        let buf = repr.emit(b"", SRC, DST);
        assert_eq!(buf.len(), HEADER_LEN);
        let (parsed, off) = UdpRepr::parse(&buf, SRC, DST).expect("parse");
        assert_eq!(parsed, repr);
        assert_eq!(off, HEADER_LEN);
    }
}
