//! IPv4 header representation (RFC 791), without options.
//!
//! The simulator does not use IP options, so a header is always 20 bytes;
//! packets carrying options are accepted on parse (the option bytes are
//! skipped) but never emitted.

use std::fmt;
use std::net::Ipv4Addr;

use crate::error::WireError;
use crate::wire::checksum;

/// Minimum (and, for emitted packets, exact) IPv4 header length in bytes.
pub const HEADER_LEN: usize = 20;

/// Default initial TTL used by hosts in the simulation. 64 matches Linux and
/// matters for the paper's TTL-limited stateful mimicry (§4.1, Fig 3b).
pub const DEFAULT_TTL: u8 = 64;

/// The IP protocol numbers the simulator understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProtocol {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Any other protocol number, carried opaquely.
    Other(u8),
}

impl IpProtocol {
    /// The wire protocol number.
    pub fn number(self) -> u8 {
        match self {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(n) => n,
        }
    }

    /// Classify a wire protocol number.
    pub fn from_number(n: u8) -> Self {
        match n {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }
}

impl fmt::Display for IpProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpProtocol::Icmp => write!(f, "icmp"),
            IpProtocol::Tcp => write!(f, "tcp"),
            IpProtocol::Udp => write!(f, "udp"),
            IpProtocol::Other(n) => write!(f, "proto-{n}"),
        }
    }
}

/// A parsed IPv4 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Repr {
    /// Source address (spoofable — nothing in the simulator validates it;
    /// ingress filtering is modeled separately in the `spoof` crate).
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Carried protocol.
    pub protocol: IpProtocol,
    /// Time to live, decremented by each forwarding hop.
    pub ttl: u8,
    /// Identification field (used only for trace readability).
    pub ident: u16,
    /// Payload length in bytes (total length minus header).
    pub payload_len: usize,
}

impl Ipv4Repr {
    /// Parse a header from the front of `buf`, verifying the checksum.
    ///
    /// Returns the header and the byte offset at which the payload starts.
    pub fn parse(buf: &[u8]) -> Result<(Ipv4Repr, usize), WireError> {
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated {
                needed: HEADER_LEN,
                got: buf.len(),
            });
        }
        let version = buf[0] >> 4;
        if version != 4 {
            return Err(WireError::Malformed("IP version is not 4"));
        }
        let ihl = usize::from(buf[0] & 0x0f) * 4;
        if ihl < HEADER_LEN {
            return Err(WireError::Malformed("IPv4 IHL below minimum"));
        }
        if buf.len() < ihl {
            return Err(WireError::Truncated {
                needed: ihl,
                got: buf.len(),
            });
        }
        let total_len = usize::from(u16::from_be_bytes([buf[2], buf[3]]));
        if total_len < ihl {
            return Err(WireError::Malformed(
                "IPv4 total length below header length",
            ));
        }
        if total_len > buf.len() {
            return Err(WireError::LengthMismatch {
                claimed: total_len,
                actual: buf.len(),
            });
        }
        if !checksum::verify(&buf[..ihl]) {
            return Err(WireError::BadChecksum { layer: "ipv4" });
        }
        let repr = Ipv4Repr {
            src: Ipv4Addr::new(buf[12], buf[13], buf[14], buf[15]),
            dst: Ipv4Addr::new(buf[16], buf[17], buf[18], buf[19]),
            protocol: IpProtocol::from_number(buf[9]),
            ttl: buf[8],
            ident: u16::from_be_bytes([buf[4], buf[5]]),
            payload_len: total_len - ihl,
        };
        Ok((repr, ihl))
    }

    /// Emit this header followed by `payload` into a fresh buffer, filling in
    /// length and checksum.
    pub fn emit(&self, payload: &[u8]) -> Vec<u8> {
        let total_len = HEADER_LEN + payload.len();
        let mut buf = Vec::with_capacity(total_len);
        buf.push(0x45); // version 4, IHL 5
        buf.push(0); // DSCP/ECN
        buf.extend_from_slice(&(total_len as u16).to_be_bytes());
        buf.extend_from_slice(&self.ident.to_be_bytes());
        buf.extend_from_slice(&[0x40, 0x00]); // flags: DF, fragment offset 0
        buf.push(self.ttl);
        buf.push(self.protocol.number());
        buf.extend_from_slice(&[0, 0]); // checksum placeholder
        buf.extend_from_slice(&self.src.octets());
        buf.extend_from_slice(&self.dst.octets());
        let c = checksum::checksum(&buf[..HEADER_LEN]);
        buf[10..12].copy_from_slice(&c.to_be_bytes());
        buf.extend_from_slice(payload);
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Repr {
        Ipv4Repr {
            src: Ipv4Addr::new(192, 0, 2, 1),
            dst: Ipv4Addr::new(198, 51, 100, 7),
            protocol: IpProtocol::Tcp,
            ttl: 64,
            ident: 0xbeef,
            payload_len: 5,
        }
    }

    #[test]
    fn roundtrip() {
        let repr = sample();
        let buf = repr.emit(b"hello");
        let (parsed, off) = Ipv4Repr::parse(&buf).expect("parse");
        assert_eq!(off, HEADER_LEN);
        assert_eq!(parsed, repr);
        assert_eq!(&buf[off..off + parsed.payload_len], b"hello");
    }

    #[test]
    fn rejects_truncation() {
        let buf = sample().emit(b"hello");
        for cut in [0usize, 1, 10, 19] {
            assert!(matches!(
                Ipv4Repr::parse(&buf[..cut]),
                Err(WireError::Truncated { .. })
            ));
        }
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = sample().emit(b"");
        buf[0] = 0x65; // version 6
        assert_eq!(
            Ipv4Repr::parse(&buf),
            Err(WireError::Malformed("IP version is not 4"))
        );
    }

    #[test]
    fn rejects_corrupt_checksum() {
        let mut buf = sample().emit(b"x");
        buf[8] ^= 0xff; // flip TTL without fixing checksum
        assert_eq!(
            Ipv4Repr::parse(&buf),
            Err(WireError::BadChecksum { layer: "ipv4" })
        );
    }

    #[test]
    fn rejects_overlong_claimed_length() {
        let mut buf = sample().emit(b"x");
        // Claim 4 more bytes than the buffer holds, then re-checksum so only
        // the length check can fail.
        let claimed = (buf.len() + 4) as u16;
        buf[2..4].copy_from_slice(&claimed.to_be_bytes());
        buf[10] = 0;
        buf[11] = 0;
        let c = checksum::checksum(&buf[..HEADER_LEN]);
        buf[10..12].copy_from_slice(&c.to_be_bytes());
        assert!(matches!(
            Ipv4Repr::parse(&buf),
            Err(WireError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn protocol_numbers_roundtrip() {
        for n in 0u8..=255 {
            assert_eq!(IpProtocol::from_number(n).number(), n);
        }
    }

    #[test]
    fn parse_ignores_trailing_padding() {
        // A buffer longer than total_length (e.g. minimum frame padding)
        // parses fine; payload_len reflects the header's claim.
        let repr = sample();
        let mut buf = repr.emit(b"hello");
        buf.extend_from_slice(&[0u8; 8]);
        let (parsed, _) = Ipv4Repr::parse(&buf).expect("parse with padding");
        assert_eq!(parsed.payload_len, 5);
    }
}
