//! Simulated time.
//!
//! The simulator counts nanoseconds from an epoch of zero. Wrapping is not a
//! practical concern (a `u64` of nanoseconds covers ~584 years of simulated
//! time), so arithmetic saturates rather than wraps to keep library code
//! panic-free.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A duration of simulated time, stored in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us.saturating_mul(1_000))
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(1_000_000))
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s.saturating_mul(1_000_000_000))
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m.saturating_mul(60_000_000_000))
    }

    /// Construct from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h.saturating_mul(3_600_000_000_000))
    }

    /// Construct from whole days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d.saturating_mul(86_400_000_000_000))
    }

    /// The duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in (truncated) whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating multiplication by an integer factor.
    pub const fn saturating_mul(self, factor: u64) -> Self {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Integer division of the duration (zero divisor yields zero).
    pub const fn div(self, divisor: u64) -> Self {
        match self.0.checked_div(divisor) {
            Some(v) => SimDuration(v),
            None => SimDuration(0),
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// An instant of simulated time (nanoseconds since the simulation epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from nanoseconds since the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Duration since `earlier`, or [`SimDuration::ZERO`] if `earlier` is in
    /// the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_scale() {
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_mins(2).as_nanos(), 120_000_000_000);
        assert_eq!(SimDuration::from_hours(1).as_nanos(), 3_600_000_000_000);
        assert_eq!(SimDuration::from_days(1).as_nanos(), 86_400_000_000_000);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(5);
        assert_eq!(t.as_nanos(), 5_000_000_000);
        assert_eq!((t - SimTime::ZERO).as_nanos(), 5_000_000_000);
        assert_eq!(SimTime::ZERO.saturating_since(t), SimDuration::ZERO);
        assert_eq!(t.saturating_since(SimTime::ZERO), SimDuration::from_secs(5));
    }

    #[test]
    fn saturating_behaviour() {
        let big = SimDuration::from_nanos(u64::MAX);
        assert_eq!((big + big).as_nanos(), u64::MAX);
        assert_eq!(big.saturating_mul(3).as_nanos(), u64::MAX);
        assert_eq!(SimDuration::from_secs(1).div(0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(3).to_string(), "3.000us");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    fn max_of_instants() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }
}
