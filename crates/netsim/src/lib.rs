#![warn(missing_docs)]
// Library paths must surface failures as typed errors or documented
// invariant expects — never bare unwraps (test code is exempt).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! # underradar-netsim
//!
//! A deterministic, discrete-event network simulator that stands in for the
//! Mininet testbed used in *"Can Censorship Measurements Be Safe(r)?"*
//! (Jones & Feamster, HotNets 2015), Figure 1.
//!
//! The simulator provides:
//!
//! * **Wire formats** ([`wire`]): IPv4, TCP, UDP and ICMP headers with full
//!   encode/decode and Internet checksums, in the style of smoltcp's typed
//!   packet views.
//! * **Packets** ([`packet`]): an owned, parsed representation used inside
//!   the simulator, convertible to/from wire bytes.
//! * **Events** ([`event`]): a deterministic event queue keyed by simulated
//!   nanoseconds with stable FIFO tie-breaking.
//! * **Topology** ([`topology`], [`link`], [`switch`]): hosts, point-to-point
//!   links with latency/bandwidth/loss, and a learning switch with *tap*
//!   ports used to attach passive monitors (the censor and the MVR in the
//!   paper's testbed both observe traffic from a tap).
//! * **Host stack** ([`stack`], [`host`]): a small but real TCP state machine
//!   (handshake, retransmission, FIN/RST teardown) plus UDP, enough to carry
//!   the DNS/SMTP/HTTP substrates and the paper's packet-level tricks
//!   (spoofed sources, TTL-limited replies, RST injection).
//!
//! Everything is seeded and single-threaded: the same seed reproduces the
//! same packet trace, which the test suite exploits heavily.
//!
//! The scheduler can record live metrics (events by kind, link
//! transmits/bytes/drops, queue depths) into an `underradar-telemetry`
//! registry via [`Simulator::set_telemetry`]; the crate is re-exported as
//! [`telemetry`] for downstream convenience.

pub mod addr;
pub mod capture;
pub mod error;
pub mod event;
pub mod flow;
pub mod hash;
pub mod host;
pub mod link;
pub mod node;
pub mod packet;
pub mod pcap;
pub mod rng;
pub mod sim;
pub mod slab;
pub mod stack;
pub mod switch;
pub mod testprop;
pub mod time;
pub mod topology;
pub mod wire;

pub use underradar_telemetry as telemetry;

pub use addr::Cidr;
pub use capture::{Capture, CapturedPacket};
pub use error::{NetsimError, WireError};
pub use event::{EventQueue, TimerToken};
pub use flow::{FlowId, FlowKey, FlowTable, FlowTuple};
pub use hash::{FxHashMap, FxHashSet};
pub use host::{
    ConnId, Host, HostApi, HostTask, RawHandler, RawVerdict, Service, ServiceApi, UdpApi,
    UdpService, HOST_IFACE,
};
pub use link::{Link, LinkConfig, TxDelivery, TxOutcome};
pub use node::{IfaceId, Node, NodeCtx, NodeId};
pub use packet::{IcmpSegment, Packet, PacketBody, TcpSegment, UdpDatagram};
pub use rng::SimRng;
pub use sim::Simulator;
pub use slab::{OrderId, OrderQueue, Slab, SlabKey};
pub use stack::tcp::{OverlapPolicy, TcpConn, TcpEvent, TcpState};
pub use switch::Switch;
pub use time::{SimDuration, SimTime};
pub use topology::TopologyBuilder;
