//! The host protocol stack: a small but real TCP implementation plus UDP
//! port demultiplexing. The stack is transport logic only — packet I/O and
//! timers are driven by [`crate::host::Host`].

pub mod tcp;
pub mod udp;

pub use tcp::{OverlapPolicy, TcpConn, TcpEvent, TcpState};
pub use udp::UdpBindings;
