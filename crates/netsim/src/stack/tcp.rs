//! A full-fidelity TCP endpoint (RFC 793 state machine + loss recovery).
//!
//! Covers what the censorship testbed needs from a *real* endpoint so the
//! monitor-in-the-middle (`ids::stream`) can be compared against it segment
//! for segment: three-way handshake, cumulative ACKs, RFC 6298 adaptive RTO
//! (SRTT/RTTVAR, exponential backoff, Karn's rule, retries reset on forward
//! progress), head-of-queue retransmission, fast retransmit on three
//! duplicate ACKs, a compact slow-start/AIMD congestion window,
//! advertised-receive-window respect, an out-of-order receive buffer with a
//! configurable overlap policy ([`OverlapPolicy`] — real stacks disagree on
//! who wins when retransmitted bytes differ, which is exactly the ambiguity
//! Ptacek–Newsham evasion exploits), windowed RST validation (out-of-window
//! RSTs draw a challenge ACK instead of tearing down, RFC 5961-style), FIN
//! teardown, and per-connection reply-TTL override (the paper's TTL-limited
//! stateful mimicry, §4.1).
//!
//! Still deliberately omitted: SACK, window scaling, timestamps,
//! simultaneous open, and delayed ACKs. None of these affect the
//! censorship/surveillance behaviours under study.
//!
//! The connection is pure logic: methods consume segments and return
//! packets to transmit plus events for the application. The host owns
//! timers, passes the simulated clock into every call, and re-arms the
//! retransmission timer from [`TcpConn::rto`] (which reflects the current
//! backed-off value).

use std::collections::VecDeque;
use std::net::Ipv4Addr;

use crate::packet::{Packet, TcpSegment};
use crate::time::{SimDuration, SimTime};
use crate::wire::ipv4::DEFAULT_TTL;
use crate::wire::tcp::TcpFlags;

/// Maximum retransmissions before the connection gives up.
pub const MAX_RETRIES: u32 = 5;

/// Maximum payload per segment (a conventional Ethernet-ish MSS).
pub const MSS: usize = 1460;

/// Initial congestion window (RFC 6928's IW10).
pub const INIT_CWND: u32 = 10 * MSS as u32;

/// Lower bound for the slow-start threshold after a loss event.
const MIN_SSTHRESH: u32 = 2 * MSS as u32;

/// Upper bound on the congestion window (keeps runaway growth bounded).
const MAX_CWND: u32 = 4 * 1024 * 1024;

/// Upper bound on the retransmission timeout (RFC 6298 §2.5).
const RTO_MAX: SimDuration = SimDuration::from_secs(60);

/// Clock granularity `G` in the RTO formula (RFC 6298 §2.4).
const RTO_GRANULARITY: SimDuration = SimDuration::from_millis(1);

/// Default advertised receive window.
const DEFAULT_WINDOW: u32 = 65535;

/// Duplicate-ACK threshold for fast retransmit.
const DUP_ACK_THRESHOLD: u32 = 3;

/// `a < b` in sequence space.
#[inline]
pub fn seq_lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

/// `a <= b` in sequence space.
#[inline]
pub fn seq_le(a: u32, b: u32) -> bool {
    a == b || seq_lt(a, b)
}

/// What a receiver does when newly arrived bytes overlap bytes it already
/// holds (in the reassembly buffer or already delivered). Honest senders
/// always retransmit identical bytes so the policy is unobservable; evasion
/// clients send *different* bytes in overlapping retransmits, and which copy
/// the endpoint keeps decides what the application sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverlapPolicy {
    /// The first copy to arrive wins; later overlapping bytes are ignored
    /// (BSD-style, and what `ids::stream`'s hold-back reassembler does).
    KeepFirst,
    /// The most recent copy wins; later arrivals overwrite held bytes
    /// (Linux-ish behaviour for data ahead of `rcv_nxt`).
    #[default]
    KeepLast,
}

/// TCP connection states (RFC 793 subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// SYN sent, awaiting SYN/ACK.
    SynSent,
    /// SYN received and SYN/ACK sent, awaiting ACK.
    SynReceived,
    /// Data transfer.
    Established,
    /// We closed first; FIN sent, not yet acknowledged.
    FinWait1,
    /// Our FIN acknowledged; awaiting the peer's FIN.
    FinWait2,
    /// Peer closed first; we may still send.
    CloseWait,
    /// Peer closed, then we sent our FIN.
    LastAck,
    /// Both sides sent FINs simultaneously.
    Closing,
    /// Fully closed (TIME_WAIT is collapsed into this state).
    Closed,
}

/// Events a connection reports to its owner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpEvent {
    /// The handshake completed.
    Connected,
    /// In-order payload bytes arrived.
    Data(Vec<u8>),
    /// The peer sent FIN (no more data will arrive).
    PeerClosed,
    /// The connection was reset by a RST segment. This is both an error path
    /// and a *measurement signal*: injected RSTs are how the GFC censors.
    Reset,
    /// Our SYN was answered with RST (connection refused).
    Refused,
    /// Retransmissions were exhausted.
    TimedOut,
    /// The connection closed cleanly in both directions.
    Closed,
}

/// A retransmittable chunk (SYN, FIN, or payload bytes).
#[derive(Debug, Clone)]
struct Chunk {
    seq: u32,
    data: Vec<u8>,
    syn: bool,
    fin: bool,
}

impl Chunk {
    fn seq_len(&self) -> u32 {
        self.data.len() as u32 + u32::from(self.syn) + u32::from(self.fin)
    }
    fn end_seq(&self) -> u32 {
        self.seq.wrapping_add(self.seq_len())
    }
}

/// One TCP connection.
#[derive(Debug)]
pub struct TcpConn {
    /// Local (address, port).
    pub local: (Ipv4Addr, u16),
    /// Remote (address, port).
    pub remote: (Ipv4Addr, u16),
    state: TcpState,
    iss: u32,
    snd_nxt: u32,
    snd_una: u32,
    rcv_nxt: u32,
    /// Chunks queued by the application but not yet transmitted (held back
    /// by the congestion or peer-advertised window). `snd_nxt` already
    /// covers them.
    pending: VecDeque<Chunk>,
    /// Chunks transmitted and awaiting acknowledgment, in sequence order.
    unacked: VecDeque<Chunk>,
    /// Sum of `seq_len` over `unacked`.
    in_flight: u32,
    /// Peer-advertised receive window (from the latest ACK).
    snd_wnd: u32,
    /// Congestion window.
    cwnd: u32,
    /// Slow-start threshold.
    ssthresh: u32,
    /// Consecutive duplicate ACKs observed at `snd_una`.
    dup_acks: u32,
    retries: u32,
    /// Smoothed RTT (None until the first sample).
    srtt: Option<SimDuration>,
    /// RTT variance estimator.
    rttvar: SimDuration,
    /// Floor for the computed RTO (and the RTO used before any RTT sample).
    base_rto: SimDuration,
    /// Current RTO, including exponential backoff.
    rto_cur: SimDuration,
    /// The one segment currently being timed for an RTT sample (Karn's
    /// algorithm: cleared on any retransmission): `(end_seq, sent_at)`.
    rtt_probe: Option<(u32, SimTime)>,
    /// Our advertised receive window.
    rcv_wnd: u32,
    /// Out-of-order received bytes ahead of `rcv_nxt`: `(seq, bytes)`,
    /// sorted by offset from `rcv_nxt`, non-overlapping. Because offsets are
    /// clipped to `rcv_wnd`, total held bytes never exceed the window.
    rcv_ooo: Vec<(u32, Vec<u8>)>,
    /// Who wins when arriving bytes overlap held bytes.
    overlap: OverlapPolicy,
    /// TTL stamped on outgoing packets; `None` uses the default. Servers in
    /// the stateful-mimicry experiment set this so replies die in-network.
    pub reply_ttl: Option<u8>,
    fin_sent: bool,
}

impl TcpConn {
    fn new(
        local: (Ipv4Addr, u16),
        remote: (Ipv4Addr, u16),
        state: TcpState,
        iss: u32,
        rcv_nxt: u32,
    ) -> TcpConn {
        TcpConn {
            local,
            remote,
            state,
            iss,
            snd_nxt: iss.wrapping_add(1),
            snd_una: iss,
            rcv_nxt,
            pending: VecDeque::new(),
            unacked: VecDeque::new(),
            in_flight: 0,
            snd_wnd: DEFAULT_WINDOW,
            cwnd: INIT_CWND,
            ssthresh: MAX_CWND,
            dup_acks: 0,
            retries: 0,
            srtt: None,
            rttvar: SimDuration::ZERO,
            base_rto: SimDuration::from_millis(200),
            rto_cur: SimDuration::from_millis(200),
            rtt_probe: None,
            rcv_wnd: DEFAULT_WINDOW,
            rcv_ooo: Vec::new(),
            overlap: OverlapPolicy::default(),
            reply_ttl: None,
            fin_sent: false,
        }
    }

    /// Open a connection: returns the connection in `SynSent` plus the SYN
    /// packet to transmit. `iss` is the initial send sequence number.
    pub fn connect(
        local: (Ipv4Addr, u16),
        remote: (Ipv4Addr, u16),
        iss: u32,
        now: SimTime,
    ) -> (TcpConn, Packet) {
        let mut conn = TcpConn::new(local, remote, TcpState::SynSent, iss, 0);
        conn.unacked.push_back(Chunk {
            seq: iss,
            data: Vec::new(),
            syn: true,
            fin: false,
        });
        conn.in_flight = 1;
        conn.rtt_probe = Some((iss.wrapping_add(1), now));
        let syn = conn.make_packet(iss, 0, TcpFlags::syn(), Vec::new());
        (conn, syn)
    }

    /// Accept a connection from a received SYN: returns the connection in
    /// `SynReceived` plus the SYN/ACK to transmit.
    pub fn accept(
        local: (Ipv4Addr, u16),
        remote: (Ipv4Addr, u16),
        peer_seq: u32,
        iss: u32,
        now: SimTime,
    ) -> (TcpConn, Packet) {
        let mut conn = TcpConn::new(
            local,
            remote,
            TcpState::SynReceived,
            iss,
            peer_seq.wrapping_add(1),
        );
        conn.unacked.push_back(Chunk {
            seq: iss,
            data: Vec::new(),
            syn: true,
            fin: false,
        });
        conn.in_flight = 1;
        conn.rtt_probe = Some((iss.wrapping_add(1), now));
        let syn_ack = conn.make_packet(iss, conn.rcv_nxt, TcpFlags::syn_ack(), Vec::new());
        (conn, syn_ack)
    }

    /// Current state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// Whether the connection still has untransmitted or unacknowledged
    /// chunks (the host keeps an RTO timer armed while this is true).
    pub fn has_unacked(&self) -> bool {
        !self.unacked.is_empty() || !self.pending.is_empty()
    }

    /// Whether the connection is fully closed and can be dropped.
    pub fn is_closed(&self) -> bool {
        self.state == TcpState::Closed
    }

    /// The current retransmission timeout, including exponential backoff.
    /// The host arms its RTO timer with this value.
    pub fn rto(&self) -> SimDuration {
        self.rto_cur
    }

    /// Set the base (minimum) RTO. Applied by the host at connection setup;
    /// also resets the current RTO if no backoff is in progress.
    pub fn set_base_rto(&mut self, rto: SimDuration) {
        self.base_rto = rto;
        if self.retries == 0 {
            self.rto_cur = self.computed_rto();
        }
    }

    /// Set the advertised receive window (bytes). Segments wholly beyond
    /// `rcv_nxt + rcv_wnd` are dropped — the lever for window-based evasion.
    pub fn set_rcv_wnd(&mut self, wnd: u32) {
        self.rcv_wnd = wnd;
    }

    /// Set the receive-side overlap policy.
    pub fn set_overlap_policy(&mut self, policy: OverlapPolicy) {
        self.overlap = policy;
    }

    /// The receive-side overlap policy.
    pub fn overlap_policy(&self) -> OverlapPolicy {
        self.overlap
    }

    /// Next sequence number the receive side expects.
    pub fn rcv_nxt(&self) -> u32 {
        self.rcv_nxt
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u32 {
        self.cwnd
    }

    /// Latest peer-advertised receive window in bytes.
    pub fn snd_wnd(&self) -> u32 {
        self.snd_wnd
    }

    /// Bytes (plus SYN/FIN octets) currently in flight.
    pub fn in_flight(&self) -> u32 {
        self.in_flight
    }

    /// Smoothed RTT, if at least one sample has been taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    fn make_packet(&self, seq: u32, ack: u32, flags: TcpFlags, payload: Vec<u8>) -> Packet {
        Packet::tcp(
            self.local.0,
            self.remote.0,
            self.local.1,
            self.remote.1,
            seq,
            ack,
            flags,
            payload,
        )
        .with_tcp_window(self.rcv_wnd.min(u16::MAX as u32) as u16)
        .with_ttl(self.reply_ttl.unwrap_or(DEFAULT_TTL))
    }

    fn ack_packet(&self) -> Packet {
        self.make_packet(self.snd_nxt, self.rcv_nxt, TcpFlags::ack(), Vec::new())
    }

    /// The effective send window: min(congestion window, peer window).
    fn send_limit(&self) -> u32 {
        self.cwnd.min(self.snd_wnd)
    }

    /// Move chunks from `pending` to the wire while the window allows. At
    /// least one chunk is always released when nothing is in flight (the
    /// zero-window probe, collapsed into sending the head chunk).
    fn transmit_pending(&mut self, out: &mut Vec<Packet>, now: SimTime) {
        if !matches!(
            self.state,
            TcpState::Established
                | TcpState::CloseWait
                | TcpState::FinWait1
                | TcpState::LastAck
                | TcpState::Closing
        ) {
            return;
        }
        let limit = self.send_limit();
        while let Some(front) = self.pending.front() {
            let len = front.seq_len();
            if self.in_flight != 0 && self.in_flight.saturating_add(len) > limit {
                break;
            }
            let chunk = self.pending.pop_front().expect("front exists");
            if self.rtt_probe.is_none() && !chunk.syn {
                self.rtt_probe = Some((chunk.end_seq(), now));
            }
            let flags = if chunk.fin {
                TcpFlags::fin_ack()
            } else {
                TcpFlags::psh_ack()
            };
            out.push(self.make_packet(chunk.seq, self.rcv_nxt, flags, chunk.data.clone()));
            self.in_flight = self.in_flight.saturating_add(len);
            self.unacked.push_back(chunk);
        }
    }

    /// Queue application data. Returns the packets transmitted now (the
    /// remainder is window-clocked out as ACKs arrive; all data is retained
    /// for retransmission). Only legal while the local side is open
    /// (`Established` or `CloseWait`); otherwise returns no packets.
    pub fn send(&mut self, data: &[u8], now: SimTime) -> Vec<Packet> {
        if !matches!(self.state, TcpState::Established | TcpState::CloseWait) || data.is_empty() {
            return Vec::new();
        }
        for piece in data.chunks(MSS) {
            let seq = self.snd_nxt;
            self.snd_nxt = self.snd_nxt.wrapping_add(piece.len() as u32);
            self.pending.push_back(Chunk {
                seq,
                data: piece.to_vec(),
                syn: false,
                fin: false,
            });
        }
        let mut out = Vec::new();
        self.transmit_pending(&mut out, now);
        out
    }

    /// Close the local side (send FIN). Returns packets to transmit.
    pub fn close(&mut self, now: SimTime) -> Vec<Packet> {
        match self.state {
            TcpState::Established => self.state = TcpState::FinWait1,
            TcpState::CloseWait => self.state = TcpState::LastAck,
            TcpState::SynSent => {
                // Nothing on the wire worth tearing down.
                self.state = TcpState::Closed;
                self.unacked.clear();
                self.pending.clear();
                self.in_flight = 0;
                return Vec::new();
            }
            _ => return Vec::new(),
        }
        let seq = self.snd_nxt;
        self.snd_nxt = self.snd_nxt.wrapping_add(1);
        self.fin_sent = true;
        self.pending.push_back(Chunk {
            seq,
            data: Vec::new(),
            syn: false,
            fin: true,
        });
        let mut out = Vec::new();
        self.transmit_pending(&mut out, now);
        out
    }

    /// Abort the connection: returns the RST to transmit (if the connection
    /// had reached a state where a RST is meaningful).
    pub fn abort(&mut self) -> Option<Packet> {
        let was = self.state;
        self.state = TcpState::Closed;
        self.unacked.clear();
        self.pending.clear();
        self.in_flight = 0;
        if was == TcpState::Closed {
            None
        } else {
            Some(self.make_packet(self.snd_nxt, self.rcv_nxt, TcpFlags::rst_ack(), Vec::new()))
        }
    }

    /// Retransmit the head of the unacked queue (the only segment an RTO or
    /// fast retransmit resends — retransmitting the whole queue was the old
    /// go-back-N storm).
    fn retransmit_head(&mut self, out: &mut Vec<Packet>) {
        let Some(chunk) = self.unacked.front() else {
            return;
        };
        let flags = if chunk.syn {
            if self.state == TcpState::SynReceived {
                TcpFlags::syn_ack()
            } else {
                TcpFlags::syn()
            }
        } else if chunk.fin {
            TcpFlags::fin_ack()
        } else {
            TcpFlags::psh_ack()
        };
        let ack = if self.state == TcpState::SynSent {
            0
        } else {
            self.rcv_nxt
        };
        let pkt = self.make_packet(chunk.seq, ack, flags, chunk.data.clone());
        out.push(pkt);
        // Karn's algorithm: never time a retransmitted segment.
        self.rtt_probe = None;
    }

    /// Retransmission timer fired. Retransmits only the head of the queue,
    /// backs off the RTO exponentially, and collapses the congestion window.
    /// Returns packets to retransmit and any events (a [`TcpEvent::TimedOut`]
    /// when retries are exhausted).
    pub fn on_rto(&mut self, now: SimTime) -> (Vec<Packet>, Vec<TcpEvent>) {
        if (self.unacked.is_empty() && self.pending.is_empty()) || self.state == TcpState::Closed {
            return (Vec::new(), Vec::new());
        }
        self.retries += 1;
        if self.retries > MAX_RETRIES {
            self.state = TcpState::Closed;
            self.unacked.clear();
            self.pending.clear();
            self.in_flight = 0;
            return (Vec::new(), vec![TcpEvent::TimedOut]);
        }
        // Loss response: multiplicative decrease and exponential backoff.
        self.ssthresh = (self.in_flight / 2).max(MIN_SSTHRESH);
        self.cwnd = MSS as u32;
        self.dup_acks = 0;
        self.rto_cur = cap_duration(self.rto_cur.saturating_mul(2), RTO_MAX);
        let mut out = Vec::new();
        if self.unacked.is_empty() {
            // Window-blocked with nothing in flight: release the head
            // pending chunk as a probe.
            self.transmit_pending(&mut out, now);
        } else {
            self.retransmit_head(&mut out);
        }
        (out, Vec::new())
    }

    /// Process a received segment. Returns packets to transmit and events
    /// for the application, in order.
    pub fn on_segment(&mut self, seg: &TcpSegment, now: SimTime) -> (Vec<Packet>, Vec<TcpEvent>) {
        let mut out = Vec::new();
        let mut events = Vec::new();

        if self.state == TcpState::Closed {
            return (out, events);
        }

        // RST handling. In SynSent a RST means the port refused us. In
        // synchronized states the RST must fall inside the receive window
        // (RFC 5961-flavoured): an out-of-window RST draws a challenge ACK
        // and is otherwise ignored. In-network censors that track sequence
        // numbers (ours do) inject in-window RSTs, which still kill the
        // connection; blind off-window RSTs no longer do.
        if seg.flags.has_rst() {
            if self.state == TcpState::SynSent {
                self.enter_closed();
                events.push(TcpEvent::Refused);
                return (out, events);
            }
            let off = seg.seq.wrapping_sub(self.rcv_nxt);
            if seg.seq == self.rcv_nxt || off < self.rcv_wnd {
                self.enter_closed();
                events.push(TcpEvent::Reset);
            } else {
                out.push(self.ack_packet());
            }
            return (out, events);
        }

        match self.state {
            TcpState::SynSent => {
                if seg.flags.has_syn() && seg.flags.has_ack() {
                    if seg.ack != self.iss.wrapping_add(1) {
                        // Wrong ACK: answer with RST per RFC 793.
                        out.push(self.make_packet(seg.ack, 0, TcpFlags::rst(), Vec::new()));
                        return (out, events);
                    }
                    self.snd_una = seg.ack;
                    self.rcv_nxt = seg.seq.wrapping_add(1);
                    self.unacked.clear();
                    self.in_flight = 0;
                    self.retries = 0;
                    self.snd_wnd = seg.window as u32;
                    if let Some((end, sent_at)) = self.rtt_probe.take() {
                        if seq_le(end, seg.ack) {
                            self.take_rtt_sample(now.saturating_since(sent_at));
                        }
                    }
                    self.rto_cur = self.computed_rto();
                    self.state = TcpState::Established;
                    out.push(self.ack_packet());
                    events.push(TcpEvent::Connected);
                }
                // Bare SYN (simultaneous open) is not supported; ignore.
                // A stray SYN on an established tuple is likewise ignored
                // below — the endpoint does NOT resync its TCB, which is
                // exactly where SYN-desync evasion diverges from a naive
                // monitor that does.
            }
            _ => {
                // ACK processing: drop fully-acknowledged chunks, take RTT
                // samples, grow the congestion window, count duplicates.
                if seg.flags.has_ack() {
                    self.process_ack(seg, &mut out, &mut events, now);
                    if self.state == TcpState::Closed {
                        return (out, events);
                    }
                }

                // Data processing: in-order delivery plus an out-of-order
                // hold buffer bounded by our advertised window.
                let data_len = seg.payload.len() as u32;
                let mut advanced = false;
                if data_len > 0 && self.receiving_open() {
                    let end = seg.seq.wrapping_add(data_len);
                    if seq_le(end, self.rcv_nxt) {
                        // Entirely old bytes: re-ACK so the sender moves on.
                        out.push(self.ack_packet());
                    } else if seq_le(seg.seq, self.rcv_nxt) {
                        // Overlaps rcv_nxt: deliverable right now.
                        self.deliver_in_order(seg.seq, &seg.payload, &mut events);
                        advanced = true;
                    } else {
                        let off = seg.seq.wrapping_sub(self.rcv_nxt);
                        if off >= self.rcv_wnd {
                            // Wholly beyond our advertised window: an honest
                            // sender never does this; drop and re-ACK. This
                            // is the window-evasion boundary.
                            out.push(self.ack_packet());
                        } else {
                            self.hold_ooo(seg.seq, &seg.payload);
                            // Duplicate ACK signals the gap to the sender.
                            out.push(self.ack_packet());
                        }
                    }
                } else if data_len > 0 {
                    // Receive side closed: just re-ACK.
                    out.push(self.ack_packet());
                }

                // FIN processing.
                if seg.flags.has_fin() {
                    let fin_seq = seg.seq.wrapping_add(data_len);
                    if fin_seq == self.rcv_nxt {
                        self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
                        advanced = true;
                        events.push(TcpEvent::PeerClosed);
                        match self.state {
                            TcpState::SynReceived | TcpState::Established => {
                                self.state = TcpState::CloseWait;
                            }
                            TcpState::FinWait1 => {
                                // Our FIN not yet acked: both sides closing.
                                self.state = TcpState::Closing;
                            }
                            TcpState::FinWait2 => {
                                self.state = TcpState::Closed;
                                events.push(TcpEvent::Closed);
                            }
                            _ => {}
                        }
                    } else if seq_lt(fin_seq, self.rcv_nxt) {
                        // Retransmitted FIN: re-ACK.
                        out.push(self.ack_packet());
                    }
                }

                if advanced {
                    out.push(self.ack_packet());
                }

                // An ACK may have opened the window: clock out queued data.
                self.transmit_pending(&mut out, now);
            }
        }

        (out, events)
    }

    fn enter_closed(&mut self) {
        self.state = TcpState::Closed;
        self.unacked.clear();
        self.pending.clear();
        self.in_flight = 0;
        self.rcv_ooo.clear();
    }

    fn receiving_open(&self) -> bool {
        matches!(
            self.state,
            TcpState::SynReceived | TcpState::Established | TcpState::FinWait1 | TcpState::FinWait2
        )
    }

    /// Deliver bytes that overlap `rcv_nxt` (seq <= rcv_nxt < end), then
    /// drain any out-of-order bytes this makes contiguous.
    fn deliver_in_order(&mut self, seq: u32, payload: &[u8], events: &mut Vec<TcpEvent>) {
        let skip = self.rcv_nxt.wrapping_sub(seq) as usize;
        if skip >= payload.len() {
            return;
        }
        let mut bytes = payload[skip..].to_vec();
        if bytes.len() as u32 > self.rcv_wnd.max(1) {
            bytes.truncate(self.rcv_wnd.max(1) as usize);
        }
        if self.overlap == OverlapPolicy::KeepFirst {
            // Bytes already held out-of-order arrived first: they win over
            // this late in-order copy wherever the two ranges overlap.
            let base = self.rcv_nxt;
            let len = bytes.len() as u32;
            for (hseq, hdata) in &self.rcv_ooo {
                let hoff = hseq.wrapping_sub(base);
                if hoff >= len {
                    break;
                }
                let copy = (hdata.len() as u32).min(len - hoff) as usize;
                bytes[hoff as usize..hoff as usize + copy].copy_from_slice(&hdata[..copy]);
            }
        }
        self.rcv_nxt = self.rcv_nxt.wrapping_add(bytes.len() as u32);
        events.push(TcpEvent::Data(bytes));
        self.drain_ooo(events);
    }

    /// Pop held out-of-order chunks made contiguous by an advance of
    /// `rcv_nxt`, delivering their undelivered suffixes.
    fn drain_ooo(&mut self, events: &mut Vec<TcpEvent>) {
        while !self.rcv_ooo.is_empty() {
            let (hseq, _) = self.rcv_ooo[0];
            if seq_lt(self.rcv_nxt, hseq) {
                break;
            }
            let (hseq, hdata) = self.rcv_ooo.remove(0);
            let skip = self.rcv_nxt.wrapping_sub(hseq) as usize;
            if skip < hdata.len() {
                let bytes = hdata[skip..].to_vec();
                self.rcv_nxt = self.rcv_nxt.wrapping_add(bytes.len() as u32);
                events.push(TcpEvent::Data(bytes));
            }
        }
    }

    /// Buffer a future segment (rcv_nxt < seq, inside the window). The held
    /// set stays sorted and non-overlapping; the overlap policy decides
    /// which copy survives where the new range crosses held ranges.
    fn hold_ooo(&mut self, seq: u32, payload: &[u8]) {
        let base = self.rcv_nxt;
        let off = seq.wrapping_sub(base);
        let avail = self.rcv_wnd.saturating_sub(off);
        if avail == 0 || payload.is_empty() {
            return;
        }
        let mut data = payload.to_vec();
        if data.len() as u32 > avail {
            data.truncate(avail as usize);
        }
        let new_start = off;
        let new_end = off + data.len() as u32;
        match self.overlap {
            OverlapPolicy::KeepFirst => {
                // Insert only the sub-ranges no held chunk already covers.
                let mut cursor = new_start;
                let mut inserts: Vec<(u32, Vec<u8>)> = Vec::new();
                for (hseq, hdata) in &self.rcv_ooo {
                    let hs = hseq.wrapping_sub(base);
                    let he = hs + hdata.len() as u32;
                    if he <= cursor {
                        continue;
                    }
                    if hs >= new_end {
                        break;
                    }
                    if hs > cursor {
                        let hi = hs.min(new_end);
                        inserts.push((
                            base.wrapping_add(cursor),
                            data[(cursor - new_start) as usize..(hi - new_start) as usize].to_vec(),
                        ));
                    }
                    cursor = cursor.max(he);
                    if cursor >= new_end {
                        break;
                    }
                }
                if cursor < new_end {
                    inserts.push((
                        base.wrapping_add(cursor),
                        data[(cursor - new_start) as usize..].to_vec(),
                    ));
                }
                self.rcv_ooo.extend(inserts);
            }
            OverlapPolicy::KeepLast => {
                // Trim or split held chunks the new range crosses, then
                // insert the new bytes whole.
                let mut kept: Vec<(u32, Vec<u8>)> = Vec::new();
                for (hseq, hdata) in std::mem::take(&mut self.rcv_ooo) {
                    let hs = hseq.wrapping_sub(base);
                    let he = hs + hdata.len() as u32;
                    if he <= new_start || hs >= new_end {
                        kept.push((hseq, hdata));
                        continue;
                    }
                    if hs < new_start {
                        kept.push((hseq, hdata[..(new_start - hs) as usize].to_vec()));
                    }
                    if he > new_end {
                        kept.push((
                            base.wrapping_add(new_end),
                            hdata[(new_end - hs) as usize..].to_vec(),
                        ));
                    }
                }
                kept.push((base.wrapping_add(new_start), data));
                self.rcv_ooo = kept;
            }
        }
        self.rcv_ooo.sort_by_key(|(s, _)| s.wrapping_sub(base));
    }

    /// RFC 6298 estimator update.
    fn take_rtt_sample(&mut self, sample: SimDuration) {
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample.div(2);
            }
            Some(srtt) => {
                let s = srtt.as_nanos();
                let r = sample.as_nanos();
                let diff = s.abs_diff(r);
                // rttvar = 3/4 rttvar + 1/4 |srtt - r|
                self.rttvar = SimDuration::from_nanos(
                    (self.rttvar.as_nanos() / 4).saturating_mul(3) + diff / 4,
                );
                // srtt = 7/8 srtt + 1/8 r
                self.srtt = Some(SimDuration::from_nanos((s / 8).saturating_mul(7) + r / 8));
            }
        }
    }

    /// RTO = clamp(srtt + max(G, 4·rttvar), base_rto, RTO_MAX).
    fn computed_rto(&self) -> SimDuration {
        match self.srtt {
            Some(srtt) => {
                let var = self
                    .rttvar
                    .saturating_mul(4)
                    .max(RTO_GRANULARITY)
                    .as_nanos();
                let rto = SimDuration::from_nanos(srtt.as_nanos().saturating_add(var));
                cap_duration(rto.max(self.base_rto), RTO_MAX)
            }
            None => self.base_rto,
        }
    }

    fn process_ack(
        &mut self,
        seg: &TcpSegment,
        out: &mut Vec<Packet>,
        events: &mut Vec<TcpEvent>,
        now: SimTime,
    ) {
        let ack = seg.ack;
        if !seq_le(ack, self.snd_nxt) {
            return; // Acks data we never sent; ignore.
        }
        if seq_lt(ack, self.snd_una) {
            return; // Old ACK; ignore.
        }
        self.snd_wnd = seg.window as u32;
        if ack == self.snd_una {
            // Possible duplicate ACK: a pure ACK at snd_una while data is
            // outstanding means the peer got something out of order.
            let pure_ack = seg.payload.is_empty() && !seg.flags.has_syn() && !seg.flags.has_fin();
            if pure_ack && !self.unacked.is_empty() {
                self.dup_acks += 1;
                if self.dup_acks == DUP_ACK_THRESHOLD {
                    // Fast retransmit: the head chunk is the likely loss.
                    self.ssthresh = (self.in_flight / 2).max(MIN_SSTHRESH);
                    self.cwnd = self.ssthresh;
                    self.retransmit_head(out);
                }
            }
            return;
        }

        // Forward progress.
        let acked_bytes = ack.wrapping_sub(self.snd_una);
        while let Some(front) = self.unacked.front() {
            if seq_le(front.end_seq(), ack) {
                let was_syn = front.syn;
                let was_fin = front.fin;
                self.in_flight = self.in_flight.saturating_sub(front.seq_len());
                self.unacked.pop_front();
                if was_syn && self.state == TcpState::SynReceived {
                    self.state = TcpState::Established;
                    events.push(TcpEvent::Connected);
                }
                if was_fin {
                    match self.state {
                        TcpState::FinWait1 => self.state = TcpState::FinWait2,
                        TcpState::Closing | TcpState::LastAck => {
                            self.state = TcpState::Closed;
                            events.push(TcpEvent::Closed);
                        }
                        _ => {}
                    }
                }
            } else {
                break;
            }
        }
        self.snd_una = ack;
        self.retries = 0;
        self.dup_acks = 0;
        if let Some((end, sent_at)) = self.rtt_probe {
            if seq_le(end, ack) {
                self.take_rtt_sample(now.saturating_since(sent_at));
                self.rtt_probe = None;
            }
        }
        self.rto_cur = self.computed_rto();
        // Congestion window growth: slow start below ssthresh, AIMD above.
        let mss = MSS as u32;
        if self.cwnd < self.ssthresh {
            self.cwnd = self.cwnd.saturating_add(acked_bytes.min(mss)).min(MAX_CWND);
        } else {
            let add = (mss.saturating_mul(mss) / self.cwnd.max(1)).max(1);
            self.cwnd = self.cwnd.saturating_add(add).min(MAX_CWND);
        }
    }
}

fn cap_duration(d: SimDuration, max: SimDuration) -> SimDuration {
    if d > max {
        max
    } else {
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const S: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
    const T0: SimTime = SimTime::ZERO;

    fn seg_of(p: &Packet) -> TcpSegment {
        p.as_tcp().expect("tcp packet").clone()
    }

    fn at_ms(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    /// Drive a full handshake; returns (client, server).
    fn handshake() -> (TcpConn, TcpConn) {
        let (mut client, syn) = TcpConn::connect((C, 4000), (S, 80), 1000, T0);
        let syn_seg = seg_of(&syn);
        assert!(syn_seg.flags.has_syn() && !syn_seg.flags.has_ack());

        let (mut server, syn_ack) = TcpConn::accept((S, 80), (C, 4000), syn_seg.seq, 9000, T0);
        let (cl_out, cl_ev) = client.on_segment(&seg_of(&syn_ack), T0);
        assert_eq!(cl_ev, vec![TcpEvent::Connected]);
        assert_eq!(client.state(), TcpState::Established);
        assert_eq!(cl_out.len(), 1);

        let (sv_out, sv_ev) = server.on_segment(&seg_of(&cl_out[0]), T0);
        assert_eq!(sv_ev, vec![TcpEvent::Connected]);
        assert_eq!(server.state(), TcpState::Established);
        assert!(sv_out.is_empty());
        (client, server)
    }

    #[test]
    fn three_way_handshake() {
        handshake();
    }

    #[test]
    fn data_transfer_and_ack() {
        let (mut client, mut server) = handshake();
        let data_pkts = client.send(b"GET / HTTP/1.0\r\n\r\n", T0);
        assert_eq!(data_pkts.len(), 1);
        assert!(client.has_unacked());
        let (sv_out, sv_ev) = server.on_segment(&seg_of(&data_pkts[0]), T0);
        assert_eq!(
            sv_ev,
            vec![TcpEvent::Data(b"GET / HTTP/1.0\r\n\r\n".to_vec())]
        );
        assert_eq!(sv_out.len(), 1, "server ACKs");
        let (_, cl_ev) = client.on_segment(&seg_of(&sv_out[0]), T0);
        assert!(cl_ev.is_empty());
        assert!(!client.has_unacked());
    }

    #[test]
    fn large_send_is_segmented_at_mss() {
        let (mut client, mut server) = handshake();
        let payload = vec![0x41u8; MSS * 2 + 100];
        let pkts = client.send(&payload, T0);
        assert_eq!(pkts.len(), 3);
        let mut received = Vec::new();
        for p in &pkts {
            let (_, ev) = server.on_segment(&seg_of(p), T0);
            for e in ev {
                if let TcpEvent::Data(d) = e {
                    received.extend_from_slice(&d);
                }
            }
        }
        assert_eq!(received, payload);
    }

    #[test]
    fn graceful_close_both_sides() {
        let (mut client, mut server) = handshake();
        // Client closes.
        let fin = client.close(T0);
        assert_eq!(client.state(), TcpState::FinWait1);
        let (sv_out, sv_ev) = server.on_segment(&seg_of(&fin[0]), T0);
        assert_eq!(sv_ev, vec![TcpEvent::PeerClosed]);
        assert_eq!(server.state(), TcpState::CloseWait);
        let (_, cl_ev) = client.on_segment(&seg_of(&sv_out[0]), T0);
        assert!(cl_ev.is_empty());
        assert_eq!(client.state(), TcpState::FinWait2);
        // Server closes.
        let fin2 = server.close(T0);
        assert_eq!(server.state(), TcpState::LastAck);
        let (cl_out, cl_ev) = client.on_segment(&seg_of(&fin2[0]), T0);
        assert_eq!(cl_ev, vec![TcpEvent::PeerClosed, TcpEvent::Closed]);
        assert!(client.is_closed());
        let (_, sv_ev) = server.on_segment(&seg_of(&cl_out[0]), T0);
        assert_eq!(sv_ev, vec![TcpEvent::Closed]);
        assert!(server.is_closed());
    }

    #[test]
    fn injected_rst_resets_established_connection() {
        // The censorship primitive: an on-path device injects a RST with the
        // right four-tuple and an in-window sequence number.
        let (mut client, _server) = handshake();
        let rst = TcpSegment {
            src_port: 80,
            dst_port: 4000,
            seq: 9001,
            ack: 1001,
            flags: TcpFlags::rst_ack(),
            window: 0,
            payload: Vec::new(),
        };
        let (_, ev) = client.on_segment(&rst, T0);
        assert_eq!(ev, vec![TcpEvent::Reset]);
        assert!(client.is_closed());
    }

    #[test]
    fn out_of_window_rst_draws_challenge_ack_and_is_ignored() {
        let (mut client, _server) = handshake();
        // A blind RST far outside the receive window must not kill the
        // connection (RFC 5961 behaviour) — but the monitor, which accepts
        // any RST, desyncs here. That asymmetry is an E13 evasion class.
        let rst = TcpSegment {
            src_port: 80,
            dst_port: 4000,
            seq: 9001u32.wrapping_add(200_000),
            ack: 1001,
            flags: TcpFlags::rst_ack(),
            window: 0,
            payload: Vec::new(),
        };
        let (out, ev) = client.on_segment(&rst, T0);
        assert!(ev.is_empty());
        assert_eq!(client.state(), TcpState::Established);
        assert_eq!(out.len(), 1, "challenge ACK");
        let challenge = seg_of(&out[0]);
        assert!(challenge.flags.has_ack() && !challenge.flags.has_rst());
        assert_eq!(challenge.ack, 9001);
    }

    #[test]
    fn rst_to_syn_is_refused() {
        let (mut client, _syn) = TcpConn::connect((C, 4000), (S, 81), 5, T0);
        let rst = TcpSegment {
            src_port: 81,
            dst_port: 4000,
            seq: 0,
            ack: 6,
            flags: TcpFlags::rst_ack(),
            window: 0,
            payload: Vec::new(),
        };
        let (_, ev) = client.on_segment(&rst, T0);
        assert_eq!(ev, vec![TcpEvent::Refused]);
        assert!(client.is_closed());
    }

    #[test]
    fn rto_retransmits_then_times_out() {
        let (mut client, _syn) = TcpConn::connect((C, 4000), (S, 80), 100, T0);
        for _ in 0..MAX_RETRIES {
            let (pkts, ev) = client.on_rto(T0);
            assert_eq!(pkts.len(), 1, "SYN retransmitted");
            assert!(seg_of(&pkts[0]).flags.has_syn());
            assert!(ev.is_empty());
        }
        let (pkts, ev) = client.on_rto(T0);
        assert!(pkts.is_empty());
        assert_eq!(ev, vec![TcpEvent::TimedOut]);
        assert!(client.is_closed());
    }

    #[test]
    fn rto_retransmits_head_only() {
        // The old implementation resent the entire unacked queue on every
        // RTO (a go-back-N storm). Only the head may be retransmitted.
        let (mut client, _server) = handshake();
        let pkts = client.send(&vec![0x42u8; MSS * 3], T0);
        assert_eq!(pkts.len(), 3);
        let (retx, ev) = client.on_rto(T0);
        assert!(ev.is_empty());
        assert_eq!(retx.len(), 1, "head-of-queue only");
        assert_eq!(seg_of(&retx[0]).seq, seg_of(&pkts[0]).seq);
    }

    #[test]
    fn rto_backs_off_exponentially_and_resets_on_progress() {
        let (mut client, _server) = handshake();
        let base = client.rto();
        let pkts = client.send(b"hello", T0);
        let _ = client.on_rto(T0);
        assert_eq!(client.rto(), base.saturating_mul(2));
        let _ = client.on_rto(T0);
        assert_eq!(client.rto(), base.saturating_mul(4));
        // A fresh cumulative ACK is forward progress: backoff resets.
        let seq = seg_of(&pkts[0]);
        let ack = TcpSegment {
            src_port: 80,
            dst_port: 4000,
            seq: 9001,
            ack: seq.seq.wrapping_add(seq.payload.len() as u32),
            flags: TcpFlags::ack(),
            window: 65535,
            payload: Vec::new(),
        };
        let (_, ev) = client.on_segment(&ack, T0);
        assert!(ev.is_empty());
        assert!(client.rto() <= base, "backoff cleared on forward progress");
        assert!(!client.has_unacked());
    }

    #[test]
    fn fast_retransmit_on_three_dup_acks() {
        let (mut client, _server) = handshake();
        let pkts = client.send(&vec![0x42u8; MSS * 3], T0);
        assert_eq!(pkts.len(), 3);
        let dup = TcpSegment {
            src_port: 80,
            dst_port: 4000,
            seq: 9001,
            ack: 1001, // snd_una: nothing new
            flags: TcpFlags::ack(),
            window: 65535,
            payload: Vec::new(),
        };
        let (out1, _) = client.on_segment(&dup, T0);
        let (out2, _) = client.on_segment(&dup, T0);
        assert!(out1.is_empty() && out2.is_empty(), "below threshold");
        let (out3, _) = client.on_segment(&dup, T0);
        assert_eq!(out3.len(), 1, "third duplicate triggers fast retransmit");
        assert_eq!(seg_of(&out3[0]).seq, 1001);
        assert_eq!(seg_of(&out3[0]).payload.len(), MSS);
        // Further duplicates do not retransmit again.
        let (out4, _) = client.on_segment(&dup, T0);
        assert!(out4.is_empty());
    }

    #[test]
    fn slow_start_grows_cwnd_and_rto_collapses_it() {
        let (mut client, _server) = handshake();
        let cwnd0 = client.cwnd();
        assert_eq!(cwnd0, INIT_CWND);
        let pkts = client.send(&vec![1u8; MSS * 2], T0);
        let end = seg_of(&pkts[1]).seq.wrapping_add(MSS as u32);
        let ack = TcpSegment {
            src_port: 80,
            dst_port: 4000,
            seq: 9001,
            ack: end,
            flags: TcpFlags::ack(),
            window: 65535,
            payload: Vec::new(),
        };
        let (_, _) = client.on_segment(&ack, T0);
        assert!(client.cwnd() > cwnd0, "slow start grows the window");
        // An RTO is a loss event: multiplicative decrease to one MSS.
        let _ = client.send(b"more", T0);
        let _ = client.on_rto(T0);
        assert_eq!(client.cwnd(), MSS as u32);
    }

    #[test]
    fn peer_window_gates_transmission() {
        let (mut client, _server) = handshake();
        // Peer advertises a 2-MSS window.
        let wnd_update = TcpSegment {
            src_port: 80,
            dst_port: 4000,
            seq: 9001,
            ack: 1001,
            flags: TcpFlags::ack(),
            window: (MSS * 2) as u16,
            payload: Vec::new(),
        };
        let _ = client.on_segment(&wnd_update, T0);
        assert_eq!(client.snd_wnd(), (MSS * 2) as u32);
        let pkts = client.send(&vec![7u8; MSS * 4], T0);
        assert_eq!(pkts.len(), 2, "only two segments fit the peer window");
        assert!(client.has_unacked());
        // ACK of the first segment releases the next queued chunk.
        let ack = TcpSegment {
            src_port: 80,
            dst_port: 4000,
            seq: 9001,
            ack: 1001 + MSS as u32,
            flags: TcpFlags::ack(),
            window: (MSS * 2) as u16,
            payload: Vec::new(),
        };
        let (out, _) = client.on_segment(&ack, T0);
        assert_eq!(out.len(), 1, "window-clocked release");
        assert_eq!(seg_of(&out[0]).payload.len(), MSS);
    }

    #[test]
    fn zero_window_still_probes_one_chunk() {
        let (mut client, _server) = handshake();
        let zero = TcpSegment {
            src_port: 80,
            dst_port: 4000,
            seq: 9001,
            ack: 1001,
            flags: TcpFlags::ack(),
            window: 0,
            payload: Vec::new(),
        };
        let _ = client.on_segment(&zero, T0);
        let pkts = client.send(&vec![7u8; MSS * 2], T0);
        assert_eq!(pkts.len(), 1, "one probe chunk despite a closed window");
    }

    #[test]
    fn out_of_order_segments_reassemble() {
        let (mut client, mut server) = handshake();
        let pkts = client.send(&vec![0x61u8; MSS * 2], T0);
        assert_eq!(pkts.len(), 2);
        // Second segment arrives first: held, and the server dup-ACKs.
        let (out, ev) = server.on_segment(&seg_of(&pkts[1]), T0);
        assert!(ev.is_empty(), "no delivery yet");
        assert_eq!(out.len(), 1);
        assert_eq!(seg_of(&out[0]).ack, 1001, "duplicate ACK names the gap");
        // First segment fills the gap: both deliver in order.
        let (out, ev) = server.on_segment(&seg_of(&pkts[0]), T0);
        let delivered: Vec<u8> = ev
            .iter()
            .filter_map(|e| match e {
                TcpEvent::Data(d) => Some(d.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(delivered, vec![0x61u8; MSS * 2]);
        let last = seg_of(out.last().expect("cumulative ack"));
        assert_eq!(last.ack, 1001 + (MSS * 2) as u32);
    }

    #[test]
    fn overlap_policy_decides_conflicting_retransmits() {
        // An evasion client sends two different payloads for the same
        // out-of-order range. Which copy the endpoint accepts is the policy.
        for (policy, expect) in [
            (OverlapPolicy::KeepFirst, b"AAAA".as_slice()),
            (OverlapPolicy::KeepLast, b"BBBB".as_slice()),
        ] {
            let (mut client, mut server) = handshake();
            server.set_overlap_policy(policy);
            let first = seg_of(&client.send(b"0123", T0)[0]);
            let mut a = first.clone();
            a.seq = first.seq.wrapping_add(4);
            a.payload = b"AAAA".to_vec();
            let mut b = a.clone();
            b.payload = b"BBBB".to_vec();
            // Both conflicting copies arrive ahead of the gap fill.
            let (_, ev) = server.on_segment(&a, T0);
            assert!(ev.is_empty());
            let (_, ev) = server.on_segment(&b, T0);
            assert!(ev.is_empty());
            // Now the in-order bytes arrive and everything drains.
            let (_, ev) = server.on_segment(&first, T0);
            let got: Vec<u8> = ev
                .iter()
                .filter_map(|e| match e {
                    TcpEvent::Data(d) => Some(d.clone()),
                    _ => None,
                })
                .flatten()
                .collect();
            let mut want = b"0123".to_vec();
            want.extend_from_slice(expect);
            assert_eq!(got, want, "policy {policy:?}");
        }
    }

    #[test]
    fn overlap_policy_applies_to_late_in_order_copy() {
        // A conflicting copy for [2,4) arrives out of order and is held;
        // then the original "0123" arrives in order covering the same range.
        // KeepFirst: the held copy wins over the late bytes → "01XX".
        // KeepLast: the late in-order copy wins → "0123".
        for (policy, expected) in [
            (OverlapPolicy::KeepFirst, b"01XX".as_slice()),
            (OverlapPolicy::KeepLast, b"0123".as_slice()),
        ] {
            let (mut client, mut server) = handshake();
            server.set_overlap_policy(policy);
            let first = seg_of(&client.send(b"0123", T0)[0]);
            let mut held = first.clone();
            held.seq = first.seq.wrapping_add(2);
            held.payload = b"XX".to_vec();
            let (_, ev) = server.on_segment(&held, T0);
            assert!(ev.is_empty());
            let (_, ev) = server.on_segment(&first, T0);
            let got: Vec<u8> = ev
                .iter()
                .filter_map(|e| match e {
                    TcpEvent::Data(d) => Some(d.clone()),
                    _ => None,
                })
                .flatten()
                .collect();
            assert_eq!(got, expected, "policy {policy:?}");
        }
    }

    #[test]
    fn data_beyond_receive_window_is_dropped() {
        let (mut client, mut server) = handshake();
        server.set_rcv_wnd(4096);
        let first = seg_of(&client.send(b"lead", T0)[0]);
        // A segment wholly beyond rcv_nxt + 4096: the endpoint drops it,
        // while a monitor with a larger hold-back window would keep it.
        let mut far = first.clone();
        far.seq = first.seq.wrapping_add(6000);
        far.payload = b"forbidden".to_vec();
        let (out, ev) = server.on_segment(&far, T0);
        assert!(ev.is_empty());
        assert_eq!(out.len(), 1, "re-ACK only");
        // Filling everything up to 6000 must NOT make the dropped bytes
        // appear.
        let (_, ev) = server.on_segment(&first, T0);
        let got: Vec<u8> = ev
            .iter()
            .filter_map(|e| match e {
                TcpEvent::Data(d) => Some(d.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(got, b"lead".to_vec());
    }

    #[test]
    fn adaptive_rto_tracks_rtt_samples() {
        let (mut client, syn) = TcpConn::connect((C, 4000), (S, 80), 1000, T0);
        let syn_seg = seg_of(&syn);
        // SYN/ACK arrives 50 ms later: the first RTT sample.
        let (mut server, syn_ack) =
            TcpConn::accept((S, 80), (C, 4000), syn_seg.seq, 9000, at_ms(50));
        let (cl_out, _) = client.on_segment(&seg_of(&syn_ack), at_ms(50));
        assert_eq!(client.srtt(), Some(SimDuration::from_millis(50)));
        // RTO = srtt + 4·rttvar = 50 + 100 = 150ms, floored at base 200ms.
        assert_eq!(client.rto(), SimDuration::from_millis(200));
        let _ = server.on_segment(&seg_of(&cl_out[0]), at_ms(50));
        // A slow data exchange pushes the RTO above the floor.
        let pkts = client.send(b"ping", at_ms(100));
        let (sv_out, _) = server.on_segment(&seg_of(&pkts[0]), at_ms(1100));
        let (_, _) = client.on_segment(&seg_of(&sv_out[0]), at_ms(1100));
        let srtt = client.srtt().expect("sampled");
        assert!(
            srtt > SimDuration::from_millis(100),
            "srtt moved up: {srtt}"
        );
        assert!(client.rto() > SimDuration::from_millis(200));
        assert!(client.rto() <= SimDuration::from_secs(60));
    }

    #[test]
    fn retransmission_recovers_lost_data() {
        let (mut client, mut server) = handshake();
        let pkts = client.send(b"hello", T0);
        // Pretend the packet was lost; RTO fires.
        let (retx, _) = client.on_rto(T0);
        assert_eq!(retx.len(), 1);
        assert_eq!(seg_of(&retx[0]).payload, seg_of(&pkts[0]).payload);
        let (sv_out, sv_ev) = server.on_segment(&seg_of(&retx[0]), T0);
        assert_eq!(sv_ev, vec![TcpEvent::Data(b"hello".to_vec())]);
        // Duplicate of the original arrives late: server re-ACKs, no event.
        let (dup_out, dup_ev) = server.on_segment(&seg_of(&pkts[0]), T0);
        assert!(dup_ev.is_empty());
        assert_eq!(dup_out.len(), 1);
        let _ = sv_out;
    }

    #[test]
    fn abort_emits_rst_once() {
        let (mut client, _server) = handshake();
        let rst = client.abort().expect("rst");
        assert!(seg_of(&rst).flags.has_rst());
        assert!(client.is_closed());
        assert!(client.abort().is_none(), "second abort is a no-op");
    }

    #[test]
    fn reply_ttl_override_applies_to_all_output() {
        let (mut server, syn_ack) = TcpConn::accept((S, 80), (C, 4000), 0, 50, T0);
        assert_eq!(syn_ack.ttl, DEFAULT_TTL);
        server.reply_ttl = Some(3);
        // Complete handshake.
        let ack = TcpSegment {
            src_port: 4000,
            dst_port: 80,
            seq: 1,
            ack: 51,
            flags: TcpFlags::ack(),
            window: 65535,
            payload: Vec::new(),
        };
        let _ = server.on_segment(&ack, T0);
        assert_eq!(server.state(), TcpState::Established);
        let pkts = server.send(b"ttl-limited reply", T0);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].ttl, 3, "server reply carries the limited TTL");
    }

    #[test]
    fn send_outside_established_is_noop() {
        let (mut client, _syn) = TcpConn::connect((C, 1), (S, 2), 0, T0);
        assert!(client.send(b"too early", T0).is_empty());
        let mut closed = client;
        let _ = closed.abort();
        assert!(closed.send(b"too late", T0).is_empty());
    }

    #[test]
    fn close_in_syn_sent_just_closes() {
        let (mut client, _syn) = TcpConn::connect((C, 1), (S, 2), 0, T0);
        assert!(client.close(T0).is_empty());
        assert!(client.is_closed());
    }

    #[test]
    fn wrong_ack_in_syn_sent_gets_rst() {
        let (mut client, _syn) = TcpConn::connect((C, 4000), (S, 80), 100, T0);
        let bad = TcpSegment {
            src_port: 80,
            dst_port: 4000,
            seq: 7,
            ack: 999, // should be 101
            flags: TcpFlags::syn_ack(),
            window: 0,
            payload: Vec::new(),
        };
        let (out, ev) = client.on_segment(&bad, T0);
        assert!(ev.is_empty());
        assert_eq!(out.len(), 1);
        assert!(seg_of(&out[0]).flags.has_rst());
        assert_eq!(
            client.state(),
            TcpState::SynSent,
            "still waiting for the real SYN/ACK"
        );
    }

    #[test]
    fn stray_syn_on_established_connection_is_ignored() {
        // The endpoint never resyncs its TCB from a mid-stream SYN; a naive
        // monitor that does opens the SYN-desync evasion class.
        let (mut client, _server) = handshake();
        let stray = TcpSegment {
            src_port: 80,
            dst_port: 4000,
            seq: 424242,
            ack: 0,
            flags: TcpFlags::syn(),
            window: 65535,
            payload: Vec::new(),
        };
        let (out, ev) = client.on_segment(&stray, T0);
        assert!(ev.is_empty());
        assert!(out.is_empty());
        assert_eq!(client.state(), TcpState::Established);
        assert_eq!(client.rcv_nxt(), 9001, "rcv_nxt unchanged");
    }

    #[test]
    fn simultaneous_close() {
        let (mut client, mut server) = handshake();
        let cfin = client.close(T0);
        let sfin = server.close(T0);
        // Each side receives the other's FIN before the ACK of its own.
        let (cl_out, cl_ev) = client.on_segment(&seg_of(&sfin[0]), T0);
        assert_eq!(cl_ev, vec![TcpEvent::PeerClosed]);
        assert_eq!(client.state(), TcpState::Closing);
        let (sv_out, sv_ev) = server.on_segment(&seg_of(&cfin[0]), T0);
        assert_eq!(sv_ev, vec![TcpEvent::PeerClosed]);
        // Now the crossed ACKs arrive.
        let (_, cl_ev) = client.on_segment(&seg_of(&sv_out[0]), T0);
        assert_eq!(cl_ev, vec![TcpEvent::Closed]);
        let (_, sv_ev) = server.on_segment(&seg_of(&cl_out[0]), T0);
        assert_eq!(sv_ev, vec![TcpEvent::Closed]);
        assert!(client.is_closed() && server.is_closed());
    }

    #[test]
    fn seq_compare_wraps() {
        assert!(seq_lt(u32::MAX, 0));
        assert!(seq_lt(u32::MAX - 10, 5));
        assert!(!seq_lt(5, u32::MAX - 10));
        assert!(seq_le(7, 7));
    }
}
