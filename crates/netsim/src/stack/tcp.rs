//! A compact TCP state machine (RFC 793 subset).
//!
//! Covers what the simulation needs: three-way handshake, in-order data
//! transfer with cumulative ACKs, go-back-N retransmission on a fixed RTO,
//! FIN teardown, RST handling (both receiving injected RSTs — the Great
//! Firewall's censorship primitive — and sending them), and per-connection
//! reply-TTL override (the paper's TTL-limited stateful mimicry, §4.1).
//!
//! Deliberately omitted: congestion control, SACK, window scaling,
//! simultaneous open, and out-of-order reassembly (out-of-order segments
//! are dropped and recovered by retransmission). None of these affect the
//! censorship/surveillance behaviours under study.
//!
//! The connection is pure logic: methods consume segments and return
//! packets to transmit plus events for the application. The host owns
//! timers and calls [`TcpConn::on_rto`].

use std::collections::VecDeque;
use std::net::Ipv4Addr;

use crate::packet::{Packet, TcpSegment};
use crate::wire::ipv4::DEFAULT_TTL;
use crate::wire::tcp::TcpFlags;

/// Maximum retransmissions before the connection gives up.
pub const MAX_RETRIES: u32 = 5;

/// Maximum payload per segment (a conventional Ethernet-ish MSS).
pub const MSS: usize = 1460;

/// `a < b` in sequence space.
#[inline]
pub fn seq_lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

/// `a <= b` in sequence space.
#[inline]
pub fn seq_le(a: u32, b: u32) -> bool {
    a == b || seq_lt(a, b)
}

/// TCP connection states (RFC 793 subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// SYN sent, awaiting SYN/ACK.
    SynSent,
    /// SYN received and SYN/ACK sent, awaiting ACK.
    SynReceived,
    /// Data transfer.
    Established,
    /// We closed first; FIN sent, not yet acknowledged.
    FinWait1,
    /// Our FIN acknowledged; awaiting the peer's FIN.
    FinWait2,
    /// Peer closed first; we may still send.
    CloseWait,
    /// Peer closed, then we sent our FIN.
    LastAck,
    /// Both sides sent FINs simultaneously.
    Closing,
    /// Fully closed (TIME_WAIT is collapsed into this state).
    Closed,
}

/// Events a connection reports to its owner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpEvent {
    /// The handshake completed.
    Connected,
    /// In-order payload bytes arrived.
    Data(Vec<u8>),
    /// The peer sent FIN (no more data will arrive).
    PeerClosed,
    /// The connection was reset by a RST segment. This is both an error path
    /// and a *measurement signal*: injected RSTs are how the GFC censors.
    Reset,
    /// Our SYN was answered with RST (connection refused).
    Refused,
    /// Retransmissions were exhausted.
    TimedOut,
    /// The connection closed cleanly in both directions.
    Closed,
}

/// A retransmittable chunk (SYN, FIN, or payload bytes).
#[derive(Debug, Clone)]
struct Chunk {
    seq: u32,
    data: Vec<u8>,
    syn: bool,
    fin: bool,
}

impl Chunk {
    fn seq_len(&self) -> u32 {
        self.data.len() as u32 + u32::from(self.syn) + u32::from(self.fin)
    }
    fn end_seq(&self) -> u32 {
        self.seq.wrapping_add(self.seq_len())
    }
}

/// One TCP connection.
#[derive(Debug)]
pub struct TcpConn {
    /// Local (address, port).
    pub local: (Ipv4Addr, u16),
    /// Remote (address, port).
    pub remote: (Ipv4Addr, u16),
    state: TcpState,
    iss: u32,
    snd_nxt: u32,
    snd_una: u32,
    rcv_nxt: u32,
    unacked: VecDeque<Chunk>,
    retries: u32,
    /// TTL stamped on outgoing packets; `None` uses the default. Servers in
    /// the stateful-mimicry experiment set this so replies die in-network.
    pub reply_ttl: Option<u8>,
    fin_sent: bool,
}

impl TcpConn {
    /// Open a connection: returns the connection in `SynSent` plus the SYN
    /// packet to transmit. `iss` is the initial send sequence number.
    pub fn connect(local: (Ipv4Addr, u16), remote: (Ipv4Addr, u16), iss: u32) -> (TcpConn, Packet) {
        let mut conn = TcpConn {
            local,
            remote,
            state: TcpState::SynSent,
            iss,
            snd_nxt: iss.wrapping_add(1),
            snd_una: iss,
            rcv_nxt: 0,
            unacked: VecDeque::new(),
            retries: 0,
            reply_ttl: None,
            fin_sent: false,
        };
        conn.unacked.push_back(Chunk {
            seq: iss,
            data: Vec::new(),
            syn: true,
            fin: false,
        });
        let syn = conn.make_packet(iss, 0, TcpFlags::syn(), Vec::new());
        (conn, syn)
    }

    /// Accept a connection from a received SYN: returns the connection in
    /// `SynReceived` plus the SYN/ACK to transmit.
    pub fn accept(
        local: (Ipv4Addr, u16),
        remote: (Ipv4Addr, u16),
        peer_seq: u32,
        iss: u32,
    ) -> (TcpConn, Packet) {
        let mut conn = TcpConn {
            local,
            remote,
            state: TcpState::SynReceived,
            iss,
            snd_nxt: iss.wrapping_add(1),
            snd_una: iss,
            rcv_nxt: peer_seq.wrapping_add(1),
            unacked: VecDeque::new(),
            retries: 0,
            reply_ttl: None,
            fin_sent: false,
        };
        conn.unacked.push_back(Chunk {
            seq: iss,
            data: Vec::new(),
            syn: true,
            fin: false,
        });
        let syn_ack = conn.make_packet(iss, conn.rcv_nxt, TcpFlags::syn_ack(), Vec::new());
        (conn, syn_ack)
    }

    /// Current state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// Whether the connection still has unacknowledged chunks (the host
    /// keeps an RTO timer armed while this is true).
    pub fn has_unacked(&self) -> bool {
        !self.unacked.is_empty()
    }

    /// Whether the connection is fully closed and can be dropped.
    pub fn is_closed(&self) -> bool {
        self.state == TcpState::Closed
    }

    fn make_packet(&self, seq: u32, ack: u32, flags: TcpFlags, payload: Vec<u8>) -> Packet {
        Packet::tcp(
            self.local.0,
            self.remote.0,
            self.local.1,
            self.remote.1,
            seq,
            ack,
            flags,
            payload,
        )
        .with_ttl(self.reply_ttl.unwrap_or(DEFAULT_TTL))
    }

    fn ack_packet(&self) -> Packet {
        self.make_packet(self.snd_nxt, self.rcv_nxt, TcpFlags::ack(), Vec::new())
    }

    /// Queue application data. Returns the packets to transmit (the data is
    /// also retained for retransmission). Only legal while the local side is
    /// open (`Established` or `CloseWait`); otherwise returns no packets.
    pub fn send(&mut self, data: &[u8]) -> Vec<Packet> {
        if !matches!(self.state, TcpState::Established | TcpState::CloseWait) || data.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for piece in data.chunks(MSS) {
            let seq = self.snd_nxt;
            self.snd_nxt = self.snd_nxt.wrapping_add(piece.len() as u32);
            self.unacked.push_back(Chunk {
                seq,
                data: piece.to_vec(),
                syn: false,
                fin: false,
            });
            out.push(self.make_packet(seq, self.rcv_nxt, TcpFlags::psh_ack(), piece.to_vec()));
        }
        out
    }

    /// Close the local side (send FIN). Returns packets to transmit.
    pub fn close(&mut self) -> Vec<Packet> {
        match self.state {
            TcpState::Established => self.state = TcpState::FinWait1,
            TcpState::CloseWait => self.state = TcpState::LastAck,
            TcpState::SynSent => {
                // Nothing on the wire worth tearing down.
                self.state = TcpState::Closed;
                self.unacked.clear();
                return Vec::new();
            }
            _ => return Vec::new(),
        }
        let seq = self.snd_nxt;
        self.snd_nxt = self.snd_nxt.wrapping_add(1);
        self.fin_sent = true;
        self.unacked.push_back(Chunk {
            seq,
            data: Vec::new(),
            syn: false,
            fin: true,
        });
        vec![self.make_packet(seq, self.rcv_nxt, TcpFlags::fin_ack(), Vec::new())]
    }

    /// Abort the connection: returns the RST to transmit (if the connection
    /// had reached a state where a RST is meaningful).
    pub fn abort(&mut self) -> Option<Packet> {
        let was = self.state;
        self.state = TcpState::Closed;
        self.unacked.clear();
        if was == TcpState::Closed {
            None
        } else {
            Some(self.make_packet(self.snd_nxt, self.rcv_nxt, TcpFlags::rst_ack(), Vec::new()))
        }
    }

    /// Retransmission timer fired. Returns packets to retransmit and any
    /// events (a [`TcpEvent::TimedOut`] when retries are exhausted).
    pub fn on_rto(&mut self) -> (Vec<Packet>, Vec<TcpEvent>) {
        if self.unacked.is_empty() || self.state == TcpState::Closed {
            return (Vec::new(), Vec::new());
        }
        self.retries += 1;
        if self.retries > MAX_RETRIES {
            self.state = TcpState::Closed;
            self.unacked.clear();
            return (Vec::new(), vec![TcpEvent::TimedOut]);
        }
        let mut out = Vec::new();
        for chunk in &self.unacked {
            let flags = if chunk.syn {
                if self.state == TcpState::SynReceived {
                    TcpFlags::syn_ack()
                } else {
                    TcpFlags::syn()
                }
            } else if chunk.fin {
                TcpFlags::fin_ack()
            } else {
                TcpFlags::psh_ack()
            };
            let ack = if self.state == TcpState::SynSent {
                0
            } else {
                self.rcv_nxt
            };
            out.push(self.make_packet(chunk.seq, ack, flags, chunk.data.clone()));
        }
        (out, Vec::new())
    }

    /// Process a received segment. Returns packets to transmit and events
    /// for the application, in order.
    pub fn on_segment(&mut self, seg: &TcpSegment) -> (Vec<Packet>, Vec<TcpEvent>) {
        let mut out = Vec::new();
        let mut events = Vec::new();

        if self.state == TcpState::Closed {
            return (out, events);
        }

        // RST handling. In SynSent a RST means the port refused us; in any
        // synchronized state it kills the connection. We accept any RST for
        // an established tuple without strict sequence checking — the GFC's
        // injected RSTs are sequence-correct in practice, and blind-RST
        // defenses are out of scope for the testbed.
        if seg.flags.has_rst() {
            let was_syn_sent = self.state == TcpState::SynSent;
            self.state = TcpState::Closed;
            self.unacked.clear();
            events.push(if was_syn_sent {
                TcpEvent::Refused
            } else {
                TcpEvent::Reset
            });
            return (out, events);
        }

        match self.state {
            TcpState::SynSent => {
                if seg.flags.has_syn() && seg.flags.has_ack() {
                    if seg.ack != self.iss.wrapping_add(1) {
                        // Wrong ACK: answer with RST per RFC 793.
                        out.push(self.make_packet(seg.ack, 0, TcpFlags::rst(), Vec::new()));
                        return (out, events);
                    }
                    self.snd_una = seg.ack;
                    self.rcv_nxt = seg.seq.wrapping_add(1);
                    self.unacked.clear();
                    self.retries = 0;
                    self.state = TcpState::Established;
                    out.push(self.ack_packet());
                    events.push(TcpEvent::Connected);
                }
                // Bare SYN (simultaneous open) is not supported; ignore.
            }
            _ => {
                // ACK processing: drop fully-acknowledged chunks.
                if seg.flags.has_ack() {
                    self.process_ack(seg.ack, &mut events);
                    if self.state == TcpState::Closed {
                        return (out, events);
                    }
                }

                // Data processing (in-order only).
                let data_len = seg.payload.len() as u32;
                let mut advanced = false;
                if data_len > 0 {
                    if seg.seq == self.rcv_nxt && self.receiving_open() {
                        self.rcv_nxt = self.rcv_nxt.wrapping_add(data_len);
                        events.push(TcpEvent::Data(seg.payload.clone()));
                        advanced = true;
                    } else {
                        // Duplicate or out-of-order: re-ACK what we have.
                        out.push(self.ack_packet());
                    }
                }

                // FIN processing.
                if seg.flags.has_fin() {
                    let fin_seq = seg.seq.wrapping_add(data_len);
                    if fin_seq == self.rcv_nxt {
                        self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
                        advanced = true;
                        events.push(TcpEvent::PeerClosed);
                        match self.state {
                            TcpState::SynReceived | TcpState::Established => {
                                self.state = TcpState::CloseWait;
                            }
                            TcpState::FinWait1 => {
                                // Our FIN not yet acked: both sides closing.
                                self.state = TcpState::Closing;
                            }
                            TcpState::FinWait2 => {
                                self.state = TcpState::Closed;
                                events.push(TcpEvent::Closed);
                            }
                            _ => {}
                        }
                    } else if seq_lt(fin_seq, self.rcv_nxt) {
                        // Retransmitted FIN: re-ACK.
                        out.push(self.ack_packet());
                    }
                }

                if advanced {
                    out.push(self.ack_packet());
                }
            }
        }

        (out, events)
    }

    fn receiving_open(&self) -> bool {
        matches!(
            self.state,
            TcpState::SynReceived | TcpState::Established | TcpState::FinWait1 | TcpState::FinWait2
        )
    }

    fn process_ack(&mut self, ack: u32, events: &mut Vec<TcpEvent>) {
        if !seq_le(ack, self.snd_nxt) {
            return; // Acks data we never sent; ignore.
        }
        let mut progressed = false;
        while let Some(front) = self.unacked.front() {
            if seq_le(front.end_seq(), ack) {
                let was_syn = front.syn;
                let was_fin = front.fin;
                self.unacked.pop_front();
                progressed = true;
                if was_syn && self.state == TcpState::SynReceived {
                    self.state = TcpState::Established;
                    events.push(TcpEvent::Connected);
                }
                if was_fin {
                    match self.state {
                        TcpState::FinWait1 => self.state = TcpState::FinWait2,
                        TcpState::Closing => {
                            self.state = TcpState::Closed;
                            events.push(TcpEvent::Closed);
                        }
                        TcpState::LastAck => {
                            self.state = TcpState::Closed;
                            events.push(TcpEvent::Closed);
                        }
                        _ => {}
                    }
                }
            } else {
                break;
            }
        }
        if progressed {
            self.snd_una = ack;
            self.retries = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const S: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn seg_of(p: &Packet) -> TcpSegment {
        p.as_tcp().expect("tcp packet").clone()
    }

    /// Drive a full handshake; returns (client, server).
    fn handshake() -> (TcpConn, TcpConn) {
        let (mut client, syn) = TcpConn::connect((C, 4000), (S, 80), 1000);
        let syn_seg = seg_of(&syn);
        assert!(syn_seg.flags.has_syn() && !syn_seg.flags.has_ack());

        let (mut server, syn_ack) = TcpConn::accept((S, 80), (C, 4000), syn_seg.seq, 9000);
        let (cl_out, cl_ev) = client.on_segment(&seg_of(&syn_ack));
        assert_eq!(cl_ev, vec![TcpEvent::Connected]);
        assert_eq!(client.state(), TcpState::Established);
        assert_eq!(cl_out.len(), 1);

        let (sv_out, sv_ev) = server.on_segment(&seg_of(&cl_out[0]));
        assert_eq!(sv_ev, vec![TcpEvent::Connected]);
        assert_eq!(server.state(), TcpState::Established);
        assert!(sv_out.is_empty());
        (client, server)
    }

    #[test]
    fn three_way_handshake() {
        handshake();
    }

    #[test]
    fn data_transfer_and_ack() {
        let (mut client, mut server) = handshake();
        let data_pkts = client.send(b"GET / HTTP/1.0\r\n\r\n");
        assert_eq!(data_pkts.len(), 1);
        assert!(client.has_unacked());
        let (sv_out, sv_ev) = server.on_segment(&seg_of(&data_pkts[0]));
        assert_eq!(
            sv_ev,
            vec![TcpEvent::Data(b"GET / HTTP/1.0\r\n\r\n".to_vec())]
        );
        assert_eq!(sv_out.len(), 1, "server ACKs");
        let (_, cl_ev) = client.on_segment(&seg_of(&sv_out[0]));
        assert!(cl_ev.is_empty());
        assert!(!client.has_unacked());
    }

    #[test]
    fn large_send_is_segmented_at_mss() {
        let (mut client, mut server) = handshake();
        let payload = vec![0x41u8; MSS * 2 + 100];
        let pkts = client.send(&payload);
        assert_eq!(pkts.len(), 3);
        let mut received = Vec::new();
        for p in &pkts {
            let (_, ev) = server.on_segment(&seg_of(p));
            for e in ev {
                if let TcpEvent::Data(d) = e {
                    received.extend_from_slice(&d);
                }
            }
        }
        assert_eq!(received, payload);
    }

    #[test]
    fn graceful_close_both_sides() {
        let (mut client, mut server) = handshake();
        // Client closes.
        let fin = client.close();
        assert_eq!(client.state(), TcpState::FinWait1);
        let (sv_out, sv_ev) = server.on_segment(&seg_of(&fin[0]));
        assert_eq!(sv_ev, vec![TcpEvent::PeerClosed]);
        assert_eq!(server.state(), TcpState::CloseWait);
        let (_, cl_ev) = client.on_segment(&seg_of(&sv_out[0]));
        assert!(cl_ev.is_empty());
        assert_eq!(client.state(), TcpState::FinWait2);
        // Server closes.
        let fin2 = server.close();
        assert_eq!(server.state(), TcpState::LastAck);
        let (cl_out, cl_ev) = client.on_segment(&seg_of(&fin2[0]));
        assert_eq!(cl_ev, vec![TcpEvent::PeerClosed, TcpEvent::Closed]);
        assert!(client.is_closed());
        let (_, sv_ev) = server.on_segment(&seg_of(&cl_out[0]));
        assert_eq!(sv_ev, vec![TcpEvent::Closed]);
        assert!(server.is_closed());
    }

    #[test]
    fn injected_rst_resets_established_connection() {
        // The censorship primitive: an on-path device injects a RST with the
        // right four-tuple and sequence number.
        let (mut client, _server) = handshake();
        let rst = TcpSegment {
            src_port: 80,
            dst_port: 4000,
            seq: 9001,
            ack: 1001,
            flags: TcpFlags::rst_ack(),
            window: 0,
            payload: Vec::new(),
        };
        let (_, ev) = client.on_segment(&rst);
        assert_eq!(ev, vec![TcpEvent::Reset]);
        assert!(client.is_closed());
    }

    #[test]
    fn rst_to_syn_is_refused() {
        let (mut client, _syn) = TcpConn::connect((C, 4000), (S, 81), 5);
        let rst = TcpSegment {
            src_port: 81,
            dst_port: 4000,
            seq: 0,
            ack: 6,
            flags: TcpFlags::rst_ack(),
            window: 0,
            payload: Vec::new(),
        };
        let (_, ev) = client.on_segment(&rst);
        assert_eq!(ev, vec![TcpEvent::Refused]);
        assert!(client.is_closed());
    }

    #[test]
    fn rto_retransmits_then_times_out() {
        let (mut client, _syn) = TcpConn::connect((C, 4000), (S, 80), 100);
        for _ in 0..MAX_RETRIES {
            let (pkts, ev) = client.on_rto();
            assert_eq!(pkts.len(), 1, "SYN retransmitted");
            assert!(seg_of(&pkts[0]).flags.has_syn());
            assert!(ev.is_empty());
        }
        let (pkts, ev) = client.on_rto();
        assert!(pkts.is_empty());
        assert_eq!(ev, vec![TcpEvent::TimedOut]);
        assert!(client.is_closed());
    }

    #[test]
    fn retransmission_recovers_lost_data() {
        let (mut client, mut server) = handshake();
        let pkts = client.send(b"hello");
        // Pretend the packet was lost; RTO fires.
        let (retx, _) = client.on_rto();
        assert_eq!(retx.len(), 1);
        assert_eq!(seg_of(&retx[0]).payload, seg_of(&pkts[0]).payload);
        let (sv_out, sv_ev) = server.on_segment(&seg_of(&retx[0]));
        assert_eq!(sv_ev, vec![TcpEvent::Data(b"hello".to_vec())]);
        // Duplicate of the original arrives late: server re-ACKs, no event.
        let (dup_out, dup_ev) = server.on_segment(&seg_of(&pkts[0]));
        assert!(dup_ev.is_empty());
        assert_eq!(dup_out.len(), 1);
        let _ = sv_out;
    }

    #[test]
    fn abort_emits_rst_once() {
        let (mut client, _server) = handshake();
        let rst = client.abort().expect("rst");
        assert!(seg_of(&rst).flags.has_rst());
        assert!(client.is_closed());
        assert!(client.abort().is_none(), "second abort is a no-op");
    }

    #[test]
    fn reply_ttl_override_applies_to_all_output() {
        let (mut server, syn_ack) = TcpConn::accept((S, 80), (C, 4000), 0, 50);
        assert_eq!(syn_ack.ttl, DEFAULT_TTL);
        server.reply_ttl = Some(3);
        // Complete handshake.
        let ack = TcpSegment {
            src_port: 4000,
            dst_port: 80,
            seq: 1,
            ack: 51,
            flags: TcpFlags::ack(),
            window: 65535,
            payload: Vec::new(),
        };
        let _ = server.on_segment(&ack);
        assert_eq!(server.state(), TcpState::Established);
        let pkts = server.send(b"ttl-limited reply");
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].ttl, 3, "server reply carries the limited TTL");
    }

    #[test]
    fn send_outside_established_is_noop() {
        let (mut client, _syn) = TcpConn::connect((C, 1), (S, 2), 0);
        assert!(client.send(b"too early").is_empty());
        let mut closed = client;
        let _ = closed.abort();
        assert!(closed.send(b"too late").is_empty());
    }

    #[test]
    fn close_in_syn_sent_just_closes() {
        let (mut client, _syn) = TcpConn::connect((C, 1), (S, 2), 0);
        assert!(client.close().is_empty());
        assert!(client.is_closed());
    }

    #[test]
    fn wrong_ack_in_syn_sent_gets_rst() {
        let (mut client, _syn) = TcpConn::connect((C, 4000), (S, 80), 100);
        let bad = TcpSegment {
            src_port: 80,
            dst_port: 4000,
            seq: 7,
            ack: 999, // should be 101
            flags: TcpFlags::syn_ack(),
            window: 0,
            payload: Vec::new(),
        };
        let (out, ev) = client.on_segment(&bad);
        assert!(ev.is_empty());
        assert_eq!(out.len(), 1);
        assert!(seg_of(&out[0]).flags.has_rst());
        assert_eq!(
            client.state(),
            TcpState::SynSent,
            "still waiting for the real SYN/ACK"
        );
    }

    #[test]
    fn simultaneous_close() {
        let (mut client, mut server) = handshake();
        let cfin = client.close();
        let sfin = server.close();
        // Each side receives the other's FIN before the ACK of its own.
        let (cl_out, cl_ev) = client.on_segment(&seg_of(&sfin[0]));
        assert_eq!(cl_ev, vec![TcpEvent::PeerClosed]);
        assert_eq!(client.state(), TcpState::Closing);
        let (sv_out, sv_ev) = server.on_segment(&seg_of(&cfin[0]));
        assert_eq!(sv_ev, vec![TcpEvent::PeerClosed]);
        // Now the crossed ACKs arrive.
        let (_, cl_ev) = client.on_segment(&seg_of(&sv_out[0]));
        assert_eq!(cl_ev, vec![TcpEvent::Closed]);
        let (_, sv_ev) = server.on_segment(&seg_of(&cl_out[0]));
        assert_eq!(sv_ev, vec![TcpEvent::Closed]);
        assert!(client.is_closed() && server.is_closed());
    }

    #[test]
    fn seq_compare_wraps() {
        assert!(seq_lt(u32::MAX, 0));
        assert!(seq_lt(u32::MAX - 10, 5));
        assert!(!seq_lt(5, u32::MAX - 10));
        assert!(seq_le(7, 7));
    }
}
