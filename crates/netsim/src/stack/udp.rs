//! UDP port bookkeeping.
//!
//! UDP needs no state machine; the stack only tracks which local ports are
//! bound and who owns them, so incoming datagrams can be demultiplexed to
//! the right task or service.

use std::collections::HashMap;

/// Who owns a bound UDP port on a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UdpOwner {
    /// A host task (index into the host's task table).
    Task(usize),
    /// A UDP service (index into the host's UDP service table).
    Service(usize),
}

/// The set of bound UDP ports on one host.
#[derive(Debug, Default)]
pub struct UdpBindings {
    ports: HashMap<u16, UdpOwner>,
}

impl UdpBindings {
    /// Empty binding table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind `port` to `owner`. Returns `false` if the port was taken.
    pub fn bind(&mut self, port: u16, owner: UdpOwner) -> bool {
        use std::collections::hash_map::Entry;
        match self.ports.entry(port) {
            Entry::Occupied(_) => false,
            Entry::Vacant(v) => {
                v.insert(owner);
                true
            }
        }
    }

    /// Release `port`.
    pub fn unbind(&mut self, port: u16) {
        self.ports.remove(&port);
    }

    /// Who owns `port`, if bound.
    pub fn owner(&self, port: u16) -> Option<UdpOwner> {
        self.ports.get(&port).copied()
    }

    /// Whether `port` is bound.
    pub fn is_bound(&self, port: u16) -> bool {
        self.ports.contains_key(&port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_demux() {
        let mut b = UdpBindings::new();
        assert!(b.bind(53, UdpOwner::Service(0)));
        assert!(b.bind(5353, UdpOwner::Task(2)));
        assert_eq!(b.owner(53), Some(UdpOwner::Service(0)));
        assert_eq!(b.owner(5353), Some(UdpOwner::Task(2)));
        assert_eq!(b.owner(9999), None);
    }

    #[test]
    fn double_bind_rejected() {
        let mut b = UdpBindings::new();
        assert!(b.bind(53, UdpOwner::Service(0)));
        assert!(!b.bind(53, UdpOwner::Task(1)));
        assert_eq!(b.owner(53), Some(UdpOwner::Service(0)));
    }

    #[test]
    fn unbind_frees_port() {
        let mut b = UdpBindings::new();
        assert!(b.bind(53, UdpOwner::Service(0)));
        b.unbind(53);
        assert!(!b.is_bound(53));
        assert!(b.bind(53, UdpOwner::Task(7)));
    }
}
