//! Packet capture.
//!
//! The simulator can record every packet accepted onto a link, together with
//! its endpoints and timestamp. Experiments use captures both as ground
//! truth ("what actually crossed the wire") and as the input replayed into
//! offline analyses.

use std::net::Ipv4Addr;

use crate::node::{IfaceId, NodeId};
use crate::packet::Packet;
use crate::time::SimTime;

/// One recorded packet transmission.
#[derive(Debug, Clone)]
pub struct CapturedPacket {
    /// When the packet was accepted onto the link.
    pub time: SimTime,
    /// Transmitting node.
    pub from_node: NodeId,
    /// Transmitting interface.
    pub from_iface: IfaceId,
    /// Receiving node (link peer).
    pub to_node: NodeId,
    /// Receiving interface.
    pub to_iface: IfaceId,
    /// The packet.
    pub packet: Packet,
}

/// An in-memory packet capture.
#[derive(Debug, Default)]
pub struct Capture {
    records: Vec<CapturedPacket>,
}

impl Capture {
    /// An empty capture.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a transmission.
    pub fn record(&mut self, rec: CapturedPacket) {
        self.records.push(rec);
    }

    /// All records, in transmission order.
    pub fn records(&self) -> &[CapturedPacket] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the capture is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Discard all records.
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Records transmitted by `node`.
    pub fn sent_by(&self, node: NodeId) -> impl Iterator<Item = &CapturedPacket> {
        self.records.iter().filter(move |r| r.from_node == node)
    }

    /// Records whose packet source address is `src`.
    pub fn from_addr(&self, src: Ipv4Addr) -> impl Iterator<Item = &CapturedPacket> {
        self.records.iter().filter(move |r| r.packet.src == src)
    }

    /// Records whose packet destination address is `dst`.
    pub fn to_addr(&self, dst: Ipv4Addr) -> impl Iterator<Item = &CapturedPacket> {
        self.records.iter().filter(move |r| r.packet.dst == dst)
    }

    /// Total wire bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.records
            .iter()
            .map(|r| r.packet.wire_len() as u64)
            .sum()
    }

    /// Render the capture as text, one packet per line, using `names` to
    /// resolve node ids (indexed by `NodeId.0`).
    pub fn render(&self, names: &[String]) -> String {
        let mut out = String::new();
        for r in &self.records {
            let from = names.get(r.from_node.0).map(String::as_str).unwrap_or("?");
            let to = names.get(r.to_node.0).map(String::as_str).unwrap_or("?");
            out.push_str(&format!(
                "{} {}[{}] -> {}[{}]  {}\n",
                r.time,
                from,
                r.from_iface.0,
                to,
                r.to_iface.0,
                r.packet.summary()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::tcp::TcpFlags;

    fn rec(t: u64, from: usize, src: [u8; 4], dst: [u8; 4]) -> CapturedPacket {
        CapturedPacket {
            time: SimTime::from_nanos(t),
            from_node: NodeId(from),
            from_iface: IfaceId(0),
            to_node: NodeId(9),
            to_iface: IfaceId(1),
            packet: Packet::tcp(src.into(), dst.into(), 1, 2, 0, 0, TcpFlags::syn(), vec![]),
        }
    }

    #[test]
    fn filters() {
        let mut cap = Capture::new();
        cap.record(rec(1, 0, [10, 0, 0, 1], [10, 0, 0, 2]));
        cap.record(rec(2, 1, [10, 0, 0, 2], [10, 0, 0, 1]));
        cap.record(rec(3, 0, [10, 0, 0, 1], [10, 0, 0, 3]));
        assert_eq!(cap.len(), 3);
        assert_eq!(cap.sent_by(NodeId(0)).count(), 2);
        assert_eq!(cap.from_addr([10, 0, 0, 1].into()).count(), 2);
        assert_eq!(cap.to_addr([10, 0, 0, 3].into()).count(), 1);
    }

    #[test]
    fn total_bytes_counts_wire_length() {
        let mut cap = Capture::new();
        cap.record(rec(1, 0, [1, 1, 1, 1], [2, 2, 2, 2]));
        assert_eq!(cap.total_bytes(), 40); // 20 IP + 20 TCP, no payload
    }

    #[test]
    fn render_resolves_names() {
        let mut cap = Capture::new();
        cap.record(rec(1_000_000, 0, [1, 1, 1, 1], [2, 2, 2, 2]));
        let text = cap.render(&["alice".to_string()]);
        assert!(text.contains("alice[0]"));
        assert!(text.contains("?[1]"), "unknown receiver renders as ?");
        cap.clear();
        assert!(cap.is_empty());
    }
}
