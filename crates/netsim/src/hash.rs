//! A fast, non-cryptographic hasher for per-packet map lookups.
//!
//! The monitors key maps by flow tuple on every segment; `std`'s default
//! SipHash costs more than the work it guards there. This is the rustc-hash
//! / FxHash construction (word-at-a-time multiply-rotate). It is not
//! DoS-resistant — fine in a simulator whose inputs we generate ourselves;
//! do not use it on attacker-controlled keys outside that setting.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`]. Construct with `FxHashMap::default()`.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// A `HashSet` using [`FxHasher`]. Construct with `FxHashSet::default()`.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash state: one word, folded multiplicatively.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Length in the top byte so "ab\0" and "ab" diverge.
            tail[7] = rest.len() as u8;
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(u64::from(i));
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(hash_of(&(1u32, 2u16, "abc")), hash_of(&(1u32, 2u16, "abc")));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"ab"), hash_of(&"ab\0"));
        assert_ne!(hash_of(&[1u8, 2]), hash_of(&[2u8, 1]));
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut map: FxHashMap<(u32, u16), &str> = FxHashMap::default();
        for i in 0..1000u32 {
            map.insert((i, (i % 7) as u16), "v");
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map.get(&(13, 6)), Some(&"v"));
        let mut set: FxHashSet<u64> = FxHashSet::default();
        set.extend(0..100u64);
        assert!(set.contains(&99) && !set.contains(&100));
    }

    #[test]
    fn spreads_sequential_keys() {
        // Weak but load-bearing: sequential flow tuples must not collapse
        // into a handful of buckets.
        let hashes: FxHashSet<u64> = (0..4096u32).map(|i| hash_of(&i)).collect();
        assert_eq!(hashes.len(), 4096);
    }
}
