//! Topology construction helpers.
//!
//! [`TopologyBuilder`] wraps a [`Simulator`] and takes care of the
//! mechanical parts of wiring: allocating switch ports, installing host
//! routes, and attaching tap monitors. The paper's Figure 1 testbed
//! (client — switch — server, with censor and MVR instances watching the
//! switch) is three calls.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use crate::addr::Cidr;
use crate::error::NetsimError;
use crate::host::{Host, HOST_IFACE};
use crate::link::LinkConfig;
use crate::node::{IfaceId, Node, NodeId};
use crate::sim::Simulator;
use crate::switch::Switch;

/// Builds a simulator topology incrementally.
pub struct TopologyBuilder {
    sim: Simulator,
    next_port: HashMap<NodeId, usize>,
}

impl TopologyBuilder {
    /// Start a topology with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        TopologyBuilder {
            sim: Simulator::new(seed),
            next_port: HashMap::new(),
        }
    }

    /// Record every packet crossing any link.
    pub fn enable_capture(&mut self) {
        self.sim.enable_capture();
    }

    /// Add a host node.
    pub fn add_host(&mut self, host: Host) -> NodeId {
        self.sim.add_node(Box::new(host))
    }

    /// Add a switch (or router) node.
    pub fn add_switch(&mut self, switch: Switch) -> NodeId {
        self.sim.add_node(Box::new(switch))
    }

    /// Add an arbitrary node (passive monitors, custom middleboxes).
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        self.sim.add_node(node)
    }

    fn alloc_port(&mut self, switch: NodeId) -> IfaceId {
        let port = self.next_port.entry(switch).or_insert(0);
        let iface = IfaceId(*port);
        *port += 1;
        iface
    }

    /// Wire a host to a switch port and install a host route (/32) for it.
    /// Returns the switch port used.
    pub fn attach_host(
        &mut self,
        host: NodeId,
        host_ip: Ipv4Addr,
        switch: NodeId,
        config: LinkConfig,
    ) -> Result<IfaceId, NetsimError> {
        let port = self.alloc_port(switch);
        self.sim.wire(host, HOST_IFACE, switch, port, config)?;
        if let Some(sw) = self.sim.node_mut::<Switch>(switch) {
            sw.add_route(Cidr::host(host_ip), port);
        }
        Ok(port)
    }

    /// Wire a monitor node to a switch tap port: the monitor receives a
    /// copy of all forwarded traffic and may inject packets (they are
    /// routed normally). Returns the switch port used.
    pub fn attach_tap(
        &mut self,
        monitor: NodeId,
        switch: NodeId,
        config: LinkConfig,
    ) -> Result<IfaceId, NetsimError> {
        let port = self.alloc_port(switch);
        self.sim.wire(monitor, HOST_IFACE, switch, port, config)?;
        if let Some(sw) = self.sim.node_mut::<Switch>(switch) {
            sw.add_tap(port);
        }
        Ok(port)
    }

    /// Wire two switches together. Returns `(port on a, port on b)`; add
    /// routes across the trunk with [`TopologyBuilder::route`].
    pub fn trunk(
        &mut self,
        a: NodeId,
        b: NodeId,
        config: LinkConfig,
    ) -> Result<(IfaceId, IfaceId), NetsimError> {
        let pa = self.alloc_port(a);
        let pb = self.alloc_port(b);
        self.sim.wire(a, pa, b, pb, config)?;
        Ok((pa, pb))
    }

    /// Add a prefix route on a switch.
    pub fn route(&mut self, switch: NodeId, prefix: Cidr, out: IfaceId) {
        if let Some(sw) = self.sim.node_mut::<Switch>(switch) {
            sw.add_route(prefix, out);
        }
    }

    /// Mutable access to the simulator under construction (e.g. to spawn
    /// tasks on hosts).
    pub fn sim_mut(&mut self) -> &mut Simulator {
        &mut self.sim
    }

    /// Finish building and return the simulator.
    pub fn finish(self) -> Simulator {
        self.sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;
    use crate::time::{SimDuration, SimTime};
    use crate::wire::tcp::TcpFlags;

    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 2);
    const SERVER: Ipv4Addr = Ipv4Addr::new(10, 0, 2, 2);
    const MONITOR: Ipv4Addr = Ipv4Addr::new(10, 0, 9, 9);

    #[test]
    fn figure1_testbed_shape() {
        // client -- switch -- server, with a monitor on a tap.
        let mut topo = TopologyBuilder::new(5);
        topo.enable_capture();
        let client = topo.add_host(Host::new("client", CLIENT));
        let server = topo.add_host(Host::new("server", SERVER));
        let monitor = topo.add_host(Host::new("monitor", MONITOR));
        let sw = topo.add_switch(Switch::new("ovs"));
        topo.attach_host(client, CLIENT, sw, LinkConfig::default())
            .expect("client");
        topo.attach_host(server, SERVER, sw, LinkConfig::default())
            .expect("server");
        topo.attach_tap(monitor, sw, LinkConfig::default())
            .expect("tap");
        let mut sim = topo.finish();

        let syn = Packet::tcp(CLIENT, SERVER, 1234, 80, 0, 0, TcpFlags::syn(), vec![]);
        sim.send_from(client, HOST_IFACE, syn, SimTime::ZERO)
            .expect("send");
        sim.run_for(SimDuration::from_secs(2)).expect("run");

        let cap = sim.capture().expect("capture");
        // The monitor saw the SYN (tap copy) and the server's RST (closed
        // port), i.e. 2 tapped packets; plus the direct copies.
        let monitor_copies = cap
            .records()
            .iter()
            .filter(|r| r.to_node == monitor)
            .count();
        assert_eq!(monitor_copies, 2, "tap mirrors both directions");
    }

    #[test]
    fn trunked_switches_route_across() {
        let mut topo = TopologyBuilder::new(6);
        let client = topo.add_host(Host::new("client", CLIENT));
        let server = topo.add_host(Host::new("server", SERVER));
        let sw1 = topo.add_switch(Switch::new("sw1"));
        let sw2 = topo.add_switch(Switch::new("sw2"));
        topo.attach_host(client, CLIENT, sw1, LinkConfig::default())
            .expect("c");
        topo.attach_host(server, SERVER, sw2, LinkConfig::default())
            .expect("s");
        let (p1, p2) = topo.trunk(sw1, sw2, LinkConfig::default()).expect("trunk");
        topo.route(sw1, Cidr::slash24(SERVER), p1);
        topo.route(sw2, Cidr::slash24(CLIENT), p2);
        topo.enable_capture();
        let mut sim = topo.finish();

        let ping = Packet::icmp(
            CLIENT,
            SERVER,
            crate::wire::icmp::IcmpKind::EchoRequest { ident: 9, seq: 1 },
            vec![],
        );
        sim.send_from(client, HOST_IFACE, ping, SimTime::ZERO)
            .expect("send");
        sim.run_for(SimDuration::from_secs(2)).expect("run");
        let cap = sim.capture().expect("capture");
        // Echo reply made it all the way back to the client.
        let reply_back = cap
            .records()
            .iter()
            .any(|r| r.to_node == client && r.packet.as_icmp().is_some());
        assert!(
            reply_back,
            "reply crossed both switches:\n{}",
            cap.render(sim.node_names())
        );
    }
}
