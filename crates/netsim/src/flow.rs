//! Flow vocabulary types and the arena-backed flow table.
//!
//! Every crate that tracks per-flow state used to define its own
//! (src, dst, sport, dport, proto) struct and its own
//! `HashMap<key, state>`. This module is the one shared vocabulary:
//!
//! * [`FlowKey`] — the canonical *bidirectional* connection identifier
//!   (endpoints ordered, so both directions hash to the same key);
//! * [`FlowTuple`] — the *directional* five-tuple, for records that care
//!   which side spoke (flow metadata, MVR trace dedup);
//! * [`FlowId`] — a copyable generational handle into a [`FlowTable`];
//! * [`FlowTable`] — a slab-arena flow table: one hash lookup at flow
//!   setup, index dereferences afterwards, O(1) oldest-first eviction.
//!
//! ## Handle-invalidation rules
//!
//! A [`FlowId`] is valid from the [`FlowTable::insert`] that issued it
//! until the flow is removed or evicted. After that every copy of the
//! handle goes stale: [`FlowTable::get`] returns `None`, and a removal
//! through it is a no-op. Slot indices are recycled but generations are
//! not, so a stale handle can never read the slot's next occupant.
//! Dense side tables indexed by [`FlowId::index`] must store the
//! generation alongside and compare via [`FlowId::generation`].

use std::net::Ipv4Addr;

use crate::hash::FxHashMap;
use crate::packet::{Packet, TcpSegment};
use crate::slab::{Slab, SlabKey};

/// Canonical flow identifier: endpoint pair ordered so both directions map
/// to the same key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// Lower endpoint (by (ip, port) ordering).
    pub lo: (Ipv4Addr, u16),
    /// Higher endpoint.
    pub hi: (Ipv4Addr, u16),
}

impl FlowKey {
    /// Build from a packet's endpoints (TCP only).
    pub fn of(pkt: &Packet, seg: &TcpSegment) -> FlowKey {
        FlowKey::from_endpoints((pkt.src, seg.src_port), (pkt.dst, seg.dst_port))
    }

    /// Build from two unordered endpoints.
    pub fn from_endpoints(a: (Ipv4Addr, u16), b: (Ipv4Addr, u16)) -> FlowKey {
        if a <= b {
            FlowKey { lo: a, hi: b }
        } else {
            FlowKey { lo: b, hi: a }
        }
    }
}

/// Directional five-tuple: who spoke to whom, and over what protocol.
///
/// Unlike [`FlowKey`] this is *not* canonicalized — the two directions of
/// one connection are two distinct tuples. Use it for records where the
/// direction is the point (flow metadata, per-direction trace dedup).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowTuple {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Source transport port (0 when the packet has none).
    pub src_port: u16,
    /// Destination transport port (0 when the packet has none).
    pub dst_port: u16,
    /// IP protocol number.
    pub protocol: u8,
}

impl FlowTuple {
    /// The packet's directional tuple, portless bodies reading as port 0.
    pub fn of_packet(pkt: &Packet) -> FlowTuple {
        FlowTuple {
            src: pkt.src,
            dst: pkt.dst,
            src_port: pkt.src_port().unwrap_or(0),
            dst_port: pkt.dst_port().unwrap_or(0),
            protocol: pkt.body.protocol().number(),
        }
    }

    /// The canonical (direction-erased) key for this tuple.
    pub fn canonical(&self) -> FlowKey {
        FlowKey::from_endpoints((self.src, self.src_port), (self.dst, self.dst_port))
    }
}

/// Copyable generational handle to a [`FlowTable`] entry: 8 bytes, valid
/// until the flow is removed or evicted, `None`-safe afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId {
    index: u32,
    gen: u32,
}

impl FlowId {
    /// The dense slot index — stable for the flow's lifetime, reused after
    /// removal. Side tables indexed by it must also check
    /// [`FlowId::generation`].
    pub fn index(&self) -> usize {
        self.index as usize
    }

    /// The slot generation when this handle was issued.
    pub fn generation(&self) -> u32 {
        self.gen
    }

    fn to_key<V>(self) -> SlabKey<FlowSlot<V>> {
        SlabKey::from_parts(self.index, self.gen)
    }

    fn of_key<V>(key: SlabKey<FlowSlot<V>>) -> FlowId {
        FlowId {
            index: key.index() as u32,
            gen: key.generation(),
        }
    }
}

/// One arena slot: the flow's key and value plus intrusive creation-order
/// links (oldest-first, for O(1) eviction).
#[derive(Debug)]
struct FlowSlot<V> {
    key: FlowKey,
    value: V,
    prev: Option<FlowId>,
    next: Option<FlowId>,
}

/// Arena-backed flow table: dense slab storage for per-flow state, one
/// hash map from [`FlowKey`] to [`FlowId`] consulted only at flow setup
/// and teardown, and an intrusive creation-order list so the table evicts
/// its oldest flow in O(1) when full.
///
/// All per-packet operations after setup are index dereferences
/// ([`FlowTable::get_mut`] by handle); nothing on that path allocates once
/// the slab has warmed to its high-water mark.
#[derive(Debug)]
pub struct FlowTable<V> {
    slots: Slab<FlowSlot<V>>,
    index: FxHashMap<FlowKey, FlowId>,
    head: Option<FlowId>,
    tail: Option<FlowId>,
    capacity: usize,
    created: u64,
    evicted: u64,
}

impl<V> FlowTable<V> {
    /// An empty table that evicts its oldest flow once `capacity` flows
    /// are live. A `capacity` of 0 is treated as unbounded.
    pub fn new(capacity: usize) -> FlowTable<V> {
        FlowTable {
            slots: Slab::new(),
            index: FxHashMap::default(),
            head: None,
            tail: None,
            capacity: if capacity == 0 { usize::MAX } else { capacity },
            created: 0,
            evicted: 0,
        }
    }

    /// The eviction threshold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The handle for `key`, if the flow is live.
    pub fn lookup(&self, key: &FlowKey) -> Option<FlowId> {
        self.index.get(key).copied()
    }

    /// Insert a new flow, returning its handle plus the oldest flow (with
    /// its now-stale handle) if the table was full and had to evict. If
    /// `key` is already live its old entry is replaced (counted as a
    /// removal, not an eviction).
    pub fn insert(&mut self, key: FlowKey, value: V) -> (FlowId, Option<(FlowId, FlowKey, V)>) {
        self.remove_key(&key);
        let mut evicted = None;
        if self.slots.len() >= self.capacity {
            evicted = self.evict_oldest();
        }
        let prev = self.tail;
        let id = FlowId::of_key(self.slots.insert(FlowSlot {
            key,
            value,
            prev,
            next: None,
        }));
        match prev {
            Some(t) => {
                if let Some(slot) = self.slots.get_mut(t.to_key()) {
                    slot.next = Some(id);
                }
            }
            None => self.head = Some(id),
        }
        self.tail = Some(id);
        self.index.insert(key, id);
        self.created += 1;
        (id, evicted)
    }

    /// Shared access to the state behind `id` (`None` if stale).
    pub fn get(&self, id: FlowId) -> Option<&V> {
        self.slots.get(id.to_key()).map(|slot| &slot.value)
    }

    /// Mutable access to the state behind `id` (`None` if stale).
    pub fn get_mut(&mut self, id: FlowId) -> Option<&mut V> {
        self.slots.get_mut(id.to_key()).map(|slot| &mut slot.value)
    }

    /// The key behind `id` (`None` if stale).
    pub fn key_of(&self, id: FlowId) -> Option<FlowKey> {
        self.slots.get(id.to_key()).map(|slot| slot.key)
    }

    /// Remove the flow behind `id`. Stale handles are a no-op.
    pub fn remove(&mut self, id: FlowId) -> Option<(FlowKey, V)> {
        let slot = self.slots.remove(id.to_key())?;
        match slot.prev {
            Some(p) => {
                if let Some(prev) = self.slots.get_mut(p.to_key()) {
                    prev.next = slot.next;
                }
            }
            None => self.head = slot.next,
        }
        match slot.next {
            Some(n) => {
                if let Some(next) = self.slots.get_mut(n.to_key()) {
                    next.prev = slot.prev;
                }
            }
            None => self.tail = slot.prev,
        }
        self.index.remove(&slot.key);
        Some((slot.key, slot.value))
    }

    /// Remove the flow for `key`, if live.
    pub fn remove_key(&mut self, key: &FlowKey) -> Option<(FlowKey, V)> {
        let id = self.lookup(key)?;
        self.remove(id)
    }

    /// The oldest live flow — the next eviction candidate.
    pub fn oldest(&self) -> Option<FlowId> {
        self.head
    }

    /// Evict the oldest flow, returning it with its now-stale handle.
    pub fn evict_oldest(&mut self) -> Option<(FlowId, FlowKey, V)> {
        let id = self.head?;
        let (key, value) = self.remove(id)?;
        self.evicted += 1;
        Some((id, key, value))
    }

    /// Number of live flows.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no flows are live.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Flows ever inserted.
    pub fn created(&self) -> u64 {
        self.created
    }

    /// Flows removed by capacity eviction (a subset of all removals).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Total slab slots (live + free): bounded by the live high-water
    /// mark, never by total churn.
    pub fn slab_size(&self) -> usize {
        self.slots.slab_size()
    }

    /// Approximate bytes of backing storage: slab slots plus the setup
    /// hash index. The per-flow memory-budget accounting used by the
    /// scale experiment; excludes heap owned by `V`'s fields.
    pub fn approx_bytes(&self) -> usize {
        self.slots.slot_bytes()
            + self.index.capacity() * std::mem::size_of::<(FlowKey, FlowId, u64)>()
    }

    /// Iterate over live flows in slot order (deterministic, not
    /// creation order).
    pub fn iter(&self) -> impl Iterator<Item = (FlowId, &FlowKey, &V)> {
        self.slots
            .iter()
            .map(|(k, slot)| (FlowId::of_key(k), &slot.key, &slot.value))
    }

    /// Walk the creation-order list and count entries — O(n), for tests
    /// asserting the intrusive links agree with the slab.
    pub fn linked_len(&self) -> usize {
        let mut n = 0;
        let mut cursor = self.head;
        while let Some(id) = cursor {
            n += 1;
            cursor = self.slots.get(id.to_key()).and_then(|slot| slot.next);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    fn key(n: u32) -> FlowKey {
        FlowKey::from_endpoints(
            (Ipv4Addr::new(10, 0, (n >> 8) as u8, n as u8), 40_000),
            (Ipv4Addr::new(10, 1, 0, 1), 80),
        )
    }

    #[test]
    fn canonical_key_is_direction_free() {
        let pkt = Packet::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            4000,
            80,
            0,
            0,
            crate::wire::tcp::TcpFlags::syn(),
            vec![],
        );
        let rev = Packet::tcp(
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(10, 0, 0, 1),
            80,
            4000,
            0,
            0,
            crate::wire::tcp::TcpFlags::syn(),
            vec![],
        );
        let seg = pkt.as_tcp().expect("tcp");
        let seg_rev = rev.as_tcp().expect("tcp");
        assert_eq!(FlowKey::of(&pkt, seg), FlowKey::of(&rev, seg_rev));
        let fwd = FlowTuple::of_packet(&pkt);
        let bwd = FlowTuple::of_packet(&rev);
        assert_ne!(fwd, bwd, "tuples keep direction");
        assert_eq!(fwd.canonical(), bwd.canonical());
        assert_eq!(fwd.protocol, 6);
    }

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let mut t: FlowTable<u64> = FlowTable::new(0);
        let (a, ev) = t.insert(key(1), 11);
        assert!(ev.is_none());
        let (b, _) = t.insert(key(2), 22);
        assert_eq!(t.lookup(&key(1)), Some(a));
        assert_eq!(t.get(a), Some(&11));
        *t.get_mut(b).expect("live") += 1;
        assert_eq!(t.get(b), Some(&23));
        assert_eq!(t.key_of(a), Some(key(1)));
        assert_eq!(t.remove(a), Some((key(1), 11)));
        assert_eq!(t.get(a), None, "handle dies with the flow");
        assert_eq!(t.lookup(&key(1)), None);
        assert_eq!(t.remove(a), None, "stale removal is a no-op");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn eviction_is_oldest_first_and_counted() {
        let mut t: FlowTable<u32> = FlowTable::new(3);
        let (first, _) = t.insert(key(0), 0);
        for n in 1..3 {
            t.insert(key(n), n);
        }
        let (_, evicted) = t.insert(key(3), 3);
        assert_eq!(evicted, Some((first, key(0), 0)), "oldest flow evicted");
        assert_eq!(t.get(first), None, "evicted handle is stale");
        assert_eq!(t.len(), 3);
        assert_eq!(t.evicted(), 1);
        assert_eq!(t.created(), 4);
    }

    #[test]
    fn stale_handles_never_alias_recycled_slots() {
        let mut t: FlowTable<u32> = FlowTable::new(0);
        let (a, _) = t.insert(key(1), 1);
        t.remove(a);
        let (b, _) = t.insert(key(2), 2);
        assert_eq!(b.index(), a.index(), "slot recycled");
        assert_ne!(b.generation(), a.generation());
        assert_eq!(t.get(a), None);
        assert_eq!(t.get(b), Some(&2));
    }

    /// The satellite churn test: run 100k flows through a capacity-bounded
    /// table with random removals and check that every piece of
    /// bookkeeping — hash index, intrusive order list, slab occupancy,
    /// created/evicted counters — exactly equals the live-flow ground
    /// truth at the end, and the slab never outgrew the live peak.
    #[test]
    fn hundred_k_churn_bookkeeping_equals_live_flows() {
        const FLOWS: u32 = 100_000;
        const CAPACITY: usize = 8_192;
        let mut t: FlowTable<u32> = FlowTable::new(CAPACITY);
        let mut rng = SimRng::seed_from_u64(0xF10A_2026);
        let mut live: Vec<(FlowKey, FlowId)> = Vec::new();
        let mut removed = 0u64;
        for n in 0..FLOWS {
            let k = key(n);
            let (id, evicted) = t.insert(k, n);
            if let Some((_, ek, _)) = evicted {
                let pos = live
                    .iter()
                    .position(|(lk, _)| *lk == ek)
                    .expect("evicted flow was live");
                live.remove(pos);
            }
            live.push((k, id));
            // Remove a random live flow every third insert.
            if n % 3 == 0 && !live.is_empty() {
                let pos = (rng.next_u64() % live.len() as u64) as usize;
                let (k, id) = live.remove(pos);
                let (gone_k, _) = t.remove(id).expect("live handle removes");
                assert_eq!(gone_k, k);
                removed += 1;
            }
        }
        assert_eq!(t.len(), live.len());
        assert_eq!(t.linked_len(), live.len(), "order list matches slab");
        assert_eq!(t.iter().count(), live.len(), "iteration matches slab");
        assert_eq!(
            t.created(),
            t.evicted() + removed + t.len() as u64,
            "every created flow is evicted, removed, or live"
        );
        assert!(t.len() <= CAPACITY);
        assert!(
            t.slab_size() <= CAPACITY,
            "slab bounded by capacity, got {}",
            t.slab_size()
        );
        for (k, id) in &live {
            assert_eq!(t.lookup(k), Some(*id));
            assert_eq!(t.key_of(*id), Some(*k));
        }
        // Drain through eviction only and re-check the ledger.
        while t.evict_oldest().is_some() {}
        assert!(t.is_empty());
        assert_eq!(t.linked_len(), 0);
        assert_eq!(t.created(), t.evicted() + removed);
    }

    #[test]
    fn duplicate_insert_replaces_without_leaking() {
        let mut t: FlowTable<u32> = FlowTable::new(4);
        let (a, _) = t.insert(key(1), 1);
        let (b, _) = t.insert(key(1), 2);
        assert_ne!(a, b);
        assert_eq!(t.len(), 1);
        assert_eq!(t.linked_len(), 1);
        assert_eq!(t.get(a), None, "replaced handle goes stale");
        assert_eq!(t.get(b), Some(&2));
        assert_eq!(t.evicted(), 0, "replacement is not an eviction");
    }
}
