//! The switch/router node.
//!
//! Plays the role of the Open vSwitch box in the paper's Figure 1 testbed:
//! it forwards packets between ports by longest-prefix match on the
//! destination address, and can mirror every forwarded packet to *tap*
//! ports, where passive monitors (the censor IDS and the surveillance MVR)
//! sit. In *router mode* it also decrements TTL and emits ICMP Time
//! Exceeded, which is what makes the paper's TTL-limited replies (§4.1,
//! Fig 3b) observable.

use std::any::Any;

use crate::addr::Cidr;
use crate::node::{IfaceId, Node, NodeCtx};
use crate::packet::Packet;
use crate::wire::icmp::{IcmpKind, IcmpRepr};
use crate::wire::ipv4::DEFAULT_TTL;

/// A forwarding table entry.
#[derive(Debug, Clone, Copy)]
struct Route {
    prefix: Cidr,
    out: IfaceId,
}

/// Counters the switch maintains, useful for assertions in tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct SwitchStats {
    /// Packets forwarded to a routed port.
    pub forwarded: u64,
    /// Packets dropped for lack of a route.
    pub no_route: u64,
    /// Packets dropped because TTL reached zero (router mode).
    pub ttl_expired: u64,
    /// Copies delivered to tap ports.
    pub tapped: u64,
}

/// A prefix-routing switch with tap (mirror) ports.
#[derive(Debug)]
pub struct Switch {
    name: String,
    routes: Vec<Route>,
    taps: Vec<IfaceId>,
    /// Router mode: decrement TTL and emit ICMP Time Exceeded on expiry.
    router_mode: bool,
    /// Send ICMP Time Exceeded back toward the source on TTL expiry.
    /// Disabling models middleboxes that drop silently.
    send_time_exceeded: bool,
    /// Address used as the source of ICMP errors this switch originates.
    router_addr: std::net::Ipv4Addr,
    stats: SwitchStats,
}

impl Switch {
    /// Create a switch (L2-like: no TTL handling).
    pub fn new(name: &str) -> Switch {
        Switch {
            name: name.to_string(),
            routes: Vec::new(),
            taps: Vec::new(),
            router_mode: false,
            send_time_exceeded: true,
            router_addr: std::net::Ipv4Addr::new(192, 0, 2, 254),
            stats: SwitchStats::default(),
        }
    }

    /// Create a router: decrements TTL, expires packets, emits ICMP errors.
    pub fn router(name: &str, router_addr: std::net::Ipv4Addr) -> Switch {
        let mut s = Switch::new(name);
        s.router_mode = true;
        s.router_addr = router_addr;
        s
    }

    /// Add a forwarding entry: packets whose destination is inside `prefix`
    /// leave through `out`. Longest prefix wins; ties go to the earliest
    /// entry.
    pub fn add_route(&mut self, prefix: Cidr, out: IfaceId) {
        self.routes.push(Route { prefix, out });
    }

    /// Declare `iface` a tap port: it receives a copy of every forwarded
    /// packet but is never a routing target. Packets arriving *from* a tap
    /// port are forwarded normally (monitors can inject, e.g. censor RSTs).
    pub fn add_tap(&mut self, iface: IfaceId) {
        if !self.taps.contains(&iface) {
            self.taps.push(iface);
        }
    }

    /// Disable ICMP Time Exceeded generation (silent TTL drops).
    pub fn set_silent_ttl_drop(&mut self) {
        self.send_time_exceeded = false;
    }

    /// Forwarding statistics.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    fn lookup(&self, dst: std::net::Ipv4Addr) -> Option<IfaceId> {
        self.routes
            .iter()
            .filter(|r| r.prefix.contains(dst))
            .max_by_key(|r| r.prefix.prefix())
            .map(|r| r.out)
    }
}

impl Node for Switch {
    fn name(&self) -> &str {
        &self.name
    }

    fn receive(&mut self, ctx: &mut NodeCtx<'_>, in_iface: IfaceId, mut packet: Packet) {
        if self.router_mode {
            if packet.ttl <= 1 {
                self.stats.ttl_expired += 1;
                if self.send_time_exceeded {
                    let quoted = IcmpRepr::error_payload(&packet.to_wire());
                    let err =
                        Packet::icmp(self.router_addr, packet.src, IcmpKind::TimeExceeded, quoted)
                            .with_ttl(DEFAULT_TTL);
                    if let Some(back) = self.lookup(err.dst) {
                        ctx.send(back, err.clone());
                        self.stats.forwarded += 1;
                    }
                    // The expiry event is still visible to taps: monitors on
                    // the path see the ICMP error go by.
                    for &tap in &self.taps {
                        if tap != in_iface {
                            ctx.send(tap, err.clone());
                            self.stats.tapped += 1;
                        }
                    }
                }
                return;
            }
            packet.ttl -= 1;
        }

        // Mirror to taps before forwarding (monitors see what crossed the
        // switch, whether or not a route exists).
        for &tap in &self.taps {
            if tap != in_iface {
                ctx.send(tap, packet.clone());
                self.stats.tapped += 1;
            }
        }

        match self.lookup(packet.dst) {
            Some(out) if out != in_iface => {
                self.stats.forwarded += 1;
                ctx.send(out, packet);
            }
            Some(_) => {
                // Route points back out the ingress interface: treat as
                // delivered locally / already on the right segment.
                self.stats.no_route += 1;
            }
            None => {
                self.stats.no_route += 1;
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::node::NodeId;
    use crate::sim::Simulator;
    use crate::time::SimTime;
    use crate::wire::tcp::TcpFlags;
    use std::net::Ipv4Addr;

    /// A sink node that records everything it receives.
    struct Sink {
        name: String,
        got: Vec<Packet>,
    }

    impl Sink {
        fn boxed(name: &str) -> Box<Sink> {
            Box::new(Sink {
                name: name.into(),
                got: Vec::new(),
            })
        }
    }

    impl Node for Sink {
        fn name(&self) -> &str {
            &self.name
        }
        fn receive(&mut self, _: &mut NodeCtx<'_>, _: IfaceId, p: Packet) {
            self.got.push(p);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 2);
    const SERVER: Ipv4Addr = Ipv4Addr::new(10, 0, 2, 2);

    /// client -- sw -- server, with a monitor on a tap port.
    fn star() -> (Simulator, NodeId, NodeId, NodeId, NodeId) {
        let mut sim = Simulator::new(3);
        let client = sim.add_node(Sink::boxed("client"));
        let server = sim.add_node(Sink::boxed("server"));
        let monitor = sim.add_node(Sink::boxed("monitor"));
        let mut sw = Switch::new("sw");
        sw.add_route(Cidr::slash24(CLIENT), IfaceId(0));
        sw.add_route(Cidr::slash24(SERVER), IfaceId(1));
        sw.add_tap(IfaceId(2));
        let sw = sim.add_node(Box::new(sw));
        sim.wire(client, IfaceId(0), sw, IfaceId(0), LinkConfig::ideal())
            .expect("wire");
        sim.wire(server, IfaceId(0), sw, IfaceId(1), LinkConfig::ideal())
            .expect("wire");
        sim.wire(monitor, IfaceId(0), sw, IfaceId(2), LinkConfig::ideal())
            .expect("wire");
        (sim, client, server, monitor, sw)
    }

    #[test]
    fn forwards_by_longest_prefix_and_mirrors_to_tap() {
        let (mut sim, client, server, monitor, sw) = star();
        let p = Packet::tcp(CLIENT, SERVER, 1000, 80, 0, 0, TcpFlags::syn(), vec![]);
        sim.send_from(client, IfaceId(0), p, SimTime::ZERO)
            .expect("send");
        sim.run_to_completion().expect("run");
        assert_eq!(sim.node_ref::<Sink>(server).expect("server").got.len(), 1);
        assert_eq!(sim.node_ref::<Sink>(monitor).expect("monitor").got.len(), 1);
        let stats = sim.node_ref::<Switch>(sw).expect("sw").stats();
        assert_eq!(stats.forwarded, 1);
        assert_eq!(stats.tapped, 1);
    }

    #[test]
    fn tap_injection_is_forwarded_not_remirrored() {
        let (mut sim, client, _server, monitor, _sw) = star();
        // Monitor injects a RST toward the client (like a censor would).
        let rst = Packet::tcp(SERVER, CLIENT, 80, 1000, 1, 1, TcpFlags::rst(), vec![]);
        sim.send_from(monitor, IfaceId(0), rst, SimTime::ZERO)
            .expect("send");
        sim.run_to_completion().expect("run");
        assert_eq!(sim.node_ref::<Sink>(client).expect("client").got.len(), 1);
        // The monitor must not receive a copy of its own injection.
        assert_eq!(sim.node_ref::<Sink>(monitor).expect("monitor").got.len(), 0);
    }

    #[test]
    fn longest_prefix_wins() {
        let mut sw = Switch::new("sw");
        sw.add_route(Cidr::new(Ipv4Addr::new(10, 0, 0, 0), 8), IfaceId(0));
        sw.add_route(Cidr::slash24(Ipv4Addr::new(10, 0, 2, 0)), IfaceId(1));
        assert_eq!(sw.lookup(Ipv4Addr::new(10, 0, 2, 9)), Some(IfaceId(1)));
        assert_eq!(sw.lookup(Ipv4Addr::new(10, 9, 9, 9)), Some(IfaceId(0)));
        assert_eq!(sw.lookup(Ipv4Addr::new(11, 0, 0, 1)), None);
    }

    #[test]
    fn router_decrements_ttl() {
        let mut sim = Simulator::new(3);
        let a = sim.add_node(Sink::boxed("a"));
        let b = sim.add_node(Sink::boxed("b"));
        let mut rt = Switch::router("r1", Ipv4Addr::new(192, 0, 2, 1));
        rt.add_route(Cidr::slash24(CLIENT), IfaceId(0));
        rt.add_route(Cidr::slash24(SERVER), IfaceId(1));
        let rt = sim.add_node(Box::new(rt));
        sim.wire(a, IfaceId(0), rt, IfaceId(0), LinkConfig::ideal())
            .expect("wire");
        sim.wire(b, IfaceId(0), rt, IfaceId(1), LinkConfig::ideal())
            .expect("wire");
        let p = Packet::udp(CLIENT, SERVER, 1, 2, vec![]).with_ttl(10);
        sim.send_from(a, IfaceId(0), p, SimTime::ZERO)
            .expect("send");
        sim.run_to_completion().expect("run");
        let got = &sim.node_ref::<Sink>(b).expect("b").got;
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].ttl, 9);
    }

    #[test]
    fn ttl_expiry_generates_time_exceeded_toward_source() {
        let mut sim = Simulator::new(3);
        let a = sim.add_node(Sink::boxed("a"));
        let b = sim.add_node(Sink::boxed("b"));
        let mut rt = Switch::router("r1", Ipv4Addr::new(192, 0, 2, 1));
        rt.add_route(Cidr::slash24(CLIENT), IfaceId(0));
        rt.add_route(Cidr::slash24(SERVER), IfaceId(1));
        let rt_id = sim.add_node(Box::new(rt));
        sim.wire(a, IfaceId(0), rt_id, IfaceId(0), LinkConfig::ideal())
            .expect("wire");
        sim.wire(b, IfaceId(0), rt_id, IfaceId(1), LinkConfig::ideal())
            .expect("wire");
        let p = Packet::udp(CLIENT, SERVER, 7, 9, b"dying".to_vec()).with_ttl(1);
        sim.send_from(a, IfaceId(0), p, SimTime::ZERO)
            .expect("send");
        sim.run_to_completion().expect("run");
        assert!(
            sim.node_ref::<Sink>(b).expect("b").got.is_empty(),
            "packet must die"
        );
        let got = &sim.node_ref::<Sink>(a).expect("a").got;
        assert_eq!(got.len(), 1);
        let icmp = got[0].as_icmp().expect("icmp");
        assert_eq!(icmp.kind, IcmpKind::TimeExceeded);
        let (qsrc, qdst) = IcmpRepr::quoted_addresses(&icmp.payload).expect("quote");
        assert_eq!((qsrc, qdst), (CLIENT, SERVER));
        assert_eq!(
            sim.node_ref::<Switch>(rt_id)
                .expect("rt")
                .stats()
                .ttl_expired,
            1
        );
    }

    #[test]
    fn silent_ttl_drop() {
        let mut sim = Simulator::new(3);
        let a = sim.add_node(Sink::boxed("a"));
        let b = sim.add_node(Sink::boxed("b"));
        let mut rt = Switch::router("r1", Ipv4Addr::new(192, 0, 2, 1));
        rt.add_route(Cidr::slash24(CLIENT), IfaceId(0));
        rt.add_route(Cidr::slash24(SERVER), IfaceId(1));
        rt.set_silent_ttl_drop();
        let rt = sim.add_node(Box::new(rt));
        sim.wire(a, IfaceId(0), rt, IfaceId(0), LinkConfig::ideal())
            .expect("wire");
        sim.wire(b, IfaceId(0), rt, IfaceId(1), LinkConfig::ideal())
            .expect("wire");
        let p = Packet::udp(CLIENT, SERVER, 7, 9, vec![]).with_ttl(1);
        sim.send_from(a, IfaceId(0), p, SimTime::ZERO)
            .expect("send");
        sim.run_to_completion().expect("run");
        assert!(sim.node_ref::<Sink>(a).expect("a").got.is_empty());
        assert!(sim.node_ref::<Sink>(b).expect("b").got.is_empty());
    }

    #[test]
    fn l2_switch_does_not_touch_ttl() {
        let (mut sim, client, server, _monitor, _sw) = star();
        let p = Packet::udp(CLIENT, SERVER, 1, 2, vec![]).with_ttl(1);
        sim.send_from(client, IfaceId(0), p, SimTime::ZERO)
            .expect("send");
        sim.run_to_completion().expect("run");
        let got = &sim.node_ref::<Sink>(server).expect("server").got;
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].ttl, 1, "L2 switch must not decrement TTL");
    }

    #[test]
    fn unroutable_packets_counted() {
        let (mut sim, client, _server, monitor, sw) = star();
        let p = Packet::udp(CLIENT, Ipv4Addr::new(172, 31, 0, 1), 1, 2, vec![]);
        sim.send_from(client, IfaceId(0), p, SimTime::ZERO)
            .expect("send");
        sim.run_to_completion().expect("run");
        let stats = sim.node_ref::<Switch>(sw).expect("sw").stats();
        assert_eq!(stats.no_route, 1);
        assert_eq!(stats.forwarded, 0);
        // Taps still saw it: monitors observe even undeliverable traffic.
        assert_eq!(sim.node_ref::<Sink>(monitor).expect("monitor").got.len(), 1);
    }
}
