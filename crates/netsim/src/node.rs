//! The [`Node`] trait and the context handed to nodes during callbacks.
//!
//! A node is anything attached to the topology: hosts, switches, middlebox
//! censors, passive monitors. Nodes never touch each other directly — they
//! emit packets and timers through a [`NodeCtx`], and the simulator applies
//! those effects after the callback returns. That buffering keeps the whole
//! simulation single-threaded and free of re-entrancy.

use std::any::Any;

use crate::event::TimerToken;
use crate::packet::Packet;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Identifies a node within a [`crate::Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Identifies an interface (port) on a node. Interfaces are dense small
/// integers allocated by the topology builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IfaceId(pub usize);

/// Deferred effects a node requests during a callback.
#[derive(Debug)]
pub(crate) enum Emit {
    /// Transmit a packet out of an interface.
    Send {
        /// Outgoing interface.
        iface: IfaceId,
        /// Packet to transmit.
        packet: Packet,
    },
    /// Arrange a timer callback.
    Timer {
        /// Delay from now.
        delay: SimDuration,
        /// Token to hand back when the timer fires.
        token: TimerToken,
    },
}

/// The context passed to node callbacks.
///
/// Provides the current simulated time, a deterministic RNG stream, and the
/// ability to send packets and set timers. Effects are applied by the
/// simulator after the callback returns, in the order they were requested.
pub struct NodeCtx<'a> {
    pub(crate) now: SimTime,
    pub(crate) node: NodeId,
    pub(crate) emits: &'a mut Vec<Emit>,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) next_timer: &'a mut u64,
}

impl NodeCtx<'_> {
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node being called.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Transmit `packet` out of `iface`. Delivery time and loss are decided
    /// by the link the interface is wired to; sends on unwired interfaces
    /// are silently dropped (like a cable that is not plugged in).
    pub fn send(&mut self, iface: IfaceId, packet: Packet) {
        self.emits.push(Emit::Send { iface, packet });
    }

    /// Set a one-shot timer `delay` from now; the returned token is passed
    /// to [`Node::on_timer`] when it fires.
    pub fn set_timer(&mut self, delay: SimDuration) -> TimerToken {
        let token = TimerToken(*self.next_timer);
        *self.next_timer += 1;
        self.emits.push(Emit::Timer { delay, token });
        token
    }

    /// The node's deterministic RNG stream.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }
}

/// An entity attached to the simulated topology.
pub trait Node: Any {
    /// Human-readable name, used in traces and captures.
    fn name(&self) -> &str;

    /// Called once when the simulation starts, before any packet flows.
    /// Nodes use this to arm their initial timers (e.g. scheduled tasks).
    fn start(&mut self, _ctx: &mut NodeCtx<'_>) {}

    /// A packet arrived on `iface`.
    fn receive(&mut self, ctx: &mut NodeCtx<'_>, iface: IfaceId, packet: Packet);

    /// Whether the scheduler may coalesce a run of same-instant deliveries
    /// to this node into one [`Node::receive_batch`] call.
    ///
    /// Only opt in if `receive` never draws from [`NodeCtx::rng`]: batching
    /// reorders the node's processing relative to the link-impairment draws
    /// of its own emissions, so an RNG-using node would see a different
    /// stream. Passive monitors and deterministic forwarders qualify —
    /// their batched trace is identical to the unbatched one (emits keep
    /// their order, and batch members were already consecutive in the
    /// queue).
    fn wants_batch(&self) -> bool {
        false
    }

    /// A consecutive run of packets arrived on `iface` at the same instant.
    ///
    /// Only called when [`Node::wants_batch`] returns true. The slice is
    /// in delivery order; the buffer is owned by the scheduler and reused
    /// across batches, so implementations must drain it (the default
    /// forwards each packet to [`Node::receive`]).
    fn receive_batch(&mut self, ctx: &mut NodeCtx<'_>, iface: IfaceId, packets: &mut Vec<Packet>) {
        for packet in packets.drain(..) {
            self.receive(ctx, iface, packet);
        }
    }

    /// A timer set with [`NodeCtx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _token: TimerToken) {}

    /// Downcast support for typed access through the simulator.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support for typed access through the simulator.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Probe {
        name: String,
        seen: Vec<Packet>,
    }

    impl Node for Probe {
        fn name(&self) -> &str {
            &self.name
        }
        fn receive(&mut self, _ctx: &mut NodeCtx<'_>, _iface: IfaceId, packet: Packet) {
            self.seen.push(packet);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn ctx_buffers_effects_in_order() {
        let mut emits = Vec::new();
        let mut rng = SimRng::seed_from_u64(0);
        let mut next_timer = 0;
        let mut ctx = NodeCtx {
            now: SimTime::ZERO,
            node: NodeId(0),
            emits: &mut emits,
            rng: &mut rng,
            next_timer: &mut next_timer,
        };
        let a = std::net::Ipv4Addr::new(1, 1, 1, 1);
        let p = Packet::udp(a, a, 1, 2, vec![]);
        ctx.send(IfaceId(0), p.clone());
        let t1 = ctx.set_timer(SimDuration::from_millis(5));
        let t2 = ctx.set_timer(SimDuration::from_millis(9));
        assert_ne!(t1, t2);
        assert_eq!(emits.len(), 3);
        assert!(matches!(emits[0], Emit::Send { .. }));
        assert!(matches!(emits[1], Emit::Timer { token, .. } if token == t1));
        assert!(matches!(emits[2], Emit::Timer { token, .. } if token == t2));
    }

    #[test]
    fn node_trait_is_object_safe_and_downcastable() {
        let mut node: Box<dyn Node> = Box::new(Probe {
            name: "p".into(),
            seen: vec![],
        });
        assert_eq!(node.name(), "p");
        let probe = node.as_any_mut().downcast_mut::<Probe>().expect("downcast");
        assert!(probe.seen.is_empty());
    }
}
