//! Seeded randomness for reproducible simulations.
//!
//! Every stochastic decision in the simulator (link loss, jitter, workload
//! inter-arrival times) draws from a [`SimRng`] created from an explicit
//! seed, so a run is a pure function of its configuration.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic random number generator for the simulation.
///
/// Thin wrapper over [`SmallRng`] exposing just the draws the simulator
/// needs; wrapping keeps the RNG choice in one place and lets tests assert
/// stream stability.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child generator. Used to give each node or
    /// workload its own stream so adding one does not perturb the others.
    pub fn fork(&mut self) -> SimRng {
        let seed = self.inner.gen::<u64>();
        SimRng::seed_from_u64(seed)
    }

    /// A uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// A uniform integer in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            lo
        } else {
            self.inner.gen_range(lo..hi)
        }
    }

    /// A uniform integer in `[lo, hi)` as `u32`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        if hi <= lo {
            lo
        } else {
            self.inner.gen_range(lo..hi)
        }
    }

    /// A uniform `usize` index in `[0, len)`. Returns 0 when `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        if len == 0 {
            0
        } else {
            self.inner.gen_range(0..len)
        }
    }

    /// A raw 32-bit draw (initial sequence numbers, IP identification, ...).
    pub fn next_u32(&mut self) -> u32 {
        self.inner.gen()
    }

    /// A raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Exponentially distributed draw with the given mean (for Poisson
    /// arrival processes in workload generators). Mean of zero yields zero.
    pub fn exp(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Inverse-CDF sampling; guard the log against u == 0.
        let u = self.inner.gen::<f64>().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_are_independent_of_later_parent_draws() {
        let mut parent1 = SimRng::seed_from_u64(7);
        let mut child1 = parent1.fork();
        let mut parent2 = SimRng::seed_from_u64(7);
        let mut child2 = parent2.fork();
        // Draw from one parent only; children must still agree.
        let _ = parent1.next_u64();
        for _ in 0..10 {
            assert_eq!(child1.next_u64(), child2.next_u64());
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(1);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn range_handles_empty() {
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(rng.range_u64(5, 5), 5);
        assert_eq!(rng.range_u64(9, 3), 9);
        assert_eq!(rng.index(0), 0);
    }

    #[test]
    fn unit_in_bounds() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exp_is_nonnegative_with_roughly_right_mean() {
        let mut rng = SimRng::seed_from_u64(9);
        let n = 20_000;
        let mean = 5.0;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.exp(mean);
            assert!(x >= 0.0);
            sum += x;
        }
        let sample_mean = sum / n as f64;
        assert!((sample_mean - mean).abs() < 0.25, "sample mean {sample_mean}");
        assert_eq!(rng.exp(0.0), 0.0);
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut rng = SimRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
