//! Seeded randomness for reproducible simulations.
//!
//! Every stochastic decision in the simulator (link loss, jitter, workload
//! inter-arrival times) draws from a [`SimRng`] created from an explicit
//! seed, so a run is a pure function of its configuration.
//!
//! The generator is an in-tree xoshiro256++ (Blackman & Vigna) seeded via
//! SplitMix64, so the simulator has no external RNG dependency and the
//! stream is stable across toolchains.

/// The SplitMix64 finalizer (Steele, Lea & Flood): adds the golden-ratio
/// increment and scrambles, so seeds differing in few bits decorrelate.
///
/// This is the **single shared definition** for the whole workspace —
/// `campaign::seed` derives per-trial and per-attempt seeds from it and
/// `bench::runner` derives sharded-run trial seeds from it, so the seed
/// streams those two paths produce can never silently drift apart.
#[inline]
pub fn splitmix64_mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// SplitMix64 step: used to expand a 64-bit seed into generator state and
/// to derive independent child seeds.
fn splitmix64(state: &mut u64) -> u64 {
    let out = splitmix64_mix(*state);
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    out
}

/// A deterministic random number generator for the simulation.
///
/// Thin wrapper over an in-tree xoshiro256++ exposing just the draws the
/// simulator needs; wrapping keeps the RNG choice in one place and lets
/// tests assert stream stability.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent child generator. Used to give each node or
    /// workload its own stream so adding one does not perturb the others.
    pub fn fork(&mut self) -> SimRng {
        let seed = self.next_u64();
        SimRng::seed_from_u64(seed)
    }

    /// A uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 high bits scaled into the unit interval.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// A uniform integer in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            lo
        } else {
            lo + self.bounded(hi - lo)
        }
    }

    /// A uniform integer in `[lo, hi)` as `u32`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        if hi <= lo {
            lo
        } else {
            lo + self.bounded(u64::from(hi - lo)) as u32
        }
    }

    /// A uniform `usize` index in `[0, len)`. Returns 0 when `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        if len == 0 {
            0
        } else {
            self.bounded(len as u64) as usize
        }
    }

    /// A raw 32-bit draw (initial sequence numbers, IP identification, ...).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Exponentially distributed draw with the given mean (for Poisson
    /// arrival processes in workload generators). Mean of zero yields zero.
    pub fn exp(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Inverse-CDF sampling; guard the log against u == 0.
        let u = self.unit().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.bounded(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Uniform draw in `[0, bound)` via Lemire's widening-multiply method
    /// with a rejection pass to remove bias. `bound` must be non-zero.
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_mix_reference_vector() {
        // Known-answer vector for the shared finalizer (the canonical
        // SplitMix64 stream seeded at 0 starts with this value); pins the
        // function every seed-derivation path in the workspace relies on.
        assert_eq!(splitmix64_mix(0), 0xE220_A839_7B1D_CDAF);
        // Avalanche sanity: adjacent inputs produce unrelated outputs.
        let a = splitmix64_mix(1);
        let b = splitmix64_mix(2);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 16, "{a:#x} vs {b:#x}");
    }

    #[test]
    fn splitmix64_step_matches_the_shared_finalizer() {
        // The stateful stepper must produce exactly the shared finalizer's
        // value for the pre-advance state (the historical behaviour the
        // xoshiro seeding depends on).
        let mut state = 42u64;
        let out = splitmix64(&mut state);
        assert_eq!(out, splitmix64_mix(42));
        assert_eq!(state, 42u64.wrapping_add(0x9E37_79B9_7F4A_7C15));
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_are_independent_of_later_parent_draws() {
        let mut parent1 = SimRng::seed_from_u64(7);
        let mut child1 = parent1.fork();
        let mut parent2 = SimRng::seed_from_u64(7);
        let mut child2 = parent2.fork();
        // Draw from one parent only; children must still agree.
        let _ = parent1.next_u64();
        for _ in 0..10 {
            assert_eq!(child1.next_u64(), child2.next_u64());
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(1);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn range_handles_empty() {
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(rng.range_u64(5, 5), 5);
        assert_eq!(rng.range_u64(9, 3), 9);
        assert_eq!(rng.index(0), 0);
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut rng = SimRng::seed_from_u64(17);
        for _ in 0..10_000 {
            let v = rng.range_u64(10, 17);
            assert!((10..17).contains(&v));
            let w = rng.range_u32(3, 5);
            assert!((3..5).contains(&w));
            let i = rng.index(9);
            assert!(i < 9);
        }
    }

    #[test]
    fn unit_in_bounds() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exp_is_nonnegative_with_roughly_right_mean() {
        let mut rng = SimRng::seed_from_u64(9);
        let n = 20_000;
        let mean = 5.0;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.exp(mean);
            assert!(x >= 0.0);
            sum += x;
        }
        let sample_mean = sum / n as f64;
        assert!(
            (sample_mean - mean).abs() < 0.25,
            "sample mean {sample_mean}"
        );
        assert_eq!(rng.exp(0.0), 0.0);
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut rng = SimRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
