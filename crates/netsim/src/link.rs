//! Point-to-point links.
//!
//! A link joins two (node, interface) endpoints full-duplex. Each direction
//! applies, in order: random loss, store-and-forward serialization at the
//! configured bandwidth, propagation latency, and optional uniform jitter.

use crate::node::{IfaceId, NodeId};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Identifies a link within a simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub usize);

/// One endpoint of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Endpoint {
    /// The attached node.
    pub node: NodeId,
    /// The interface on that node.
    pub iface: IfaceId,
}

/// Link behaviour parameters.
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// One-way propagation delay.
    pub latency: SimDuration,
    /// Bandwidth in bits per second; `0` means infinite (no serialization).
    pub bandwidth_bps: u64,
    /// Probability in `[0, 1]` that a packet is dropped.
    pub loss: f64,
    /// Uniform extra delay in `[0, jitter)` added per packet.
    pub jitter: SimDuration,
}

impl Default for LinkConfig {
    fn default() -> Self {
        // 1 ms / 1 Gbps / lossless: an uncongested LAN segment, matching the
        // paper's Mininet defaults closely enough for protocol behaviour.
        LinkConfig {
            latency: SimDuration::from_millis(1),
            bandwidth_bps: 1_000_000_000,
            loss: 0.0,
            jitter: SimDuration::ZERO,
        }
    }
}

impl LinkConfig {
    /// An ideal link: zero latency, infinite bandwidth, lossless.
    pub fn ideal() -> Self {
        LinkConfig {
            latency: SimDuration::ZERO,
            bandwidth_bps: 0,
            loss: 0.0,
            jitter: SimDuration::ZERO,
        }
    }

    /// Builder: set latency.
    pub fn with_latency(mut self, latency: SimDuration) -> Self {
        self.latency = latency;
        self
    }

    /// Builder: set bandwidth in bits per second (`0` = infinite).
    pub fn with_bandwidth_bps(mut self, bps: u64) -> Self {
        self.bandwidth_bps = bps;
        self
    }

    /// Builder: set loss probability (clamped to `[0, 1]`).
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss.clamp(0.0, 1.0);
        self
    }

    /// Builder: set jitter bound.
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Time to serialize `bytes` onto the wire at this bandwidth.
    pub fn serialize_time(&self, bytes: usize) -> SimDuration {
        if self.bandwidth_bps == 0 {
            return SimDuration::ZERO;
        }
        let bits = (bytes as u64).saturating_mul(8);
        // ns = bits / bps * 1e9, computed to avoid overflow for sane values.
        SimDuration::from_nanos(bits.saturating_mul(1_000_000_000) / self.bandwidth_bps)
    }
}

/// The outcome of offering a packet to a link direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxOutcome {
    /// The packet will arrive at the given time.
    Deliver(SimTime),
    /// The packet was lost.
    Lost,
}

/// A full-duplex link between two endpoints.
#[derive(Debug)]
pub struct Link {
    /// Endpoint A.
    pub a: Endpoint,
    /// Endpoint B.
    pub b: Endpoint,
    /// Behaviour parameters (shared by both directions).
    pub config: LinkConfig,
    next_free_ab: SimTime,
    next_free_ba: SimTime,
}

impl Link {
    /// Create a link between `a` and `b`.
    pub fn new(a: Endpoint, b: Endpoint, config: LinkConfig) -> Self {
        Link {
            a,
            b,
            config,
            next_free_ab: SimTime::ZERO,
            next_free_ba: SimTime::ZERO,
        }
    }

    /// The endpoint opposite `from`, or `None` if `from` is not on this link.
    pub fn peer_of(&self, node: NodeId, iface: IfaceId) -> Option<Endpoint> {
        if self.a.node == node && self.a.iface == iface {
            Some(self.b)
        } else if self.b.node == node && self.b.iface == iface {
            Some(self.a)
        } else {
            None
        }
    }

    /// Offer a packet of `bytes` length for transmission from `(node, iface)`
    /// at time `now`. Applies loss, serialization, latency and jitter, and
    /// advances the direction's transmitter-busy horizon.
    pub fn transmit(
        &mut self,
        node: NodeId,
        iface: IfaceId,
        bytes: usize,
        now: SimTime,
        rng: &mut SimRng,
    ) -> TxOutcome {
        if rng.chance(self.config.loss) {
            return TxOutcome::Lost;
        }
        let from_a = self.a.node == node && self.a.iface == iface;
        let next_free = if from_a {
            &mut self.next_free_ab
        } else {
            &mut self.next_free_ba
        };
        let start = now.max(*next_free);
        let serialize = self.config.serialize_time(bytes);
        *next_free = start + serialize;
        let jitter = if self.config.jitter == SimDuration::ZERO {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(rng.range_u64(0, self.config.jitter.as_nanos()))
        };
        TxOutcome::Deliver(start + serialize + self.config.latency + jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(config: LinkConfig) -> Link {
        Link::new(
            Endpoint {
                node: NodeId(0),
                iface: IfaceId(0),
            },
            Endpoint {
                node: NodeId(1),
                iface: IfaceId(0),
            },
            config,
        )
    }

    #[test]
    fn serialize_time_scales_with_size() {
        let cfg = LinkConfig::default().with_bandwidth_bps(8_000_000); // 1 MB/s
        assert_eq!(cfg.serialize_time(1_000), SimDuration::from_millis(1));
        assert_eq!(cfg.serialize_time(0), SimDuration::ZERO);
        assert_eq!(
            LinkConfig::ideal().serialize_time(1_000_000),
            SimDuration::ZERO
        );
    }

    #[test]
    fn delivery_includes_latency_and_serialization() {
        let cfg = LinkConfig::default()
            .with_latency(SimDuration::from_millis(10))
            .with_bandwidth_bps(8_000_000);
        let mut l = link(cfg);
        let mut rng = SimRng::seed_from_u64(0);
        match l.transmit(NodeId(0), IfaceId(0), 1_000, SimTime::ZERO, &mut rng) {
            TxOutcome::Deliver(t) => assert_eq!(t, SimTime::from_nanos(11_000_000)),
            TxOutcome::Lost => panic!("lossless link dropped a packet"),
        }
    }

    #[test]
    fn back_to_back_packets_queue_behind_each_other() {
        let cfg = LinkConfig::default()
            .with_latency(SimDuration::ZERO)
            .with_bandwidth_bps(8_000); // 1 KB/s: 1 byte per ms
        let mut l = link(cfg);
        let mut rng = SimRng::seed_from_u64(0);
        let t1 = match l.transmit(NodeId(0), IfaceId(0), 5, SimTime::ZERO, &mut rng) {
            TxOutcome::Deliver(t) => t,
            _ => panic!("lost"),
        };
        let t2 = match l.transmit(NodeId(0), IfaceId(0), 5, SimTime::ZERO, &mut rng) {
            TxOutcome::Deliver(t) => t,
            _ => panic!("lost"),
        };
        assert_eq!(t1, SimTime::from_nanos(5_000_000));
        assert_eq!(
            t2,
            SimTime::from_nanos(10_000_000),
            "second packet waits for the first"
        );
    }

    #[test]
    fn directions_are_independent() {
        let cfg = LinkConfig::default()
            .with_latency(SimDuration::ZERO)
            .with_bandwidth_bps(8_000);
        let mut l = link(cfg);
        let mut rng = SimRng::seed_from_u64(0);
        let _ = l.transmit(NodeId(0), IfaceId(0), 1_000, SimTime::ZERO, &mut rng);
        // The reverse direction is idle, so a packet departs immediately.
        match l.transmit(NodeId(1), IfaceId(0), 1, SimTime::ZERO, &mut rng) {
            TxOutcome::Deliver(t) => assert_eq!(t, SimTime::from_nanos(1_000_000)),
            _ => panic!("lost"),
        }
    }

    #[test]
    fn total_loss_drops_everything() {
        let mut l = link(LinkConfig::default().with_loss(1.0));
        let mut rng = SimRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(
                l.transmit(NodeId(0), IfaceId(0), 100, SimTime::ZERO, &mut rng),
                TxOutcome::Lost
            );
        }
    }

    #[test]
    fn partial_loss_is_roughly_calibrated() {
        let mut l = link(LinkConfig::ideal().with_loss(0.3));
        let mut rng = SimRng::seed_from_u64(42);
        let mut lost = 0;
        for _ in 0..10_000 {
            if l.transmit(NodeId(0), IfaceId(0), 10, SimTime::ZERO, &mut rng) == TxOutcome::Lost {
                lost += 1;
            }
        }
        let rate = lost as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "loss rate {rate}");
    }

    #[test]
    fn peer_lookup() {
        let l = link(LinkConfig::default());
        assert_eq!(
            l.peer_of(NodeId(0), IfaceId(0)),
            Some(Endpoint {
                node: NodeId(1),
                iface: IfaceId(0)
            })
        );
        assert_eq!(
            l.peer_of(NodeId(1), IfaceId(0)),
            Some(Endpoint {
                node: NodeId(0),
                iface: IfaceId(0)
            })
        );
        assert_eq!(l.peer_of(NodeId(2), IfaceId(0)), None);
    }

    #[test]
    fn jitter_bounded() {
        let cfg = LinkConfig::ideal().with_jitter(SimDuration::from_millis(2));
        let mut l = link(cfg);
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..1000 {
            match l.transmit(NodeId(0), IfaceId(0), 10, SimTime::ZERO, &mut rng) {
                TxOutcome::Deliver(t) => {
                    assert!(t.as_nanos() < 2_000_000, "jitter exceeded bound: {t}")
                }
                TxOutcome::Lost => panic!("lossless"),
            }
        }
    }
}
