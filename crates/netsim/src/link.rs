//! Point-to-point links.
//!
//! A link joins two (node, interface) endpoints full-duplex. Each direction
//! applies, in order: random loss, store-and-forward serialization at the
//! configured bandwidth, propagation latency, and optional uniform jitter.
//!
//! Jitter models delay *variance*, not covert reordering: per-direction
//! delivery times are clamped monotone (FIFO). Actual reordering — along
//! with duplication and payload corruption — is an explicit adversarial
//! impairment knob, drawn from the link's RNG in simulated-time order so
//! seeded runs stay byte-identical regardless of sharding.

use crate::node::{IfaceId, NodeId};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Identifies a link within a simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub usize);

/// One endpoint of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Endpoint {
    /// The attached node.
    pub node: NodeId,
    /// The interface on that node.
    pub iface: IfaceId,
}

/// Link behaviour parameters.
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// One-way propagation delay.
    pub latency: SimDuration,
    /// Bandwidth in bits per second; `0` means infinite (no serialization).
    pub bandwidth_bps: u64,
    /// Probability in `[0, 1]` that a packet is dropped.
    pub loss: f64,
    /// Uniform extra delay in `[0, jitter)` added per packet.
    pub jitter: SimDuration,
    /// Probability in `[0, 1]` that a packet is reordered: it escapes the
    /// FIFO clamp and is displaced by up to [`LinkConfig::reorder_extra`],
    /// letting later packets overtake it.
    pub reorder: f64,
    /// Displacement bound for reordered packets: uniform extra delay in
    /// `[0, reorder_extra)` on top of the packet's natural delivery time.
    pub reorder_extra: SimDuration,
    /// Probability in `[0, 1]` that a packet is delivered twice.
    pub duplicate: f64,
    /// Probability in `[0, 1]` that one payload byte is flipped in transit.
    pub corrupt: f64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        // 1 ms / 1 Gbps / lossless: an uncongested LAN segment, matching the
        // paper's Mininet defaults closely enough for protocol behaviour.
        LinkConfig {
            latency: SimDuration::from_millis(1),
            bandwidth_bps: 1_000_000_000,
            loss: 0.0,
            jitter: SimDuration::ZERO,
            reorder: 0.0,
            reorder_extra: SimDuration::ZERO,
            duplicate: 0.0,
            corrupt: 0.0,
        }
    }
}

impl LinkConfig {
    /// An ideal link: zero latency, infinite bandwidth, lossless.
    pub fn ideal() -> Self {
        LinkConfig {
            latency: SimDuration::ZERO,
            bandwidth_bps: 0,
            loss: 0.0,
            jitter: SimDuration::ZERO,
            reorder: 0.0,
            reorder_extra: SimDuration::ZERO,
            duplicate: 0.0,
            corrupt: 0.0,
        }
    }

    /// Builder: set latency.
    pub fn with_latency(mut self, latency: SimDuration) -> Self {
        self.latency = latency;
        self
    }

    /// Builder: set bandwidth in bits per second (`0` = infinite).
    pub fn with_bandwidth_bps(mut self, bps: u64) -> Self {
        self.bandwidth_bps = bps;
        self
    }

    /// Builder: set loss probability (clamped to `[0, 1]`).
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss.clamp(0.0, 1.0);
        self
    }

    /// Builder: set jitter bound.
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Builder: set the reorder probability (clamped to `[0, 1]`) and the
    /// displacement bound for reordered packets.
    pub fn with_reorder(mut self, reorder: f64, extra: SimDuration) -> Self {
        self.reorder = reorder.clamp(0.0, 1.0);
        self.reorder_extra = extra;
        self
    }

    /// Builder: set the duplication probability (clamped to `[0, 1]`).
    pub fn with_duplicate(mut self, duplicate: f64) -> Self {
        self.duplicate = duplicate.clamp(0.0, 1.0);
        self
    }

    /// Builder: set the corruption probability (clamped to `[0, 1]`).
    pub fn with_corrupt(mut self, corrupt: f64) -> Self {
        self.corrupt = corrupt.clamp(0.0, 1.0);
        self
    }

    /// Time to serialize `bytes` onto the wire at this bandwidth.
    pub fn serialize_time(&self, bytes: usize) -> SimDuration {
        if self.bandwidth_bps == 0 {
            return SimDuration::ZERO;
        }
        let bits = (bytes as u64).saturating_mul(8);
        // ns = bits / bps * 1e9, computed to avoid overflow for sane values.
        SimDuration::from_nanos(bits.saturating_mul(1_000_000_000) / self.bandwidth_bps)
    }
}

/// A scheduled delivery, with any impairments the link applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxDelivery {
    /// Arrival time of the (first) copy.
    pub at: SimTime,
    /// The reorder knob selected this packet: it bypassed the FIFO clamp
    /// and later packets may overtake it.
    pub reordered: bool,
    /// One payload byte should be flipped in transit.
    pub corrupt: bool,
    /// A second copy arrives at this time (the duplicate knob fired).
    pub duplicate_at: Option<SimTime>,
}

/// The outcome of offering a packet to a link direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxOutcome {
    /// The packet will arrive as described.
    Deliver(TxDelivery),
    /// The packet was lost.
    Lost,
}

/// A full-duplex link between two endpoints.
#[derive(Debug)]
pub struct Link {
    /// Endpoint A.
    pub a: Endpoint,
    /// Endpoint B.
    pub b: Endpoint,
    /// Behaviour parameters (shared by both directions).
    pub config: LinkConfig,
    next_free_ab: SimTime,
    next_free_ba: SimTime,
    last_arrival_ab: SimTime,
    last_arrival_ba: SimTime,
}

impl Link {
    /// Create a link between `a` and `b`.
    pub fn new(a: Endpoint, b: Endpoint, config: LinkConfig) -> Self {
        Link {
            a,
            b,
            config,
            next_free_ab: SimTime::ZERO,
            next_free_ba: SimTime::ZERO,
            last_arrival_ab: SimTime::ZERO,
            last_arrival_ba: SimTime::ZERO,
        }
    }

    /// The endpoint opposite `from`, or `None` if `from` is not on this link.
    pub fn peer_of(&self, node: NodeId, iface: IfaceId) -> Option<Endpoint> {
        if self.a.node == node && self.a.iface == iface {
            Some(self.b)
        } else if self.b.node == node && self.b.iface == iface {
            Some(self.a)
        } else {
            None
        }
    }

    /// Offer a packet of `bytes` length for transmission from `(node, iface)`
    /// at time `now`. Applies loss, serialization, latency, jitter and the
    /// impairment knobs, and advances the direction's transmitter-busy
    /// horizon. Delivery times are FIFO-clamped per direction unless the
    /// reorder knob selects the packet for bounded displacement.
    pub fn transmit(
        &mut self,
        node: NodeId,
        iface: IfaceId,
        bytes: usize,
        now: SimTime,
        rng: &mut SimRng,
    ) -> TxOutcome {
        if rng.chance(self.config.loss) {
            return TxOutcome::Lost;
        }
        let from_a = self.a.node == node && self.a.iface == iface;
        let (next_free, last_arrival) = if from_a {
            (&mut self.next_free_ab, &mut self.last_arrival_ab)
        } else {
            (&mut self.next_free_ba, &mut self.last_arrival_ba)
        };
        let start = now.max(*next_free);
        let serialize = self.config.serialize_time(bytes);
        *next_free = start + serialize;
        let jitter = if self.config.jitter == SimDuration::ZERO {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(rng.range_u64(0, self.config.jitter.as_nanos()))
        };
        let base = start + serialize + self.config.latency + jitter;
        let reordered = rng.chance(self.config.reorder);
        let at = if reordered {
            // Displaced past its natural slot; deliberately NOT advancing
            // the FIFO horizon, so later packets may overtake it.
            let extra = if self.config.reorder_extra == SimDuration::ZERO {
                SimDuration::ZERO
            } else {
                SimDuration::from_nanos(rng.range_u64(0, self.config.reorder_extra.as_nanos()))
            };
            base + extra
        } else {
            // FIFO clamp: jitter varies delay but never reorders a direction.
            let at = base.max(*last_arrival);
            *last_arrival = at;
            at
        };
        let duplicate_at = if rng.chance(self.config.duplicate) {
            Some(at)
        } else {
            None
        };
        let corrupt = rng.chance(self.config.corrupt);
        TxOutcome::Deliver(TxDelivery {
            at,
            reordered,
            corrupt,
            duplicate_at,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(config: LinkConfig) -> Link {
        Link::new(
            Endpoint {
                node: NodeId(0),
                iface: IfaceId(0),
            },
            Endpoint {
                node: NodeId(1),
                iface: IfaceId(0),
            },
            config,
        )
    }

    #[test]
    fn serialize_time_scales_with_size() {
        let cfg = LinkConfig::default().with_bandwidth_bps(8_000_000); // 1 MB/s
        assert_eq!(cfg.serialize_time(1_000), SimDuration::from_millis(1));
        assert_eq!(cfg.serialize_time(0), SimDuration::ZERO);
        assert_eq!(
            LinkConfig::ideal().serialize_time(1_000_000),
            SimDuration::ZERO
        );
    }

    #[test]
    fn delivery_includes_latency_and_serialization() {
        let cfg = LinkConfig::default()
            .with_latency(SimDuration::from_millis(10))
            .with_bandwidth_bps(8_000_000);
        let mut l = link(cfg);
        let mut rng = SimRng::seed_from_u64(0);
        match l.transmit(NodeId(0), IfaceId(0), 1_000, SimTime::ZERO, &mut rng) {
            TxOutcome::Deliver(d) => assert_eq!(d.at, SimTime::from_nanos(11_000_000)),
            TxOutcome::Lost => panic!("lossless link dropped a packet"),
        }
    }

    #[test]
    fn back_to_back_packets_queue_behind_each_other() {
        let cfg = LinkConfig::default()
            .with_latency(SimDuration::ZERO)
            .with_bandwidth_bps(8_000); // 1 KB/s: 1 byte per ms
        let mut l = link(cfg);
        let mut rng = SimRng::seed_from_u64(0);
        let t1 = match l.transmit(NodeId(0), IfaceId(0), 5, SimTime::ZERO, &mut rng) {
            TxOutcome::Deliver(d) => d.at,
            _ => panic!("lost"),
        };
        let t2 = match l.transmit(NodeId(0), IfaceId(0), 5, SimTime::ZERO, &mut rng) {
            TxOutcome::Deliver(d) => d.at,
            _ => panic!("lost"),
        };
        assert_eq!(t1, SimTime::from_nanos(5_000_000));
        assert_eq!(
            t2,
            SimTime::from_nanos(10_000_000),
            "second packet waits for the first"
        );
    }

    #[test]
    fn directions_are_independent() {
        let cfg = LinkConfig::default()
            .with_latency(SimDuration::ZERO)
            .with_bandwidth_bps(8_000);
        let mut l = link(cfg);
        let mut rng = SimRng::seed_from_u64(0);
        let _ = l.transmit(NodeId(0), IfaceId(0), 1_000, SimTime::ZERO, &mut rng);
        // The reverse direction is idle, so a packet departs immediately.
        match l.transmit(NodeId(1), IfaceId(0), 1, SimTime::ZERO, &mut rng) {
            TxOutcome::Deliver(d) => assert_eq!(d.at, SimTime::from_nanos(1_000_000)),
            _ => panic!("lost"),
        }
    }

    #[test]
    fn total_loss_drops_everything() {
        let mut l = link(LinkConfig::default().with_loss(1.0));
        let mut rng = SimRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(
                l.transmit(NodeId(0), IfaceId(0), 100, SimTime::ZERO, &mut rng),
                TxOutcome::Lost
            );
        }
    }

    #[test]
    fn partial_loss_is_roughly_calibrated() {
        let mut l = link(LinkConfig::ideal().with_loss(0.3));
        let mut rng = SimRng::seed_from_u64(42);
        let mut lost = 0;
        for _ in 0..10_000 {
            if l.transmit(NodeId(0), IfaceId(0), 10, SimTime::ZERO, &mut rng) == TxOutcome::Lost {
                lost += 1;
            }
        }
        let rate = lost as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "loss rate {rate}");
    }

    #[test]
    fn peer_lookup() {
        let l = link(LinkConfig::default());
        assert_eq!(
            l.peer_of(NodeId(0), IfaceId(0)),
            Some(Endpoint {
                node: NodeId(1),
                iface: IfaceId(0)
            })
        );
        assert_eq!(
            l.peer_of(NodeId(1), IfaceId(0)),
            Some(Endpoint {
                node: NodeId(0),
                iface: IfaceId(0)
            })
        );
        assert_eq!(l.peer_of(NodeId(2), IfaceId(0)), None);
    }

    #[test]
    fn jitter_bounded() {
        let cfg = LinkConfig::ideal().with_jitter(SimDuration::from_millis(2));
        let mut l = link(cfg);
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..1000 {
            match l.transmit(NodeId(0), IfaceId(0), 10, SimTime::ZERO, &mut rng) {
                TxOutcome::Deliver(d) => {
                    assert!(
                        d.at.as_nanos() < 2_000_000,
                        "jitter exceeded bound: {}",
                        d.at
                    )
                }
                TxOutcome::Lost => panic!("lossless"),
            }
        }
    }

    #[test]
    fn max_jitter_never_reorders_a_direction() {
        // Regression: two back-to-back segments under maximal jitter must
        // still arrive in order — jitter is delay variance, not reordering.
        for seed in 0..64 {
            let cfg = LinkConfig::default().with_jitter(SimDuration::from_millis(50));
            let mut l = link(cfg);
            let mut rng = SimRng::seed_from_u64(seed);
            let mut last = SimTime::ZERO;
            for _ in 0..20 {
                match l.transmit(NodeId(0), IfaceId(0), 100, SimTime::ZERO, &mut rng) {
                    TxOutcome::Deliver(d) => {
                        assert!(d.at >= last, "same-link reorder: {} < {last}", d.at);
                        assert!(!d.reordered && !d.corrupt && d.duplicate_at.is_none());
                        last = d.at;
                    }
                    TxOutcome::Lost => panic!("lossless"),
                }
            }
        }
    }

    #[test]
    fn reorder_knob_displaces_within_bound_and_lets_others_pass() {
        let cfg = LinkConfig::ideal()
            .with_latency(SimDuration::from_millis(1))
            .with_reorder(1.0, SimDuration::from_millis(3));
        let mut l = link(cfg);
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..200 {
            match l.transmit(NodeId(0), IfaceId(0), 10, SimTime::ZERO, &mut rng) {
                TxOutcome::Deliver(d) => {
                    assert!(d.reordered);
                    // Natural slot is 1 ms; displacement adds < 3 ms on top.
                    assert!(d.at >= SimTime::from_nanos(1_000_000));
                    assert!(
                        d.at.as_nanos() < 4_000_000,
                        "displacement unbounded: {}",
                        d.at
                    );
                }
                TxOutcome::Lost => panic!("lossless"),
            }
        }
    }

    #[test]
    fn duplicate_and_corrupt_knobs_mark_deliveries() {
        let cfg = LinkConfig::ideal().with_duplicate(1.0).with_corrupt(1.0);
        let mut l = link(cfg);
        let mut rng = SimRng::seed_from_u64(3);
        match l.transmit(NodeId(0), IfaceId(0), 10, SimTime::ZERO, &mut rng) {
            TxOutcome::Deliver(d) => {
                assert_eq!(d.duplicate_at, Some(d.at));
                assert!(d.corrupt);
            }
            TxOutcome::Lost => panic!("lossless"),
        }
    }

    #[test]
    fn zero_impairment_knobs_draw_no_rng() {
        // Backward compatibility: with the new knobs at their defaults, the
        // RNG stream is untouched, so existing seeded traces are unchanged.
        let mut l = link(LinkConfig::default());
        let mut rng = SimRng::seed_from_u64(9);
        let _ = l.transmit(NodeId(0), IfaceId(0), 10, SimTime::ZERO, &mut rng);
        let after = rng.next_u64();
        let mut fresh = SimRng::seed_from_u64(9);
        assert_eq!(after, fresh.next_u64(), "default transmit consumed rng");
    }
}
