//! Error types for the simulator.
//!
//! Library code never panics on malformed input: wire parsing returns
//! [`WireError`] and simulator operations return [`NetsimError`].

use std::fmt;

/// Errors raised while parsing or emitting wire-format packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the fixed header requires.
    Truncated {
        /// Bytes required to make progress.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// A version or header-length field has an unsupported value.
    Malformed(&'static str),
    /// A checksum did not verify.
    BadChecksum {
        /// Protocol layer that failed ("ipv4", "tcp", "udp", "icmp").
        layer: &'static str,
    },
    /// The total-length field disagrees with the buffer.
    LengthMismatch {
        /// Length claimed by the header.
        claimed: usize,
        /// Length of the buffer supplied.
        actual: usize,
    },
    /// An unknown IP protocol number was encountered where a known one was
    /// required.
    UnknownProtocol(u8),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "truncated packet: needed {needed} bytes, got {got}")
            }
            WireError::Malformed(what) => write!(f, "malformed packet: {what}"),
            WireError::BadChecksum { layer } => write!(f, "bad {layer} checksum"),
            WireError::LengthMismatch { claimed, actual } => {
                write!(
                    f,
                    "length mismatch: header claims {claimed}, buffer has {actual}"
                )
            }
            WireError::UnknownProtocol(p) => write!(f, "unknown IP protocol {p}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Errors raised by simulator configuration and runtime operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetsimError {
    /// A node id did not refer to a registered node.
    UnknownNode(usize),
    /// An interface id was out of range for the node.
    UnknownIface {
        /// The node whose interface table was consulted.
        node: usize,
        /// The offending interface index.
        iface: usize,
    },
    /// The interface is not connected to a link.
    IfaceNotWired {
        /// The node whose interface is dangling.
        node: usize,
        /// The dangling interface index.
        iface: usize,
    },
    /// An attempt to wire an interface that is already connected.
    IfaceAlreadyWired {
        /// The node whose interface is already in use.
        node: usize,
        /// The occupied interface index.
        iface: usize,
    },
    /// A socket operation failed (port in use, no such socket, ...).
    Socket(&'static str),
    /// A wire-format error surfaced through the simulator API.
    Wire(WireError),
    /// The simulation exceeded its configured event budget (runaway guard).
    EventBudgetExhausted {
        /// The configured budget that was hit.
        budget: u64,
    },
}

impl fmt::Display for NetsimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetsimError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            NetsimError::UnknownIface { node, iface } => {
                write!(f, "unknown iface {iface} on node {node}")
            }
            NetsimError::IfaceNotWired { node, iface } => {
                write!(f, "iface {iface} on node {node} is not wired to a link")
            }
            NetsimError::IfaceAlreadyWired { node, iface } => {
                write!(f, "iface {iface} on node {node} is already wired")
            }
            NetsimError::Socket(what) => write!(f, "socket error: {what}"),
            NetsimError::Wire(e) => write!(f, "wire error: {e}"),
            NetsimError::EventBudgetExhausted { budget } => {
                write!(f, "simulation exceeded event budget of {budget}")
            }
        }
    }
}

impl std::error::Error for NetsimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetsimError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for NetsimError {
    fn from(e: WireError) -> Self {
        NetsimError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = WireError::Truncated { needed: 20, got: 4 };
        assert!(e.to_string().contains("20"));
        assert!(e.to_string().contains("4"));
        let e = NetsimError::from(WireError::BadChecksum { layer: "tcp" });
        assert!(e.to_string().contains("tcp"));
    }

    #[test]
    fn source_chains_wire_errors() {
        use std::error::Error;
        let e = NetsimError::Wire(WireError::Malformed("bad version"));
        assert!(e.source().is_some());
        let e = NetsimError::Socket("port in use");
        assert!(e.source().is_none());
    }
}
