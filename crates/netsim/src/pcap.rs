//! Export captures as libpcap files.
//!
//! Writes the classic pcap format (magic `0xa1b2c3d4`, version 2.4) with
//! `LINKTYPE_RAW` (101): each record is a raw IPv4 packet, which is what
//! the simulator's canonical wire encoding produces. Files open directly
//! in Wireshark/tcpdump, making simulated traces inspectable with standard
//! tooling.

use crate::capture::Capture;

/// Classic pcap magic (microsecond timestamps, native byte order written
/// little-endian here).
const PCAP_MAGIC: u32 = 0xa1b2_c3d4;
/// LINKTYPE_RAW: packets start at the IPv4/IPv6 header.
const LINKTYPE_RAW: u32 = 101;

/// Serialize a capture into pcap file bytes.
pub fn to_pcap(capture: &Capture) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + capture.len() * 96);
    // Global header.
    out.extend_from_slice(&PCAP_MAGIC.to_le_bytes());
    out.extend_from_slice(&2u16.to_le_bytes()); // version major
    out.extend_from_slice(&4u16.to_le_bytes()); // version minor
    out.extend_from_slice(&0i32.to_le_bytes()); // thiszone
    out.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
    out.extend_from_slice(&65535u32.to_le_bytes()); // snaplen
    out.extend_from_slice(&LINKTYPE_RAW.to_le_bytes());
    for rec in capture.records() {
        let bytes = rec.packet.to_wire();
        let ns = rec.time.as_nanos();
        let secs = (ns / 1_000_000_000) as u32;
        let micros = ((ns % 1_000_000_000) / 1_000) as u32;
        out.extend_from_slice(&secs.to_le_bytes());
        out.extend_from_slice(&micros.to_le_bytes());
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes()); // incl_len
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes()); // orig_len
        out.extend_from_slice(&bytes);
    }
    out
}

/// Parse pcap bytes back into `(timestamp_ns, raw packet bytes)` records.
/// Used by tests to verify the writer and by tools replaying traces.
pub fn parse_pcap(data: &[u8]) -> Option<Vec<(u64, Vec<u8>)>> {
    if data.len() < 24 {
        return None;
    }
    let magic = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    if magic != PCAP_MAGIC {
        return None;
    }
    let linktype = u32::from_le_bytes([data[20], data[21], data[22], data[23]]);
    if linktype != LINKTYPE_RAW {
        return None;
    }
    let mut records = Vec::new();
    let mut pos = 24usize;
    while pos + 16 <= data.len() {
        let secs = u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]);
        let micros =
            u32::from_le_bytes([data[pos + 4], data[pos + 5], data[pos + 6], data[pos + 7]]);
        let incl =
            u32::from_le_bytes([data[pos + 8], data[pos + 9], data[pos + 10], data[pos + 11]])
                as usize;
        pos += 16;
        let bytes = data.get(pos..pos + incl)?.to_vec();
        pos += incl;
        let ns = u64::from(secs) * 1_000_000_000 + u64::from(micros) * 1_000;
        records.push((ns, bytes));
    }
    Some(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::CapturedPacket;
    use crate::node::{IfaceId, NodeId};
    use crate::packet::Packet;
    use crate::time::SimTime;
    use crate::wire::tcp::TcpFlags;
    use std::net::Ipv4Addr;

    fn sample_capture() -> Capture {
        let mut cap = Capture::new();
        let a = Ipv4Addr::new(10, 0, 0, 1);
        let b = Ipv4Addr::new(10, 0, 0, 2);
        for i in 0..5u32 {
            cap.record(CapturedPacket {
                time: SimTime::from_nanos(u64::from(i) * 1_500_000_000),
                from_node: NodeId(0),
                from_iface: IfaceId(0),
                to_node: NodeId(1),
                to_iface: IfaceId(0),
                packet: Packet::tcp(a, b, 1000 + i as u16, 80, i, 0, TcpFlags::syn(), vec![]),
            });
        }
        cap
    }

    #[test]
    fn header_fields() {
        let bytes = to_pcap(&Capture::new());
        assert_eq!(bytes.len(), 24);
        assert_eq!(
            u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]),
            PCAP_MAGIC
        );
        assert_eq!(
            u32::from_le_bytes([bytes[20], bytes[21], bytes[22], bytes[23]]),
            101
        );
    }

    #[test]
    fn roundtrip_through_parser() {
        let cap = sample_capture();
        let bytes = to_pcap(&cap);
        let records = parse_pcap(&bytes).expect("parse back");
        assert_eq!(records.len(), 5);
        for (i, (ns, raw)) in records.iter().enumerate() {
            // Microsecond truncation preserved seconds + micros.
            assert_eq!(*ns, i as u64 * 1_500_000_000);
            let pkt = Packet::from_wire(raw).expect("raw record is a valid IP packet");
            assert_eq!(pkt.src, Ipv4Addr::new(10, 0, 0, 1));
            assert_eq!(pkt.src_port(), Some(1000 + i as u16));
        }
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_pcap(&[]).is_none());
        assert!(parse_pcap(&[0u8; 24]).is_none());
        let mut bad_linktype = to_pcap(&sample_capture());
        bad_linktype[20] = 1; // LINKTYPE_ETHERNET
        assert!(parse_pcap(&bad_linktype).is_none());
        // Truncated record payload.
        let good = to_pcap(&sample_capture());
        assert!(parse_pcap(&good[..good.len() - 3]).is_none());
    }
}
