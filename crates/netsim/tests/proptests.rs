//! Property-based tests for the netsim substrate: wire-format roundtrips,
//! checksum integrity, CIDR algebra, event ordering, and TCP data-transfer
//! invariants under arbitrary segmentation.

use proptest::prelude::*;
use std::net::Ipv4Addr;

use underradar_netsim::addr::Cidr;
use underradar_netsim::event::{EventKind, EventQueue};
use underradar_netsim::node::NodeId;
use underradar_netsim::packet::{Packet, PacketBody};
use underradar_netsim::stack::tcp::{TcpConn, TcpEvent};
use underradar_netsim::time::SimTime;
use underradar_netsim::wire::checksum;
use underradar_netsim::wire::icmp::IcmpKind;
use underradar_netsim::wire::tcp::TcpFlags;
use underradar_netsim::event::TimerToken;

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_flags() -> impl Strategy<Value = TcpFlags> {
    (0u8..64).prop_map(TcpFlags)
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    let tcp = (
        arb_ip(),
        arb_ip(),
        any::<u16>(),
        any::<u16>(),
        any::<u32>(),
        any::<u32>(),
        arb_flags(),
        proptest::collection::vec(any::<u8>(), 0..256),
        1u8..=255,
        any::<u16>(),
    )
        .prop_map(|(src, dst, sp, dp, seq, ack, flags, payload, ttl, ident)| {
            Packet::tcp(src, dst, sp, dp, seq, ack, flags, payload)
                .with_ttl(ttl)
                .with_ident(ident)
        });
    let udp = (
        arb_ip(),
        arb_ip(),
        any::<u16>(),
        any::<u16>(),
        proptest::collection::vec(any::<u8>(), 0..256),
        1u8..=255,
    )
        .prop_map(|(src, dst, sp, dp, payload, ttl)| {
            Packet::udp(src, dst, sp, dp, payload).with_ttl(ttl)
        });
    let icmp = (
        arb_ip(),
        arb_ip(),
        prop_oneof![
            (any::<u16>(), any::<u16>()).prop_map(|(i, s)| IcmpKind::EchoRequest { ident: i, seq: s }),
            (any::<u16>(), any::<u16>()).prop_map(|(i, s)| IcmpKind::EchoReply { ident: i, seq: s }),
            Just(IcmpKind::TimeExceeded),
            (0u8..16).prop_map(|c| IcmpKind::DestUnreachable { code: c }),
        ],
        proptest::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(src, dst, kind, payload)| Packet::icmp(src, dst, kind, payload));
    prop_oneof![tcp, udp, icmp]
}

proptest! {
    /// decode(encode(p)) == p for every packet the simulator can build.
    #[test]
    fn packet_wire_roundtrip(p in arb_packet()) {
        let wire = p.to_wire();
        let q = Packet::from_wire(&wire).expect("emitted packets always parse");
        prop_assert_eq!(p, q);
    }

    /// Emitted packets always carry verifiable checksums, and any single-bit
    /// flip in the IP header is caught.
    #[test]
    fn emitted_ip_header_checksum_detects_bit_flips(p in arb_packet(), bit in 0usize..(20*8)) {
        let mut wire = p.to_wire();
        prop_assume!(Packet::from_wire(&wire).is_ok());
        let byte = bit / 8;
        // Skip flips inside the checksum field itself (bytes 10..12): those
        // are detected too, but produce a different error taxonomy.
        prop_assume!(!(10..12).contains(&byte));
        wire[byte] ^= 1 << (bit % 8);
        prop_assert!(Packet::from_wire(&wire).is_err());
    }

    /// Truncating an emitted packet anywhere never panics and always errors.
    #[test]
    fn truncation_is_always_an_error(p in arb_packet(), cut in 0usize..100) {
        let wire = p.to_wire();
        prop_assume!(cut < wire.len());
        prop_assert!(Packet::from_wire(&wire[..cut]).is_err());
    }

    /// Parsing arbitrary bytes never panics.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = Packet::from_wire(&bytes);
    }

    /// RFC 1071: a buffer with its computed checksum spliced in verifies.
    #[test]
    fn checksum_splice_verifies(mut data in proptest::collection::vec(any::<u8>(), 2..512)) {
        data[0] = 0; data[1] = 0;
        let c = checksum::checksum(&data);
        data[0] = (c >> 8) as u8;
        data[1] = (c & 0xff) as u8;
        prop_assert!(checksum::verify(&data));
    }

    /// CIDR: an address is contained in every prefix derived from it.
    #[test]
    fn cidr_contains_its_seed(addr in arb_ip(), prefix in 0u8..=32) {
        let c = Cidr::new(addr, prefix);
        prop_assert!(c.contains(addr));
        prop_assert!(c.contains(c.network()));
        // nth stays inside the prefix.
        prop_assert!(c.contains(c.nth(12345)));
    }

    /// CIDR: nesting — a /24 is inside its /16.
    #[test]
    fn cidr_nesting(addr in arb_ip()) {
        let c24 = Cidr::slash24(addr);
        let c16 = Cidr::slash16(addr);
        for i in 0..8u64 {
            prop_assert!(c16.contains(c24.nth(i * 31)));
        }
    }

    /// Event queue: pops are globally ordered by (time, insertion order).
    #[test]
    fn event_queue_total_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(
                SimTime::from_nanos(t),
                EventKind::Timer { node: NodeId(0), token: TimerToken(i as u64) },
            );
        }
        let mut last: Option<(SimTime, u64)> = None;
        while let Some(e) = q.pop() {
            if let Some((lt, ls)) = last {
                prop_assert!(e.time > lt || (e.time == lt && e.seq > ls));
            }
            last = Some((e.time, e.seq));
        }
    }

    /// TCP: whatever way a byte stream is chopped into sends, the peer
    /// reassembles exactly that stream, in order.
    #[test]
    fn tcp_delivers_stream_in_order(chunks in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 1..300), 1..20)) {
        let c_ip = Ipv4Addr::new(10, 0, 0, 1);
        let s_ip = Ipv4Addr::new(10, 0, 0, 2);
        let (mut client, syn) = TcpConn::connect((c_ip, 4000), (s_ip, 80), 77);
        let syn_seg = syn.as_tcp().expect("syn").clone();
        let (mut server, syn_ack) = TcpConn::accept((s_ip, 80), (c_ip, 4000), syn_seg.seq, 1010);
        let (ack_out, _) = client.on_segment(syn_ack.as_tcp().expect("sa"));
        let _ = server.on_segment(ack_out[0].as_tcp().expect("ack"));

        let mut sent = Vec::new();
        let mut received = Vec::new();
        for chunk in &chunks {
            sent.extend_from_slice(chunk);
            for pkt in client.send(chunk) {
                let (acks, events) = server.on_segment(pkt.as_tcp().expect("data"));
                for ev in events {
                    if let TcpEvent::Data(d) = ev {
                        received.extend_from_slice(&d);
                    }
                }
                for ack in acks {
                    let _ = client.on_segment(ack.as_tcp().expect("ack"));
                }
            }
        }
        prop_assert_eq!(sent, received);
        prop_assert!(!client.has_unacked(), "everything acked");
    }

    /// TCP: feeding arbitrary segments to a fresh connection never panics.
    #[test]
    fn tcp_survives_arbitrary_segments(
        seqs in proptest::collection::vec((any::<u32>(), any::<u32>(), 0u8..64,
            proptest::collection::vec(any::<u8>(), 0..64)), 0..30)
    ) {
        let c_ip = Ipv4Addr::new(10, 0, 0, 1);
        let s_ip = Ipv4Addr::new(10, 0, 0, 2);
        let (mut conn, _syn) = TcpConn::connect((c_ip, 4000), (s_ip, 80), 0);
        for (seq, ack, flags, payload) in seqs {
            let seg = underradar_netsim::packet::TcpSegment {
                src_port: 80,
                dst_port: 4000,
                seq,
                ack,
                flags: TcpFlags(flags),
                window: 1000,
                payload,
            };
            let _ = conn.on_segment(&seg);
        }
    }

    /// Body protocol classification is stable through the wire.
    #[test]
    fn protocol_preserved(p in arb_packet()) {
        let proto_before = p.body.protocol();
        let q = Packet::from_wire(&p.to_wire()).expect("parse");
        prop_assert_eq!(proto_before, q.body.protocol());
        match (&p.body, &q.body) {
            (PacketBody::Tcp(a), PacketBody::Tcp(b)) => prop_assert_eq!(&a.payload, &b.payload),
            (PacketBody::Udp(a), PacketBody::Udp(b)) => prop_assert_eq!(&a.payload, &b.payload),
            (PacketBody::Icmp(a), PacketBody::Icmp(b)) => prop_assert_eq!(&a.payload, &b.payload),
            _ => {}
        }
    }
}
