//! Property-based tests for the netsim substrate: wire-format roundtrips,
//! checksum integrity, CIDR algebra, event ordering, and TCP data-transfer
//! invariants under arbitrary segmentation. Inputs come from the in-tree
//! seeded generator ([`underradar_netsim::testprop`]).

use std::net::Ipv4Addr;

use underradar_netsim::addr::Cidr;
use underradar_netsim::event::TimerToken;
use underradar_netsim::event::{EventKind, EventQueue};
use underradar_netsim::node::NodeId;
use underradar_netsim::packet::{Packet, PacketBody};
use underradar_netsim::stack::tcp::{TcpConn, TcpEvent};
use underradar_netsim::testprop::{cases, Gen};
use underradar_netsim::time::SimTime;
use underradar_netsim::wire::checksum;
use underradar_netsim::wire::icmp::IcmpKind;
use underradar_netsim::wire::tcp::TcpFlags;

fn arb_ip(g: &mut Gen) -> Ipv4Addr {
    Ipv4Addr::from(g.u32())
}

fn arb_packet(g: &mut Gen) -> Packet {
    match g.usize_in(0, 3) {
        0 => Packet::tcp(
            arb_ip(g),
            arb_ip(g),
            g.u16(),
            g.u16(),
            g.u32(),
            g.u32(),
            TcpFlags(g.u8_in(0, 64)),
            g.bytes(0, 256),
        )
        .with_ttl(g.u8_in(1, 255).max(1))
        .with_ident(g.u16()),
        1 => Packet::udp(arb_ip(g), arb_ip(g), g.u16(), g.u16(), g.bytes(0, 256))
            .with_ttl(g.u8_in(1, 255).max(1)),
        _ => {
            let kind = match g.usize_in(0, 4) {
                0 => IcmpKind::EchoRequest {
                    ident: g.u16(),
                    seq: g.u16(),
                },
                1 => IcmpKind::EchoReply {
                    ident: g.u16(),
                    seq: g.u16(),
                },
                2 => IcmpKind::TimeExceeded,
                _ => IcmpKind::DestUnreachable {
                    code: g.u8_in(0, 16),
                },
            };
            Packet::icmp(arb_ip(g), arb_ip(g), kind, g.bytes(0, 64))
        }
    }
}

/// decode(encode(p)) == p for every packet the simulator can build.
#[test]
fn packet_wire_roundtrip() {
    cases(256, 0xA001, |g| {
        let p = arb_packet(g);
        let wire = p.to_wire();
        let q = Packet::from_wire(&wire).expect("emitted packets always parse");
        assert_eq!(p, q);
    });
}

/// Emitted packets always carry verifiable checksums, and any single-bit
/// flip in the IP header is caught.
#[test]
fn emitted_ip_header_checksum_detects_bit_flips() {
    cases(256, 0xA002, |g| {
        let p = arb_packet(g);
        let bit = g.usize_in(0, 20 * 8);
        let mut wire = p.to_wire();
        if Packet::from_wire(&wire).is_err() {
            return;
        }
        let byte = bit / 8;
        // Skip flips inside the checksum field itself (bytes 10..12): those
        // are detected too, but produce a different error taxonomy.
        if (10..12).contains(&byte) {
            return;
        }
        wire[byte] ^= 1 << (bit % 8);
        assert!(Packet::from_wire(&wire).is_err());
    });
}

/// Truncating an emitted packet anywhere never panics and always errors.
#[test]
fn truncation_is_always_an_error() {
    cases(256, 0xA003, |g| {
        let p = arb_packet(g);
        let wire = p.to_wire();
        let cut = g.usize_in(0, 100);
        if cut >= wire.len() {
            return;
        }
        assert!(Packet::from_wire(&wire[..cut]).is_err());
    });
}

/// Parsing arbitrary bytes never panics.
#[test]
fn arbitrary_bytes_never_panic() {
    cases(512, 0xA004, |g| {
        let bytes = g.bytes(0, 600);
        let _ = Packet::from_wire(&bytes);
    });
}

/// RFC 1071: a buffer with its computed checksum spliced in verifies.
#[test]
fn checksum_splice_verifies() {
    cases(256, 0xA005, |g| {
        let mut data = g.bytes(2, 512);
        data[0] = 0;
        data[1] = 0;
        let c = checksum::checksum(&data);
        data[0] = (c >> 8) as u8;
        data[1] = (c & 0xff) as u8;
        assert!(checksum::verify(&data));
    });
}

/// CIDR: an address is contained in every prefix derived from it.
#[test]
fn cidr_contains_its_seed() {
    cases(512, 0xA006, |g| {
        let addr = arb_ip(g);
        let prefix = g.u8_in(0, 33);
        let c = Cidr::new(addr, prefix);
        assert!(c.contains(addr));
        assert!(c.contains(c.network()));
        // nth stays inside the prefix.
        assert!(c.contains(c.nth(12345)));
    });
}

/// CIDR: nesting — a /24 is inside its /16.
#[test]
fn cidr_nesting() {
    cases(512, 0xA007, |g| {
        let addr = arb_ip(g);
        let c24 = Cidr::slash24(addr);
        let c16 = Cidr::slash16(addr);
        for i in 0..8u64 {
            assert!(c16.contains(c24.nth(i * 31)));
        }
    });
}

/// Event queue: pops are globally ordered by (time, insertion order).
#[test]
fn event_queue_total_order() {
    cases(128, 0xA008, |g| {
        let n = g.usize_in(1, 200);
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(
                SimTime::from_nanos(g.u64() % 1_000),
                EventKind::Timer {
                    node: NodeId(0),
                    token: TimerToken(i as u64),
                },
            );
        }
        let mut last: Option<(SimTime, u64)> = None;
        while let Some(e) = q.pop() {
            if let Some((lt, ls)) = last {
                assert!(e.time > lt || (e.time == lt && e.seq > ls));
            }
            last = Some((e.time, e.seq));
        }
    });
}

/// TCP: whatever way a byte stream is chopped into sends, the peer
/// reassembles exactly that stream, in order.
#[test]
fn tcp_delivers_stream_in_order() {
    cases(64, 0xA009, |g| {
        let n_chunks = g.usize_in(1, 20);
        let chunks: Vec<Vec<u8>> = (0..n_chunks).map(|_| g.bytes(1, 300)).collect();
        let c_ip = Ipv4Addr::new(10, 0, 0, 1);
        let s_ip = Ipv4Addr::new(10, 0, 0, 2);
        let t0 = SimTime::ZERO;
        let (mut client, syn) = TcpConn::connect((c_ip, 4000), (s_ip, 80), 77, t0);
        let syn_seg = syn.as_tcp().expect("syn").clone();
        let (mut server, syn_ack) =
            TcpConn::accept((s_ip, 80), (c_ip, 4000), syn_seg.seq, 1010, t0);
        let (ack_out, _) = client.on_segment(syn_ack.as_tcp().expect("sa"), t0);
        let _ = server.on_segment(ack_out[0].as_tcp().expect("ack"), t0);

        let mut sent = Vec::new();
        let mut received = Vec::new();
        for chunk in &chunks {
            sent.extend_from_slice(chunk);
            for pkt in client.send(chunk, t0) {
                let (acks, events) = server.on_segment(pkt.as_tcp().expect("data"), t0);
                for ev in events {
                    if let TcpEvent::Data(d) = ev {
                        received.extend_from_slice(&d);
                    }
                }
                for ack in acks {
                    let _ = client.on_segment(ack.as_tcp().expect("ack"), t0);
                }
            }
        }
        assert_eq!(sent, received);
        assert!(!client.has_unacked(), "everything acked");
    });
}

/// TCP: feeding arbitrary segments to a fresh connection never panics.
#[test]
fn tcp_survives_arbitrary_segments() {
    cases(128, 0xA00A, |g| {
        let c_ip = Ipv4Addr::new(10, 0, 0, 1);
        let s_ip = Ipv4Addr::new(10, 0, 0, 2);
        let (mut conn, _syn) = TcpConn::connect((c_ip, 4000), (s_ip, 80), 0, SimTime::ZERO);
        for i in 0..g.usize_in(0, 30) {
            let seg = underradar_netsim::packet::TcpSegment {
                src_port: 80,
                dst_port: 4000,
                seq: g.u32(),
                ack: g.u32(),
                flags: TcpFlags(g.u8_in(0, 64)),
                window: 1000,
                payload: g.bytes(0, 64),
            };
            let _ = conn.on_segment(&seg, SimTime::from_nanos(i as u64 * 1_000_000));
        }
    });
}

/// Body protocol classification is stable through the wire.
#[test]
fn protocol_preserved() {
    cases(256, 0xA00B, |g| {
        let p = arb_packet(g);
        let proto_before = p.body.protocol();
        let q = Packet::from_wire(&p.to_wire()).expect("parse");
        assert_eq!(proto_before, q.body.protocol());
        match (&p.body, &q.body) {
            (PacketBody::Tcp(a), PacketBody::Tcp(b)) => assert_eq!(&a.payload, &b.payload),
            (PacketBody::Udp(a), PacketBody::Udp(b)) => assert_eq!(&a.payload, &b.payload),
            (PacketBody::Icmp(a), PacketBody::Icmp(b)) => assert_eq!(&a.payload, &b.payload),
            _ => {}
        }
    });
}
