//! Shared command-line front end for the `exp_*` binaries.
//!
//! Every experiment binary is `exp_main(name, run)`. Modes:
//!
//! * default — print the plain-text report, exactly as before;
//! * `--json` — run with telemetry enabled and print one JSON object
//!   `{"experiment": .., "report": .., "telemetry": <registry>}` suitable
//!   for piping into analysis tooling;
//! * `--jsonl` — stream one JSON object per row: generic experiments emit
//!   a row per report line plus a trailing telemetry row; campaign-backed
//!   binaries emit true per-trial verdict rows;
//! * `--telemetry` (or `UNDERRADAR_TELEMETRY=1`) — print the report
//!   followed by the registry's text rendering;
//! * `--trace` (or `UNDERRADAR_TRACE=1`) — run with the flight recorder
//!   live and print the report, then the trace as JSON lines, then the
//!   explainer's causal chains. The report section is byte-identical to
//!   the default mode's output.

use underradar_telemetry::{
    json, trace, Telemetry, DEFAULT_TRACE_CAPACITY, TELEMETRY_ENV, TRACE_ENV,
};

/// How the binary was asked to present its output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputMode {
    /// Plain-text report only.
    Text,
    /// Report plus a text rendering of the telemetry registry.
    TextWithTelemetry,
    /// One JSON object carrying the report and the registry.
    Json,
    /// One JSON object per row, streamed as rows complete. Campaign-backed
    /// binaries emit true per-trial rows (`exp_campaign --service --jsonl`
    /// streams them the moment each trial finishes); generic experiments
    /// emit one row per report line plus a trailing telemetry row.
    Jsonl,
    /// Report plus the flight-recorder trace (JSON lines) and the
    /// explainer's per-trial causal chains.
    Trace,
}

/// Decide the output mode from flags plus the telemetry/trace env vars.
pub fn output_mode<I: IntoIterator<Item = String>>(args: I) -> OutputMode {
    mode_from(
        std::env::var(TELEMETRY_ENV).ok(),
        std::env::var(TRACE_ENV).ok(),
        args,
    )
}

fn env_set(v: Option<String>) -> bool {
    v.is_some_and(|v| !v.is_empty() && v != "0")
}

/// [`output_mode`] with the env vars' values passed explicitly (testable
/// regardless of the ambient environment). `--trace` outranks the other
/// flags: a trace already subsumes the registry, and the JSON envelope
/// deliberately excludes trace records.
fn mode_from<I: IntoIterator<Item = String>>(
    tel_env: Option<String>,
    trace_env: Option<String>,
    args: I,
) -> OutputMode {
    let mut mode = if env_set(trace_env) {
        OutputMode::Trace
    } else if env_set(tel_env) {
        OutputMode::TextWithTelemetry
    } else {
        OutputMode::Text
    };
    for arg in args {
        match arg.as_str() {
            "--trace" => mode = OutputMode::Trace,
            "--jsonl" if mode != OutputMode::Trace => mode = OutputMode::Jsonl,
            "--json" if !matches!(mode, OutputMode::Trace | OutputMode::Jsonl) => {
                mode = OutputMode::Json
            }
            "--telemetry" if mode == OutputMode::Text => mode = OutputMode::TextWithTelemetry,
            _ => {}
        }
    }
    mode
}

/// Render the `--json` envelope for one experiment.
pub fn render_json(name: &str, report: &str, registry: &underradar_telemetry::Registry) -> String {
    let mut out = String::from("{");
    json::push_key(&mut out, "experiment");
    json::push_str_value(&mut out, name);
    out.push(',');
    json::push_key(&mut out, "report");
    json::push_str_value(&mut out, report);
    out.push(',');
    json::push_key(&mut out, "telemetry");
    out.push_str(&registry.to_json());
    out.push('}');
    out
}

/// Render the `--jsonl` stream for a generic experiment: one JSON object
/// per report line (self-describing, pipeline-friendly) followed by one
/// telemetry object. Campaign-backed binaries emit true per-trial rows
/// instead (see `exp_campaign`).
pub fn render_jsonl(name: &str, report: &str, registry: &underradar_telemetry::Registry) -> String {
    let mut out = String::new();
    for (i, line) in report.lines().enumerate() {
        out.push('{');
        json::push_key(&mut out, "experiment");
        json::push_str_value(&mut out, name);
        out.push(',');
        json::push_key(&mut out, "line");
        out.push_str(&i.to_string());
        out.push(',');
        json::push_key(&mut out, "text");
        json::push_str_value(&mut out, line);
        out.push_str("}\n");
    }
    out.push('{');
    json::push_key(&mut out, "experiment");
    json::push_str_value(&mut out, name);
    out.push(',');
    json::push_key(&mut out, "telemetry");
    out.push_str(&registry.to_json());
    out.push_str("}\n");
    out
}

/// The whole body of an `exp_*` binary.
pub fn exp_main(name: &str, run: fn(&Telemetry) -> String) {
    match output_mode(std::env::args().skip(1)) {
        OutputMode::Text => {
            print!("{}", run(&Telemetry::disabled()));
        }
        OutputMode::TextWithTelemetry => {
            let tel = Telemetry::enabled();
            let report = run(&tel);
            print!("{report}");
            println!("--- telemetry ---");
            print!("{}", tel.snapshot().render_text());
        }
        OutputMode::Json => {
            let tel = Telemetry::enabled();
            let report = run(&tel);
            println!("{}", render_json(name, &report, &tel.snapshot()));
        }
        OutputMode::Jsonl => {
            let tel = Telemetry::enabled();
            let report = run(&tel);
            print!("{}", render_jsonl(name, &report, &tel.snapshot()));
        }
        OutputMode::Trace => {
            let tel = Telemetry::with_trace(DEFAULT_TRACE_CAPACITY);
            let report = run(&tel);
            print!("{}", render_trace(&report, &tel.snapshot()));
        }
    }
}

/// Render the `--trace` output: the unchanged report, the trace as JSON
/// lines, then the explainer's causal chains.
pub fn render_trace(report: &str, registry: &underradar_telemetry::Registry) -> String {
    let mut out = String::from(report);
    out.push_str("--- trace ---\n");
    out.push_str(&registry.trace_jsonl());
    out.push_str("--- explain ---\n");
    out.push_str(&trace::render_chains(&trace::explain(&registry.trace)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn json_flag_wins() {
        assert_eq!(mode_from(None, None, args(&[])), OutputMode::Text);
        assert_eq!(mode_from(None, None, args(&["--json"])), OutputMode::Json);
        assert_eq!(
            mode_from(None, None, args(&["--telemetry"])),
            OutputMode::TextWithTelemetry
        );
        assert_eq!(
            mode_from(None, None, args(&["--telemetry", "--json"])),
            OutputMode::Json
        );
    }

    #[test]
    fn jsonl_flag_outranks_json_but_not_trace() {
        assert_eq!(mode_from(None, None, args(&["--jsonl"])), OutputMode::Jsonl);
        assert_eq!(
            mode_from(None, None, args(&["--json", "--jsonl"])),
            OutputMode::Jsonl
        );
        assert_eq!(
            mode_from(None, None, args(&["--jsonl", "--json"])),
            OutputMode::Jsonl
        );
        assert_eq!(
            mode_from(None, None, args(&["--jsonl", "--trace"])),
            OutputMode::Trace
        );
        assert_eq!(
            mode_from(None, None, args(&["--trace", "--jsonl"])),
            OutputMode::Trace
        );
    }

    #[test]
    fn jsonl_rendering_is_one_object_per_line_plus_telemetry() {
        let tel = Telemetry::enabled();
        tel.count("x", 2);
        let out = render_jsonl("e00", "alpha\nbeta \"q\"\n", &tel.snapshot());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"experiment\":\"e00\",\"line\":0,\"text\":\"alpha\"}"
        );
        assert_eq!(
            lines[1],
            "{\"experiment\":\"e00\",\"line\":1,\"text\":\"beta \\\"q\\\"\"}"
        );
        assert!(lines[2].starts_with("{\"experiment\":\"e00\",\"telemetry\":{"));
        assert!(lines[2].contains("\"counters\":{\"x\":2}"));
    }

    #[test]
    fn env_var_enables_telemetry_output() {
        let on = |v: &str| mode_from(Some(v.to_string()), None, args(&[]));
        assert_eq!(on("1"), OutputMode::TextWithTelemetry);
        assert_eq!(on("0"), OutputMode::Text);
        assert_eq!(on(""), OutputMode::Text);
        assert_eq!(
            mode_from(Some("1".to_string()), None, args(&["--json"])),
            OutputMode::Json
        );
    }

    #[test]
    fn trace_flag_and_env_outrank_other_modes() {
        assert_eq!(mode_from(None, None, args(&["--trace"])), OutputMode::Trace);
        assert_eq!(
            mode_from(None, None, args(&["--trace", "--json"])),
            OutputMode::Trace
        );
        assert_eq!(
            mode_from(None, None, args(&["--json", "--trace"])),
            OutputMode::Trace
        );
        assert_eq!(
            mode_from(None, Some("1".to_string()), args(&[])),
            OutputMode::Trace
        );
        assert_eq!(
            mode_from(None, Some("0".to_string()), args(&[])),
            OutputMode::Text
        );
    }

    #[test]
    fn trace_rendering_starts_with_the_unchanged_report() {
        let tel = Telemetry::with_trace(8);
        tel.tracer().record(underradar_telemetry::TraceRecord {
            t_ns: 5,
            seq: 0,
            stage: "stream",
            kind: "ooo_held",
            flow: None,
            fields: vec![],
        });
        let out = render_trace("report line\n", &tel.snapshot());
        assert!(out.starts_with("report line\n--- trace ---\n"));
        assert!(out.contains("{\"kind\":\"ooo_held\""));
        assert!(out.contains("--- explain ---\n"));
        assert!(out.contains("because=stream.ooo_held@t=5ns"));
    }

    #[test]
    fn json_envelope_escapes_the_report() {
        let tel = Telemetry::enabled();
        tel.count("x", 1);
        let out = render_json("e00", "line1\nline2\t\"q\"", &tel.snapshot());
        assert!(out.starts_with("{\"experiment\":\"e00\",\"report\":\"line1\\nline2"));
        assert!(out.contains("\\\"q\\\""));
        assert!(out.contains("\"telemetry\":{\"counters\":{\"x\":1}"));
        assert!(out.ends_with('}'));
    }
}
