//! Shared command-line front end for the `exp_*` binaries.
//!
//! Every experiment binary is `exp_main(name, run)`. Modes:
//!
//! * default — print the plain-text report, exactly as before;
//! * `--json` — run with telemetry enabled and print one JSON object
//!   `{"experiment": .., "report": .., "telemetry": <registry>}` suitable
//!   for piping into analysis tooling;
//! * `--jsonl` — stream one JSON object per row: generic experiments emit
//!   a row per report line plus a trailing telemetry row; campaign-backed
//!   binaries emit true per-trial verdict rows;
//! * `--telemetry` (or `UNDERRADAR_TELEMETRY=1`) — print the report
//!   followed by the registry's text rendering;
//! * `--trace` (or `UNDERRADAR_TRACE=1`) — run with the flight recorder
//!   live and print the report, then the trace as JSON lines, then the
//!   explainer's causal chains. The report section is byte-identical to
//!   the default mode's output;
//! * `--trace-capacity N` (or `UNDERRADAR_TRACE_CAPACITY=N`) — size the
//!   flight-recorder ring for traced runs (default 4096 records). The
//!   knob only tunes the ring: it never turns tracing on by itself.

use underradar_telemetry::{
    json, trace, Telemetry, DEFAULT_TRACE_CAPACITY, TELEMETRY_ENV, TRACE_CAPACITY_ENV, TRACE_ENV,
};

/// How the binary was asked to present its output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputMode {
    /// Plain-text report only.
    Text,
    /// Report plus a text rendering of the telemetry registry.
    TextWithTelemetry,
    /// One JSON object carrying the report and the registry.
    Json,
    /// One JSON object per row, streamed as rows complete. Campaign-backed
    /// binaries emit true per-trial rows (`exp_campaign --service --jsonl`
    /// streams them the moment each trial finishes); generic experiments
    /// emit one row per report line plus a trailing telemetry row.
    Jsonl,
    /// Report plus the flight-recorder trace (JSON lines) and the
    /// explainer's per-trial causal chains.
    Trace,
}

/// Typed accumulation of the output flags. Each `--json` / `--jsonl` /
/// `--telemetry` / `--trace` occurrence (or its env-var equivalent) sets
/// an independent bit; [`OutputSpec::mode`] resolves any combination with
/// one precedence order — trace ≻ jsonl ≻ json ≻ telemetry ≻ text — so
/// flag order never matters and every combination is defined. A trace
/// subsumes the registry, and the JSON envelopes deliberately exclude
/// trace records, which is why trace outranks everything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutputSpec {
    json: bool,
    jsonl: bool,
    telemetry: bool,
    trace: bool,
    trace_capacity: Option<usize>,
}

impl OutputSpec {
    /// A spec with no flags set (plain-text report).
    pub fn new() -> OutputSpec {
        OutputSpec::default()
    }

    /// Request the `--json` envelope.
    pub fn json(mut self, on: bool) -> OutputSpec {
        self.json = on;
        self
    }

    /// Request the `--jsonl` row stream.
    pub fn jsonl(mut self, on: bool) -> OutputSpec {
        self.jsonl = on;
        self
    }

    /// Request the `--telemetry` text appendix.
    pub fn telemetry(mut self, on: bool) -> OutputSpec {
        self.telemetry = on;
        self
    }

    /// Request the `--trace` flight-recorder dump.
    pub fn trace(mut self, on: bool) -> OutputSpec {
        self.trace = on;
        self
    }

    /// Override the flight-recorder ring capacity (tunes `--trace` runs;
    /// never turns tracing on by itself).
    pub fn trace_capacity(mut self, capacity: Option<usize>) -> OutputSpec {
        self.trace_capacity = capacity;
        self
    }

    /// The configured ring capacity override, if any.
    pub fn trace_capacity_value(self) -> Option<usize> {
        self.trace_capacity
    }

    /// Parse a spec from CLI arguments plus the ambient telemetry/trace
    /// env vars.
    pub fn from_cli<I: IntoIterator<Item = String>>(args: I) -> OutputSpec {
        Self::from_parts(
            std::env::var(TELEMETRY_ENV).ok(),
            std::env::var(TRACE_ENV).ok(),
            std::env::var(TRACE_CAPACITY_ENV).ok(),
            args,
        )
    }

    /// [`OutputSpec::from_cli`] with the env vars' values passed
    /// explicitly (testable regardless of the ambient environment).
    pub fn from_parts<I: IntoIterator<Item = String>>(
        tel_env: Option<String>,
        trace_env: Option<String>,
        capacity_env: Option<String>,
        args: I,
    ) -> OutputSpec {
        let mut spec = OutputSpec::new()
            .telemetry(env_set(tel_env))
            .trace(env_set(trace_env))
            .trace_capacity(trace::capacity_from_env(capacity_env));
        let args: Vec<String> = args.into_iter().collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--json" => spec.json = true,
                "--jsonl" => spec.jsonl = true,
                "--telemetry" => spec.telemetry = true,
                "--trace" => spec.trace = true,
                "--trace-capacity" => {
                    if let Some(v) = args.get(i + 1) {
                        if let Some(c) = trace::capacity_from_env(Some(v.clone())) {
                            spec.trace_capacity = Some(c);
                            i += 1;
                        }
                    }
                }
                other => {
                    if let Some(v) = other.strip_prefix("--trace-capacity=") {
                        if let Some(c) = trace::capacity_from_env(Some(v.to_string())) {
                            spec.trace_capacity = Some(c);
                        }
                    }
                }
            }
            i += 1;
        }
        spec
    }

    /// Resolve the accumulated flags into one output mode.
    pub fn mode(self) -> OutputMode {
        if self.trace {
            OutputMode::Trace
        } else if self.jsonl {
            OutputMode::Jsonl
        } else if self.json {
            OutputMode::Json
        } else if self.telemetry {
            OutputMode::TextWithTelemetry
        } else {
            OutputMode::Text
        }
    }

    /// The telemetry handle an experiment should run under: disabled for
    /// plain text, trace-carrying for `--trace`, enabled otherwise.
    pub fn telemetry_handle(self) -> Telemetry {
        match self.mode() {
            OutputMode::Text => Telemetry::disabled(),
            OutputMode::Trace => {
                Telemetry::with_trace(self.trace_capacity.unwrap_or(DEFAULT_TRACE_CAPACITY))
            }
            _ => Telemetry::enabled(),
        }
    }

    /// Render the complete stdout for this spec — the single place the
    /// mode-to-bytes mapping lives. Byte-identical to what each mode has
    /// always printed (pinned by the CLI golden test).
    pub fn render(
        self,
        name: &str,
        report: &str,
        registry: &underradar_telemetry::Registry,
    ) -> String {
        match self.mode() {
            OutputMode::Text => report.to_string(),
            OutputMode::TextWithTelemetry => {
                format!("{report}--- telemetry ---\n{}", registry.render_text())
            }
            OutputMode::Json => {
                let mut out = render_json(name, report, registry);
                out.push('\n');
                out
            }
            OutputMode::Jsonl => render_jsonl(name, report, registry),
            OutputMode::Trace => render_trace(report, registry),
        }
    }
}

/// Decide the output mode from flags plus the telemetry/trace env vars.
pub fn output_mode<I: IntoIterator<Item = String>>(args: I) -> OutputMode {
    OutputSpec::from_cli(args).mode()
}

fn env_set(v: Option<String>) -> bool {
    v.is_some_and(|v| !v.is_empty() && v != "0")
}

#[cfg(test)]
fn mode_from<I: IntoIterator<Item = String>>(
    tel_env: Option<String>,
    trace_env: Option<String>,
    args: I,
) -> OutputMode {
    OutputSpec::from_parts(tel_env, trace_env, None, args).mode()
}

/// Render the `--json` envelope for one experiment.
pub fn render_json(name: &str, report: &str, registry: &underradar_telemetry::Registry) -> String {
    let mut out = String::from("{");
    json::push_key(&mut out, "experiment");
    json::push_str_value(&mut out, name);
    out.push(',');
    json::push_key(&mut out, "report");
    json::push_str_value(&mut out, report);
    out.push(',');
    json::push_key(&mut out, "telemetry");
    out.push_str(&registry.to_json());
    out.push('}');
    out
}

/// Render the `--jsonl` stream for a generic experiment: one JSON object
/// per report line (self-describing, pipeline-friendly) followed by one
/// telemetry object. Campaign-backed binaries emit true per-trial rows
/// instead (see `exp_campaign`).
pub fn render_jsonl(name: &str, report: &str, registry: &underradar_telemetry::Registry) -> String {
    let mut out = String::new();
    for (i, line) in report.lines().enumerate() {
        out.push('{');
        json::push_key(&mut out, "experiment");
        json::push_str_value(&mut out, name);
        out.push(',');
        json::push_key(&mut out, "line");
        out.push_str(&i.to_string());
        out.push(',');
        json::push_key(&mut out, "text");
        json::push_str_value(&mut out, line);
        out.push_str("}\n");
    }
    out.push('{');
    json::push_key(&mut out, "experiment");
    json::push_str_value(&mut out, name);
    out.push(',');
    json::push_key(&mut out, "telemetry");
    out.push_str(&registry.to_json());
    out.push_str("}\n");
    out
}

/// The whole body of an `exp_*` binary.
pub fn exp_main(name: &str, run: fn(&Telemetry) -> String) {
    let spec = OutputSpec::from_cli(std::env::args().skip(1));
    let tel = spec.telemetry_handle();
    let report = run(&tel);
    print!("{}", spec.render(name, &report, &tel.snapshot()));
}

/// Render the `--trace` output: the unchanged report, the trace as JSON
/// lines, then the explainer's causal chains.
pub fn render_trace(report: &str, registry: &underradar_telemetry::Registry) -> String {
    let mut out = String::from(report);
    out.push_str("--- trace ---\n");
    out.push_str(&registry.trace_jsonl());
    out.push_str("--- explain ---\n");
    out.push_str(&trace::render_chains(&trace::explain(&registry.trace)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn json_flag_wins() {
        assert_eq!(mode_from(None, None, args(&[])), OutputMode::Text);
        assert_eq!(mode_from(None, None, args(&["--json"])), OutputMode::Json);
        assert_eq!(
            mode_from(None, None, args(&["--telemetry"])),
            OutputMode::TextWithTelemetry
        );
        assert_eq!(
            mode_from(None, None, args(&["--telemetry", "--json"])),
            OutputMode::Json
        );
    }

    #[test]
    fn jsonl_flag_outranks_json_but_not_trace() {
        assert_eq!(mode_from(None, None, args(&["--jsonl"])), OutputMode::Jsonl);
        assert_eq!(
            mode_from(None, None, args(&["--json", "--jsonl"])),
            OutputMode::Jsonl
        );
        assert_eq!(
            mode_from(None, None, args(&["--jsonl", "--json"])),
            OutputMode::Jsonl
        );
        assert_eq!(
            mode_from(None, None, args(&["--jsonl", "--trace"])),
            OutputMode::Trace
        );
        assert_eq!(
            mode_from(None, None, args(&["--trace", "--jsonl"])),
            OutputMode::Trace
        );
    }

    #[test]
    fn trace_capacity_flag_and_env_tune_the_ring() {
        let spec = OutputSpec::from_parts(
            None,
            None,
            None,
            args(&["--trace", "--trace-capacity", "128"]),
        );
        assert_eq!(spec.trace_capacity_value(), Some(128));
        assert_eq!(spec.mode(), OutputMode::Trace);
        let eq =
            OutputSpec::from_parts(None, None, None, args(&["--trace", "--trace-capacity=64"]));
        assert_eq!(eq.trace_capacity_value(), Some(64));
        // Capacity alone never turns tracing on.
        let plain = OutputSpec::from_parts(None, None, None, args(&["--trace-capacity", "64"]));
        assert_eq!(plain.mode(), OutputMode::Text);
        assert_eq!(plain.trace_capacity_value(), Some(64));
        // The env var seeds the capacity; an explicit flag overrides it.
        let env = OutputSpec::from_parts(
            None,
            Some("1".to_string()),
            Some("32".to_string()),
            args(&[]),
        );
        assert_eq!(env.trace_capacity_value(), Some(32));
        assert_eq!(env.mode(), OutputMode::Trace);
        let both = OutputSpec::from_parts(
            None,
            None,
            Some("32".to_string()),
            args(&["--trace-capacity", "16"]),
        );
        assert_eq!(both.trace_capacity_value(), Some(16));
        // Invalid or missing values are ignored (and don't eat flags).
        let bad = OutputSpec::from_parts(None, None, None, args(&["--trace-capacity", "abc"]));
        assert_eq!(bad.trace_capacity_value(), None);
        let tail = OutputSpec::from_parts(None, None, None, args(&["--trace-capacity", "--json"]));
        assert_eq!(tail.trace_capacity_value(), None);
        assert_eq!(tail.mode(), OutputMode::Json);
    }

    #[test]
    fn jsonl_rendering_is_one_object_per_line_plus_telemetry() {
        let tel = Telemetry::enabled();
        tel.count("x", 2);
        let out = render_jsonl("e00", "alpha\nbeta \"q\"\n", &tel.snapshot());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"experiment\":\"e00\",\"line\":0,\"text\":\"alpha\"}"
        );
        assert_eq!(
            lines[1],
            "{\"experiment\":\"e00\",\"line\":1,\"text\":\"beta \\\"q\\\"\"}"
        );
        assert!(lines[2].starts_with("{\"experiment\":\"e00\",\"telemetry\":{"));
        assert!(lines[2].contains("\"counters\":{\"x\":2}"));
    }

    #[test]
    fn env_var_enables_telemetry_output() {
        let on = |v: &str| mode_from(Some(v.to_string()), None, args(&[]));
        assert_eq!(on("1"), OutputMode::TextWithTelemetry);
        assert_eq!(on("0"), OutputMode::Text);
        assert_eq!(on(""), OutputMode::Text);
        assert_eq!(
            mode_from(Some("1".to_string()), None, args(&["--json"])),
            OutputMode::Json
        );
    }

    #[test]
    fn trace_flag_and_env_outrank_other_modes() {
        assert_eq!(mode_from(None, None, args(&["--trace"])), OutputMode::Trace);
        assert_eq!(
            mode_from(None, None, args(&["--trace", "--json"])),
            OutputMode::Trace
        );
        assert_eq!(
            mode_from(None, None, args(&["--json", "--trace"])),
            OutputMode::Trace
        );
        assert_eq!(
            mode_from(None, Some("1".to_string()), args(&[])),
            OutputMode::Trace
        );
        assert_eq!(
            mode_from(None, Some("0".to_string()), args(&[])),
            OutputMode::Text
        );
    }

    #[test]
    fn trace_rendering_starts_with_the_unchanged_report() {
        let tel = Telemetry::with_trace(8);
        tel.tracer().record(underradar_telemetry::TraceRecord {
            t_ns: 5,
            seq: 0,
            stage: "stream",
            kind: "ooo_held",
            flow: None,
            fields: vec![],
        });
        let out = render_trace("report line\n", &tel.snapshot());
        assert!(out.starts_with("report line\n--- trace ---\n"));
        assert!(out.contains("{\"kind\":\"ooo_held\""));
        assert!(out.contains("--- explain ---\n"));
        assert!(out.contains("because=stream.ooo_held@t=5ns"));
    }

    #[test]
    fn json_envelope_escapes_the_report() {
        let tel = Telemetry::enabled();
        tel.count("x", 1);
        let out = render_json("e00", "line1\nline2\t\"q\"", &tel.snapshot());
        assert!(out.starts_with("{\"experiment\":\"e00\",\"report\":\"line1\\nline2"));
        assert!(out.contains("\\\"q\\\""));
        assert!(out.contains("\"telemetry\":{\"counters\":{\"x\":1}"));
        assert!(out.ends_with('}'));
    }
}
