//! Shared command-line front end for the `exp_*` binaries.
//!
//! Every experiment binary is `exp_main(name, run)`. Modes:
//!
//! * default — print the plain-text report, exactly as before;
//! * `--json` — run with telemetry enabled and print one JSON object
//!   `{"experiment": .., "report": .., "telemetry": <registry>}` suitable
//!   for piping into analysis tooling;
//! * `--telemetry` (or `UNDERRADAR_TELEMETRY=1`) — print the report
//!   followed by the registry's text rendering.

use underradar_telemetry::{json, Telemetry, TELEMETRY_ENV};

/// How the binary was asked to present its output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputMode {
    /// Plain-text report only.
    Text,
    /// Report plus a text rendering of the telemetry registry.
    TextWithTelemetry,
    /// One JSON object carrying the report and the registry.
    Json,
}

/// Decide the output mode from flags plus the telemetry env var.
pub fn output_mode<I: IntoIterator<Item = String>>(args: I) -> OutputMode {
    mode_from(std::env::var(TELEMETRY_ENV).ok(), args)
}

/// [`output_mode`] with the env var's value passed explicitly (testable
/// regardless of the ambient environment).
fn mode_from<I: IntoIterator<Item = String>>(env: Option<String>, args: I) -> OutputMode {
    let mut mode = if env.is_some_and(|v| !v.is_empty() && v != "0") {
        OutputMode::TextWithTelemetry
    } else {
        OutputMode::Text
    };
    for arg in args {
        match arg.as_str() {
            "--json" => mode = OutputMode::Json,
            "--telemetry" if mode == OutputMode::Text => mode = OutputMode::TextWithTelemetry,
            _ => {}
        }
    }
    mode
}

/// Render the `--json` envelope for one experiment.
pub fn render_json(name: &str, report: &str, registry: &underradar_telemetry::Registry) -> String {
    let mut out = String::from("{");
    json::push_key(&mut out, "experiment");
    json::push_str_value(&mut out, name);
    out.push(',');
    json::push_key(&mut out, "report");
    json::push_str_value(&mut out, report);
    out.push(',');
    json::push_key(&mut out, "telemetry");
    out.push_str(&registry.to_json());
    out.push('}');
    out
}

/// The whole body of an `exp_*` binary.
pub fn exp_main(name: &str, run: fn(&Telemetry) -> String) {
    match output_mode(std::env::args().skip(1)) {
        OutputMode::Text => {
            print!("{}", run(&Telemetry::disabled()));
        }
        OutputMode::TextWithTelemetry => {
            let tel = Telemetry::enabled();
            let report = run(&tel);
            print!("{report}");
            println!("--- telemetry ---");
            print!("{}", tel.snapshot().render_text());
        }
        OutputMode::Json => {
            let tel = Telemetry::enabled();
            let report = run(&tel);
            println!("{}", render_json(name, &report, &tel.snapshot()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn json_flag_wins() {
        assert_eq!(mode_from(None, args(&[])), OutputMode::Text);
        assert_eq!(mode_from(None, args(&["--json"])), OutputMode::Json);
        assert_eq!(
            mode_from(None, args(&["--telemetry"])),
            OutputMode::TextWithTelemetry
        );
        assert_eq!(
            mode_from(None, args(&["--telemetry", "--json"])),
            OutputMode::Json
        );
    }

    #[test]
    fn env_var_enables_telemetry_output() {
        let on = |v: &str| mode_from(Some(v.to_string()), args(&[]));
        assert_eq!(on("1"), OutputMode::TextWithTelemetry);
        assert_eq!(on("0"), OutputMode::Text);
        assert_eq!(on(""), OutputMode::Text);
        assert_eq!(
            mode_from(Some("1".to_string()), args(&["--json"])),
            OutputMode::Json
        );
    }

    #[test]
    fn json_envelope_escapes_the_report() {
        let tel = Telemetry::enabled();
        tel.count("x", 1);
        let out = render_json("e00", "line1\nline2\t\"q\"", &tel.snapshot());
        assert!(out.starts_with("{\"experiment\":\"e00\",\"report\":\"line1\\nline2"));
        assert!(out.contains("\\\"q\\\""));
        assert!(out.contains("\"telemetry\":{\"counters\":{\"x\":1}"));
        assert!(out.ends_with('}'));
    }
}
