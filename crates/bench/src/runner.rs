//! Seeded, sharded trial execution.
//!
//! Experiments are pure functions, so fanning them (or their inner
//! parameter sweeps) across OS threads changes wall-clock time and nothing
//! else — results come back in item order and every trial gets a seed
//! derived only from the master seed and its index, never from scheduling.
//! This is how `run_all` regenerates all tables in parallel and how sweeps
//! like E6's cover-count scan use all cores.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Identity of one trial within a sharded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialSpec {
    /// Position of the trial's item in the input slice (and of its result
    /// in the output).
    pub index: usize,
    /// Deterministic per-trial seed: a function of the master seed and
    /// `index` only, so any worker executing the trial produces the same
    /// stream.
    pub seed: u64,
}

/// SplitMix64 — scrambles (master, index) into a well-mixed per-trial seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed trial `index` receives under `master_seed`.
pub fn trial_seed(master_seed: u64, index: usize) -> u64 {
    splitmix64(master_seed ^ splitmix64(index as u64))
}

/// Run `f` over every item on a shared pool of `std::thread` workers and
/// return the results in item order.
///
/// Workers pull items from an atomic cursor (no static partitioning, so an
/// expensive early item does not serialize the tail behind it). `f` must
/// draw randomness only from `TrialSpec::seed`; under that contract the
/// output is identical for any worker count, including 1.
pub fn run_sharded<I, T, F>(items: &[I], master_seed: u64, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I, TrialSpec) -> T + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= n {
                    break;
                }
                let spec = TrialSpec {
                    index,
                    seed: trial_seed(master_seed, index),
                };
                let out = f(&items[index], spec);
                results.lock().expect("runner poisoned: a trial panicked")[index] = Some(out);
            });
        }
    });
    results
        .into_inner()
        .expect("runner poisoned: a trial panicked")
        .into_iter()
        .map(|slot| slot.expect("every index visited exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = run_sharded(&items, 1, |&i, spec| {
            assert_eq!(i, spec.index);
            i * 2
        });
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let items = [(); 64];
        let a = run_sharded(&items, 42, |_, spec| spec.seed);
        let b = run_sharded(&items, 42, |_, spec| spec.seed);
        assert_eq!(a, b, "same master seed, same trial seeds");
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len(), "trial seeds do not collide");
        let c = run_sharded(&items, 43, |_, spec| spec.seed);
        assert_ne!(a, c, "different master seed diverges");
    }

    #[test]
    fn empty_input_and_single_item() {
        let none: Vec<u8> = Vec::new();
        assert!(run_sharded(&none, 0, |_, _| 0u8).is_empty());
        assert_eq!(run_sharded(&[7u8], 0, |&x, _| x), vec![7]);
    }

    #[test]
    fn uneven_work_still_fills_every_slot() {
        // Early items are much slower than late ones; the atomic cursor
        // keeps all workers busy and order is still preserved.
        let items: Vec<u64> = (0..32).collect();
        let out = run_sharded(&items, 9, |&i, _| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i
        });
        assert_eq!(out, items);
    }
}
