//! Seeded, sharded trial execution.
//!
//! Experiments are pure functions, so fanning them (or their inner
//! parameter sweeps) across OS threads changes wall-clock time and nothing
//! else — results come back in item order and every trial gets a seed
//! derived only from the master seed and its index, never from scheduling.
//! This is how `run_all` regenerates all tables in parallel and how sweeps
//! like E6's cover-count scan use all cores.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Identity of one trial within a sharded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialSpec {
    /// Position of the trial's item in the input slice (and of its result
    /// in the output).
    pub index: usize,
    /// Deterministic per-trial seed: a function of the master seed and
    /// `index` only, so any worker executing the trial produces the same
    /// stream.
    pub seed: u64,
}

/// The seed trial `index` receives under `master_seed`. Derivation uses
/// the workspace's single shared SplitMix64 finalizer
/// ([`underradar_netsim::rng::splitmix64_mix`]) — the same function
/// `campaign::seed` builds on — so the two paths cannot silently drift.
pub fn trial_seed(master_seed: u64, index: usize) -> u64 {
    use underradar_netsim::rng::splitmix64_mix;
    splitmix64_mix(master_seed ^ splitmix64_mix(index as u64))
}

/// Run `f` over every item on a shared pool of `std::thread` workers and
/// return the results in item order.
///
/// Workers pull items from an atomic cursor (no static partitioning, so an
/// expensive early item does not serialize the tail behind it). `f` must
/// draw randomness only from `TrialSpec::seed`; under that contract the
/// output is identical for any worker count, including 1.
pub fn run_sharded<I, T, F>(items: &[I], master_seed: u64, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I, TrialSpec) -> T + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= n {
                    break;
                }
                let spec = TrialSpec {
                    index,
                    seed: trial_seed(master_seed, index),
                };
                let out = f(&items[index], spec);
                results.lock().expect("runner poisoned: a trial panicked")[index] = Some(out);
            });
        }
    });
    results
        .into_inner()
        .expect("runner poisoned: a trial panicked")
        .into_iter()
        .map(|slot| slot.expect("every index visited exactly once"))
        .collect()
}

/// Wall-clock accumulator for named work stages (`prepare`, `run`,
/// `score`, …). Shared across workers; lock contention is per stage
/// completion, not per sample, so it does not perturb what it measures.
#[derive(Debug, Default)]
pub struct StageClock {
    stages: Mutex<BTreeMap<&'static str, (Duration, u64)>>,
}

impl StageClock {
    /// Time `f` under `stage`, accumulating elapsed wall time and a call
    /// count.
    pub fn time<R>(&self, stage: &'static str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        let elapsed = start.elapsed();
        let mut stages = self.stages.lock().expect("stage clock poisoned");
        let entry = stages.entry(stage).or_insert((Duration::ZERO, 0));
        entry.0 += elapsed;
        entry.1 += 1;
        out
    }

    /// Accumulated `(stage, total, calls)` rows in stage-name order.
    pub fn rows(&self) -> Vec<(&'static str, Duration, u64)> {
        self.stages
            .lock()
            .expect("stage clock poisoned")
            .iter()
            .map(|(&stage, &(total, calls))| (stage, total, calls))
            .collect()
    }
}

/// One worker thread's wall-clock accounting over a profiled run.
#[derive(Debug, Clone, Copy)]
pub struct WorkerProfile {
    /// Time spent inside trial closures.
    pub busy: Duration,
    /// Lifetime minus busy: cursor contention plus tail starvation while
    /// other workers drain the last items.
    pub idle: Duration,
    /// Trials this worker executed.
    pub trials: u64,
}

/// Wall-clock profile of one [`run_sharded_profiled`] call. Timings are
/// real time, not simulated time — render them to stderr or behind an
/// explicit flag, never into deterministic report output.
#[derive(Debug)]
pub struct RunProfile {
    /// End-to-end wall time of the sharded region.
    pub wall: Duration,
    /// Per-worker busy/idle split, in spawn order.
    pub workers: Vec<WorkerProfile>,
    /// Per-stage totals from the run's [`StageClock`].
    pub stages: Vec<(&'static str, Duration, u64)>,
}

impl RunProfile {
    /// Render the profile footer: run wall time, each worker's busy/idle
    /// split, and per-stage totals.
    pub fn render_footer(&self) -> String {
        let mut out = format!(
            "--- profile ---\nwall {:.3}s across {} workers\n",
            self.wall.as_secs_f64(),
            self.workers.len()
        );
        for (i, w) in self.workers.iter().enumerate() {
            out.push_str(&format!(
                "worker {i}: busy {:.3}s idle {:.3}s trials {}\n",
                w.busy.as_secs_f64(),
                w.idle.as_secs_f64(),
                w.trials
            ));
        }
        for (stage, total, calls) in &self.stages {
            out.push_str(&format!(
                "stage {stage}: {:.3}s over {calls} calls\n",
                total.as_secs_f64()
            ));
        }
        out
    }
}

/// [`run_sharded`] plus wall-clock profiling: the closure also receives a
/// [`StageClock`] for timing its internal stages, and the return carries a
/// [`RunProfile`] with per-worker busy/idle splits. Results are identical
/// to the unprofiled path — the instrumentation reads clocks around the
/// closure, never inside the work.
pub fn run_sharded_profiled<I, T, F>(items: &[I], master_seed: u64, f: F) -> (Vec<T>, RunProfile)
where
    I: Sync,
    T: Send,
    F: Fn(&I, TrialSpec, &StageClock) -> T + Sync,
{
    let n = items.len();
    let clock = StageClock::default();
    let run_start = Instant::now();
    if n == 0 {
        return (
            Vec::new(),
            RunProfile {
                wall: run_start.elapsed(),
                workers: Vec::new(),
                stages: clock.rows(),
            },
        );
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let profiles: Mutex<Vec<WorkerProfile>> = Mutex::new(Vec::with_capacity(workers));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let born = Instant::now();
                let mut busy = Duration::ZERO;
                let mut trials = 0u64;
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= n {
                        break;
                    }
                    let spec = TrialSpec {
                        index,
                        seed: trial_seed(master_seed, index),
                    };
                    let start = Instant::now();
                    let out = f(&items[index], spec, &clock);
                    busy += start.elapsed();
                    trials += 1;
                    results.lock().expect("runner poisoned: a trial panicked")[index] = Some(out);
                }
                let lifetime = born.elapsed();
                profiles
                    .lock()
                    .expect("runner poisoned: a trial panicked")
                    .push(WorkerProfile {
                        busy,
                        idle: lifetime.saturating_sub(busy),
                        trials,
                    });
            });
        }
    });
    let out = results
        .into_inner()
        .expect("runner poisoned: a trial panicked")
        .into_iter()
        .map(|slot| slot.expect("every index visited exactly once"))
        .collect();
    let profile = RunProfile {
        wall: run_start.elapsed(),
        workers: profiles
            .into_inner()
            .expect("runner poisoned: a trial panicked"),
        stages: clock.rows(),
    };
    (out, profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = run_sharded(&items, 1, |&i, spec| {
            assert_eq!(i, spec.index);
            i * 2
        });
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let items = [(); 64];
        let a = run_sharded(&items, 42, |_, spec| spec.seed);
        let b = run_sharded(&items, 42, |_, spec| spec.seed);
        assert_eq!(a, b, "same master seed, same trial seeds");
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len(), "trial seeds do not collide");
        let c = run_sharded(&items, 43, |_, spec| spec.seed);
        assert_ne!(a, c, "different master seed diverges");
    }

    #[test]
    fn trial_seeds_agree_with_the_campaign_engine() {
        // Both crates derive (master, index) seeds through the one shared
        // splitmix64 finalizer; this pins that they stay byte-identical.
        for master in [0u64, 1, 42, u64::MAX] {
            for index in [0usize, 1, 7, 511, 1_000_000] {
                assert_eq!(
                    trial_seed(master, index),
                    underradar_campaign::seed::trial_seed(master, index),
                    "seed drift at ({master}, {index})"
                );
            }
        }
    }

    #[test]
    fn empty_input_and_single_item() {
        let none: Vec<u8> = Vec::new();
        assert!(run_sharded(&none, 0, |_, _| 0u8).is_empty());
        assert_eq!(run_sharded(&[7u8], 0, |&x, _| x), vec![7]);
    }

    #[test]
    fn profiled_run_matches_plain_run_and_accounts_every_trial() {
        let items: Vec<u64> = (0..48).collect();
        let plain = run_sharded(&items, 7, |&i, spec| i.wrapping_add(spec.seed));
        let (profiled, profile) = run_sharded_profiled(&items, 7, |&i, spec, clock| {
            clock.time("run", || i.wrapping_add(spec.seed))
        });
        assert_eq!(plain, profiled, "profiling never changes results");
        let executed: u64 = profile.workers.iter().map(|w| w.trials).sum();
        assert_eq!(executed, items.len() as u64);
        let (stage, _, calls) = profile.stages[0];
        assert_eq!((stage, calls), ("run", items.len() as u64));
        let footer = profile.render_footer();
        assert!(footer.starts_with("--- profile ---\nwall "));
        assert!(footer.contains("worker 0: busy "));
        assert!(footer.contains("stage run: "));
    }

    #[test]
    fn uneven_work_still_fills_every_slot() {
        // Early items are much slower than late ones; the atomic cursor
        // keeps all workers busy and order is still preserved.
        let items: Vec<u64> = (0..32).collect();
        let out = run_sharded(&items, 9, |&i, _| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i
        });
        assert_eq!(out, items);
    }
}
