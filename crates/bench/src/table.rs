//! Plain-text table rendering for experiment reports.

/// A simple fixed-width table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (short rows are padded, long rows truncated to the
    /// header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        let mut row: Vec<String> = cells.iter().take(self.header.len()).cloned().collect();
        while row.len() < self.header.len() {
            row.push(String::new());
        }
        self.rows.push(row);
        self
    }

    /// Append a row of string slices.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Table {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:<width$}", cell, width = widths[i] + 2));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total.saturating_sub(2)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Render an experiment header block.
pub fn heading(id: &str, paper_ref: &str, claim: &str) -> String {
    format!(
        "==============================================================\n\
         {id} — {paper_ref}\n\
         paper: {claim}\n\
         ==============================================================\n"
    )
}

/// Format a boolean as a check/cross for table cells.
pub fn mark(ok: bool) -> &'static str {
    if ok {
        "yes"
    } else {
        "NO"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["method", "evades", "correct"]);
        t.row_str(&["scan", "yes", "yes"]);
        t.row_str(&["overt-baseline", "NO", "yes"]);
        let s = t.render();
        assert!(s.contains("method"));
        assert!(s.lines().count() >= 4);
        // Columns align: "evades" appears at the same offset in all rows.
        let off = s
            .lines()
            .next()
            .expect("header")
            .find("evades")
            .expect("col");
        for line in s.lines().skip(2) {
            assert!(line.len() > off);
        }
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row_str(&["only-one"]);
        t.row_str(&["x", "y", "overflow"]);
        let s = t.render();
        assert!(!s.contains("overflow"));
    }

    #[test]
    fn heading_and_mark() {
        let h = heading("E3", "Figure 2", "spam scores land in 40..100");
        assert!(h.contains("E3"));
        assert!(h.contains("Figure 2"));
        assert_eq!(mark(true), "yes");
        assert_eq!(mark(false), "NO");
    }
}
