//! Regenerates the e04_gfc_dns experiment report (see DESIGN.md §4).
//! `--json` emits the report plus its telemetry registry as one JSON
//! object; `--telemetry` (or `UNDERRADAR_TELEMETRY=1`) appends a text
//! rendering of the registry.
fn main() {
    underradar_bench::cli::exp_main(
        "e04_gfc_dns",
        underradar_bench::experiments::e04_gfc_dns::run_with,
    );
}
