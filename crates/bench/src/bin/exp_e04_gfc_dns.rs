//! Regenerates the e04_gfc_dns experiment report (see DESIGN.md §4).
fn main() {
    print!("{}", underradar_bench::experiments::e04_gfc_dns::run());
}
