//! Regenerates the e07_fig3b_stateful experiment report (see DESIGN.md §4).
//! `--json` emits the report plus its telemetry registry as one JSON
//! object; `--telemetry` (or `UNDERRADAR_TELEMETRY=1`) appends a text
//! rendering of the registry.
fn main() {
    underradar_bench::cli::exp_main(
        "e07_fig3b_stateful",
        underradar_bench::experiments::e07_fig3b_stateful::run_with,
    );
}
