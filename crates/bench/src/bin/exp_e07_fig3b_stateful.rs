//! Regenerates the e07_fig3b_stateful experiment report (see DESIGN.md §4).
fn main() {
    print!(
        "{}",
        underradar_bench::experiments::e07_fig3b_stateful::run()
    );
}
