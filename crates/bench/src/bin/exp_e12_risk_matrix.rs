//! Regenerates the e12_risk_matrix experiment report (see DESIGN.md §4).
fn main() {
    print!("{}", underradar_bench::experiments::e12_risk_matrix::run());
}
