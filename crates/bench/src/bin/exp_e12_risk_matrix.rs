//! Regenerates the e12_risk_matrix experiment report (see DESIGN.md §4).
//! `--json` emits the report plus its telemetry registry as one JSON
//! object; `--telemetry` (or `UNDERRADAR_TELEMETRY=1`) appends a text
//! rendering of the registry.
fn main() {
    underradar_bench::cli::exp_main(
        "e12_risk_matrix",
        underradar_bench::experiments::e12_risk_matrix::run_with,
    );
}
