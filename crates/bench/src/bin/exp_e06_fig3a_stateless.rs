//! Regenerates the e06_fig3a_stateless experiment report (see DESIGN.md §4).
fn main() {
    print!(
        "{}",
        underradar_bench::experiments::e06_fig3a_stateless::run()
    );
}
