//! Regenerates the e06_fig3a_stateless experiment report (see DESIGN.md §4).
//! `--json` emits the report plus its telemetry registry as one JSON
//! object; `--telemetry` (or `UNDERRADAR_TELEMETRY=1`) appends a text
//! rendering of the registry.
fn main() {
    underradar_bench::cli::exp_main(
        "e06_fig3a_stateless",
        underradar_bench::experiments::e06_fig3a_stateless::run_with,
    );
}
