//! Regenerates the e08_syria experiment report (see DESIGN.md §4).
fn main() {
    print!("{}", underradar_bench::experiments::e08_syria::run());
}
