//! E14 binary: population-scale monitor core.

fn main() {
    underradar_bench::cli::exp_main(
        "e14_scale",
        underradar_bench::experiments::e14_scale::run_with,
    );
}
