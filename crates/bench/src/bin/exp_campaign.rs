//! Runs the paper-scale measurement campaign (all 8 methods × 4 censor
//! policies × 4 targets × 4 seeds = 512 trials) through the campaign
//! engine.
//!
//! Flags:
//!
//! * `--shards N` — worker threads (default 1). Output is byte-identical
//!   for every `N`, which `scripts/ci.sh` checks (1 vs 4).
//! * `--impair` — enable the adversarial client-link impairment knobs
//!   (reorder 0.2 with 2 ms displacement, duplicate 0.1). Deterministic:
//!   every impairment draw comes from the per-trial simulator RNG in
//!   simulated-time order, so the 1-vs-4-shard byte identity must hold
//!   here too (`scripts/ci.sh` checks both).
//! * `--json` — one JSON object `{"experiment", "report", "telemetry"}`
//!   where `report` is the structured campaign report (cells + trials).
//! * `--telemetry` (or `UNDERRADAR_TELEMETRY=1`) — text report plus the
//!   merged registry's text rendering.
//! * `--trace` (or `UNDERRADAR_TRACE=1`) — text report plus the flight
//!   recorder: every stage decision as JSON lines (sorted keys,
//!   byte-identical for any shard count) and the explainer's per-trial
//!   causal chains.
//! * `--trace-diff A B` — run with the flight recorder and print the
//!   first divergent stage decision between trial `A`'s and trial `B`'s
//!   trace segments (campaign markers excluded — they name the trials and
//!   would differ trivially).
//! * `--profile` — print a wall-clock profile footer (prepare/run/score
//!   stage timings) to stderr; stdout stays deterministic.
//! * `--profile-json PATH` — write the stage timings (plus, in service
//!   mode, per-worker busy/attempt counts and steal/retry totals) to
//!   `PATH` as sorted-key JSON.
//! * `--audit` (or `--audit=json`) — run with telemetry enabled and print
//!   the report followed by the adversary-eye **safety audit**: per-host
//!   attributability scores reconstructed from the merged `exposure.*`
//!   registry entries, folded against each cell's declared evasion counts.
//!   Cells that declared themselves fully evaded while the adversary holds
//!   attributable events are surfaced as divergences. Byte-identical for
//!   any `--shards` value and for `--service` vs the plain engine.
//! * `--progress` (or `--progress=N`, snapshot every `N` trials) — in
//!   service mode, stream interval snapshots (done/total, rows/sec, ETA,
//!   per-worker busy fractions, steal/retry counts, journal lag) as JSONL
//!   on **stderr**; stdout bytes are untouched.
//! * `--trace-capacity N` (or `UNDERRADAR_TRACE_CAPACITY=N`) — size the
//!   flight-recorder ring for `--trace` / `--trace-diff` runs.
//! * `--service` — run through the durable run service
//!   (`underradar-runner`): work-stealing scheduling, streaming rows, and
//!   (with `--checkpoint`) a crash-safe journal. The text report is
//!   byte-identical to the plain engine's at any `--shards` value.
//! * `--checkpoint PATH` — journal every completed trial to `PATH`
//!   (implies `--service`). A killed run resumed with the same flags
//!   skips journaled trials and produces byte-identical final output.
//! * `--synthetic N` — replace the paper matrix with an `N`-trial
//!   synthetic scale matrix (cheap scan trials; for million-trial
//!   service runs).
//! * `--jsonl` — emit one JSON row per trial. In service mode rows
//!   stream the moment each trial completes (completion order; each row
//!   carries its `index`); otherwise they print in index order after the
//!   run.

use std::path::PathBuf;

use underradar_bench::cli::{OutputMode, OutputSpec};
use underradar_bench::experiments::campaign::{paper_campaign, synthetic_campaign};
use underradar_bench::runner::StageClock;
use underradar_campaign::engine;
use underradar_campaign::report::{CampaignReport, CellStat};
use underradar_campaign::spec::CampaignSpec;
use underradar_runner::{
    run_service, JsonlSink, NullSink, ProgressConfig, RowSink, RunConfig, RunProfile,
};
use underradar_surveil::exposure::{DeclaredCell, ExposureLedger, SafetyAudit};
use underradar_telemetry::{trace, Registry, Telemetry, TraceRecord, DEFAULT_TRACE_CAPACITY};

fn parse_shards(args: &[String]) -> usize {
    let mut shards = 1usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--shards" {
            shards = it
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("--shards needs a positive integer"));
        } else if let Some(v) = arg.strip_prefix("--shards=") {
            shards = v.parse().expect("--shards needs a positive integer");
        }
    }
    shards.max(1)
}

/// The value following `--flag` (or inline `--flag=value`), when present.
fn parse_value(args: &[String], flag: &str) -> Option<String> {
    let inline = format!("{flag}=");
    let mut it = args.iter();
    let mut found = None;
    while let Some(arg) = it.next() {
        if arg == flag {
            found = it.next().cloned();
        } else if let Some(v) = arg.strip_prefix(&inline) {
            found = Some(v.to_string());
        }
    }
    found
}

/// `--trace-diff A B`: the two trial indices to diff, when present.
fn parse_trace_diff(args: &[String]) -> Option<(u64, u64)> {
    let pos = args.iter().position(|a| a == "--trace-diff")?;
    let a = args.get(pos + 1)?.parse().ok()?;
    let b = args.get(pos + 2)?.parse().ok()?;
    Some((a, b))
}

/// Trial `index`'s stage decisions: its trace segment minus the campaign
/// markers (which carry the trial identity and would differ trivially).
fn trial_decisions(records: &[TraceRecord], index: u64) -> Option<Vec<TraceRecord>> {
    trace::split_trials(records)
        .into_iter()
        .find(|seg| {
            seg.first()
                .is_some_and(|r| r.kind == "trial_start" && r.field_u64("trial") == Some(index))
        })
        .map(|seg| {
            seg.iter()
                .filter(|r| r.stage != "campaign")
                .cloned()
                .collect()
        })
}

fn run_trace_diff(spec: &CampaignSpec, shards: usize, a: u64, b: u64, trace_capacity: usize) {
    let tel = Telemetry::with_trace(trace_capacity);
    let _ = engine::run(spec, shards, &tel);
    let snap = tel.snapshot();
    let left = trial_decisions(&snap.trace, a)
        .unwrap_or_else(|| panic!("trial {a} not found in the campaign trace"));
    let right = trial_decisions(&snap.trace, b)
        .unwrap_or_else(|| panic!("trial {b} not found in the campaign trace"));
    println!("trace diff: trial {a} (a) vs trial {b} (b)");
    print!(
        "{}",
        trace::render_diff(trace::diff(&left, &right).as_ref())
    );
}

fn run_campaign(
    spec: &CampaignSpec,
    shards: usize,
    tel: &Telemetry,
    clock: &StageClock,
) -> CampaignReport {
    clock.time("run", || engine::run(spec, shards, tel))
}

/// Collects `(index, row)` pairs so service-mode `--json` can emit rows
/// in index order even though they complete out of order.
#[derive(Default)]
struct IndexedSink {
    rows: Vec<(usize, String)>,
}

impl RowSink for IndexedSink {
    fn row(&mut self, result: &underradar_campaign::TrialResult) -> std::io::Result<()> {
        self.rows.push((result.index, result.to_json_row()));
        Ok(())
    }
}

/// Reconstruct the campaign-wide exposure ledger from the merged registry,
/// fold it against the declared per-cell evasion counts, and render the
/// safety audit (text, or sorted-key JSON under `--audit=json`).
fn render_audit(cells: &[CellStat], registry: &Registry, json: bool) -> String {
    let ledger = ExposureLedger::from_registry(registry);
    let declared: Vec<DeclaredCell> = cells
        .iter()
        .map(|c| DeclaredCell {
            cell: format!("{}/{}", c.method, c.policy),
            trials: c.trials as u64,
            evaded: c.evaded as u64,
        })
        .collect();
    let audit = SafetyAudit::build(&ledger, &declared);
    if json {
        let mut out = audit.render_json();
        out.push('\n');
        out
    } else {
        audit.render_text()
    }
}

/// `--profile-json PATH`: stage timings plus (in service mode) the run
/// profile, as sorted-key JSON.
fn write_profile_json(path: &str, clock: &StageClock, service: Option<&RunProfile>) {
    let mut out = String::from("{\"service\":");
    match service {
        Some(p) => {
            let join = |v: &[u64]| {
                v.iter()
                    .map(|n| n.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            out.push_str(&format!(
                "{{\"prepare_ms\":{},\"retries_seen\":{},\"snapshots\":{},\"steals\":{},\
                 \"wall_ms\":{},\"worker_attempts\":[{}],\"worker_busy_ns\":[{}]}}",
                p.prepare_ms,
                p.retries_seen,
                p.snapshots,
                p.steals,
                p.wall_ms,
                join(&p.worker_attempts),
                join(&p.worker_busy_ns)
            ));
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"stages\":{");
    for (i, (stage, total, calls)) in clock.rows().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{stage}\":{{\"calls\":{calls},\"ns\":{}}}",
            total.as_nanos()
        ));
    }
    out.push_str("}}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("--profile-json {path}: {e}");
        std::process::exit(1);
    }
}

/// `--service`: the durable run path. Rows stream in completion order
/// under `--jsonl`; every other mode's stdout is byte-identical to the
/// plain engine's report for any `--shards` value. Returns the run's
/// wall-clock profile for `--profile-json`.
fn run_service_mode(
    spec: &CampaignSpec,
    cfg: &RunConfig,
    mode: OutputMode,
    trace_capacity: usize,
    clock: &StageClock,
) -> RunProfile {
    let run = |tel: &Telemetry, sink: &mut dyn RowSink| {
        let outcome = clock
            .time("run", || run_service(spec, cfg, tel, sink))
            .unwrap_or_else(|e| {
                eprintln!("service run failed: {e}");
                std::process::exit(1);
            });
        eprintln!(
            "service: {} executed, {} restored, {} resumed retries, {} journal bytes truncated",
            outcome.executed, outcome.restored, outcome.resumed_retries, outcome.journal_truncated
        );
        outcome
    };
    match mode {
        OutputMode::Text => {
            let outcome = run(&Telemetry::disabled(), &mut NullSink);
            print!("{}", clock.time("score", || outcome.report.render_text()));
            outcome.profile
        }
        OutputMode::TextWithTelemetry => {
            let tel = Telemetry::enabled();
            let outcome = run(&tel, &mut NullSink);
            print!("{}", outcome.report.render_text());
            println!("--- telemetry ---");
            print!("{}", clock.time("score", || tel.snapshot().render_text()));
            outcome.profile
        }
        OutputMode::Json => {
            let tel = Telemetry::enabled();
            let mut sink = IndexedSink::default();
            let outcome = run(&tel, &mut sink);
            sink.rows.sort();
            let rows: Vec<String> = sink.rows.into_iter().map(|(_, row)| row).collect();
            println!(
                "{{\"experiment\":\"campaign\",\"name\":\"{}\",\"trials\":[{}],\"telemetry\":{}}}",
                outcome.report.name,
                rows.join(","),
                clock.time("score", || tel.snapshot().to_json())
            );
            outcome.profile
        }
        OutputMode::Jsonl => {
            let stdout = std::io::stdout();
            let mut sink = JsonlSink::new(std::io::BufWriter::new(stdout.lock()));
            run(&Telemetry::disabled(), &mut sink).profile
        }
        OutputMode::Trace => {
            let tel = Telemetry::with_trace(trace_capacity);
            let outcome = run(&tel, &mut NullSink);
            let out = clock.time("score", || {
                underradar_bench::cli::render_trace(&outcome.report.render_text(), &tel.snapshot())
            });
            print!("{out}");
            outcome.profile
        }
    }
}

/// `--audit`: run with telemetry forced on (batch or service), print the
/// report, then the safety audit reconstructed from the merged registry.
/// Returns the service profile when the service path ran.
fn run_audit(
    spec: &CampaignSpec,
    shards: usize,
    service_cfg: Option<&RunConfig>,
    json: bool,
    clock: &StageClock,
) -> Option<RunProfile> {
    let tel = Telemetry::enabled();
    let (report_text, cells, profile) = match service_cfg {
        Some(cfg) => {
            let outcome = clock
                .time("run", || run_service(spec, cfg, &tel, &mut NullSink))
                .unwrap_or_else(|e| {
                    eprintln!("service run failed: {e}");
                    std::process::exit(1);
                });
            (
                outcome.report.render_text(),
                outcome.report.cells(),
                Some(outcome.profile),
            )
        }
        None => {
            let report = run_campaign(spec, shards, &tel, clock);
            (report.render_text(), report.cells(), None)
        }
    };
    print!("{report_text}");
    println!("--- audit ---");
    let audit = clock.time("score", || render_audit(&cells, &tel.snapshot(), json));
    print!("{audit}");
    profile
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let shards = parse_shards(&args);
    let profile = args.iter().any(|a| a == "--profile");
    let profile_json = parse_value(&args, "--profile-json");
    let checkpoint = parse_value(&args, "--checkpoint").map(PathBuf::from);
    let service = args.iter().any(|a| a == "--service") || checkpoint.is_some();
    let audit = args.iter().rev().find_map(|a| match a.as_str() {
        "--audit" => Some(false),
        "--audit=json" => Some(true),
        _ => None,
    });
    let progress = args.iter().rev().find_map(|a| {
        if a == "--progress" {
            return Some(ProgressConfig::default());
        }
        a.strip_prefix("--progress=").map(|v| ProgressConfig {
            every_trials: v.parse().expect("--progress=N needs a positive integer"),
            ..ProgressConfig::default()
        })
    });
    let out_spec = OutputSpec::from_cli(args.iter().cloned());
    let trace_capacity = out_spec
        .trace_capacity_value()
        .unwrap_or(DEFAULT_TRACE_CAPACITY);
    let clock = StageClock::default();
    let mut spec = clock.time("prepare", || match parse_value(&args, "--synthetic") {
        Some(n) => synthetic_campaign(n.parse().expect("--synthetic needs a trial count")),
        None => paper_campaign(4),
    });
    spec = spec.trace_capacity(out_spec.trace_capacity_value());
    if args.iter().any(|a| a == "--impair") {
        spec = spec.client_link_reorder(0.2).client_link_duplicate(0.1);
    }
    if let Some((a, b)) = parse_trace_diff(&args) {
        run_trace_diff(&spec, shards, a, b, trace_capacity);
        return;
    }
    let mode = out_spec.mode();
    let mut service_profile = None;
    if service {
        let mut cfg = RunConfig::new(shards);
        if let Some(path) = checkpoint {
            cfg = cfg.checkpoint(path);
        }
        if let Some(p) = progress {
            cfg = cfg.progress(p);
        }
        service_profile = match audit {
            Some(json) => run_audit(&spec, shards, Some(&cfg), json, &clock),
            None => Some(run_service_mode(&spec, &cfg, mode, trace_capacity, &clock)),
        };
    } else if let Some(json) = audit {
        run_audit(&spec, shards, None, json, &clock);
    } else {
        match mode {
            OutputMode::Text => {
                let report = run_campaign(&spec, shards, &Telemetry::disabled(), &clock);
                print!("{}", clock.time("score", || report.render_text()));
            }
            OutputMode::TextWithTelemetry => {
                let tel = Telemetry::enabled();
                let report = run_campaign(&spec, shards, &tel, &clock);
                print!("{}", report.render_text());
                println!("--- telemetry ---");
                print!("{}", clock.time("score", || tel.snapshot().render_text()));
            }
            OutputMode::Json => {
                let tel = Telemetry::enabled();
                let report = run_campaign(&spec, shards, &tel, &clock);
                println!(
                    "{{\"experiment\":\"campaign\",\"report\":{},\"telemetry\":{}}}",
                    report.to_json(),
                    clock.time("score", || tel.snapshot().to_json())
                );
            }
            OutputMode::Jsonl => {
                let report = run_campaign(&spec, shards, &Telemetry::disabled(), &clock);
                let out = clock.time("score", || {
                    report
                        .trials
                        .iter()
                        .map(|t| t.to_json_row() + "\n")
                        .collect::<String>()
                });
                print!("{out}");
            }
            OutputMode::Trace => {
                let tel = Telemetry::with_trace(trace_capacity);
                let report = run_campaign(&spec, shards, &tel, &clock);
                let out = clock.time("score", || {
                    underradar_bench::cli::render_trace(&report.render_text(), &tel.snapshot())
                });
                print!("{out}");
            }
        }
    }
    if let Some(path) = profile_json {
        write_profile_json(&path, &clock, service_profile.as_ref());
    }
    if profile {
        eprintln!("--- profile ---");
        for (stage, total, calls) in clock.rows() {
            eprintln!(
                "stage {stage}: {:.3}s over {calls} calls",
                total.as_secs_f64()
            );
        }
    }
}
