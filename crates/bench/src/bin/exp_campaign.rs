//! Runs the paper-scale measurement campaign (all 8 methods × 4 censor
//! policies × 4 targets × 4 seeds = 512 trials) through the campaign
//! engine.
//!
//! Flags:
//!
//! * `--shards N` — worker threads (default 1). Output is byte-identical
//!   for every `N`, which `scripts/ci.sh` checks (1 vs 4).
//! * `--impair` — enable the adversarial client-link impairment knobs
//!   (reorder 0.2 with 2 ms displacement, duplicate 0.1). Deterministic:
//!   every impairment draw comes from the per-trial simulator RNG in
//!   simulated-time order, so the 1-vs-4-shard byte identity must hold
//!   here too (`scripts/ci.sh` checks both).
//! * `--json` — one JSON object `{"experiment", "report", "telemetry"}`
//!   where `report` is the structured campaign report (cells + trials).
//! * `--telemetry` (or `UNDERRADAR_TELEMETRY=1`) — text report plus the
//!   merged registry's text rendering.

use underradar_bench::cli::OutputMode;
use underradar_bench::experiments::campaign::paper_campaign;
use underradar_campaign::engine;
use underradar_telemetry::Telemetry;

fn parse_shards(args: &[String]) -> usize {
    let mut shards = 1usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--shards" {
            shards = it
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("--shards needs a positive integer"));
        } else if let Some(v) = arg.strip_prefix("--shards=") {
            shards = v.parse().expect("--shards needs a positive integer");
        }
    }
    shards.max(1)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let shards = parse_shards(&args);
    let mut spec = paper_campaign(4);
    if args.iter().any(|a| a == "--impair") {
        spec = spec.client_link_reorder(0.2).client_link_duplicate(0.1);
    }
    match underradar_bench::cli::output_mode(args.iter().cloned()) {
        OutputMode::Text => {
            let report = engine::run(&spec, shards, &Telemetry::disabled());
            print!("{}", report.render_text());
        }
        OutputMode::TextWithTelemetry => {
            let tel = Telemetry::enabled();
            let report = engine::run(&spec, shards, &tel);
            print!("{}", report.render_text());
            println!("--- telemetry ---");
            print!("{}", tel.snapshot().render_text());
        }
        OutputMode::Json => {
            let tel = Telemetry::enabled();
            let report = engine::run(&spec, shards, &tel);
            println!(
                "{{\"experiment\":\"campaign\",\"report\":{},\"telemetry\":{}}}",
                report.to_json(),
                tel.snapshot().to_json()
            );
        }
    }
}
