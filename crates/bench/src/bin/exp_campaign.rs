//! Runs the paper-scale measurement campaign (all 8 methods × 4 censor
//! policies × 4 targets × 4 seeds = 512 trials) through the campaign
//! engine.
//!
//! Flags:
//!
//! * `--shards N` — worker threads (default 1). Output is byte-identical
//!   for every `N`, which `scripts/ci.sh` checks (1 vs 4).
//! * `--impair` — enable the adversarial client-link impairment knobs
//!   (reorder 0.2 with 2 ms displacement, duplicate 0.1). Deterministic:
//!   every impairment draw comes from the per-trial simulator RNG in
//!   simulated-time order, so the 1-vs-4-shard byte identity must hold
//!   here too (`scripts/ci.sh` checks both).
//! * `--json` — one JSON object `{"experiment", "report", "telemetry"}`
//!   where `report` is the structured campaign report (cells + trials).
//! * `--telemetry` (or `UNDERRADAR_TELEMETRY=1`) — text report plus the
//!   merged registry's text rendering.
//! * `--trace` (or `UNDERRADAR_TRACE=1`) — text report plus the flight
//!   recorder: every stage decision as JSON lines (sorted keys,
//!   byte-identical for any shard count) and the explainer's per-trial
//!   causal chains.
//! * `--trace-diff A B` — run with the flight recorder and print the
//!   first divergent stage decision between trial `A`'s and trial `B`'s
//!   trace segments (campaign markers excluded — they name the trials and
//!   would differ trivially).
//! * `--profile` — print a wall-clock profile footer (prepare/run/score
//!   stage timings) to stderr; stdout stays deterministic.
//! * `--service` — run through the durable run service
//!   (`underradar-runner`): work-stealing scheduling, streaming rows, and
//!   (with `--checkpoint`) a crash-safe journal. The text report is
//!   byte-identical to the plain engine's at any `--shards` value.
//! * `--checkpoint PATH` — journal every completed trial to `PATH`
//!   (implies `--service`). A killed run resumed with the same flags
//!   skips journaled trials and produces byte-identical final output.
//! * `--synthetic N` — replace the paper matrix with an `N`-trial
//!   synthetic scale matrix (cheap scan trials; for million-trial
//!   service runs).
//! * `--jsonl` — emit one JSON row per trial. In service mode rows
//!   stream the moment each trial completes (completion order; each row
//!   carries its `index`); otherwise they print in index order after the
//!   run.

use std::path::PathBuf;

use underradar_bench::cli::OutputMode;
use underradar_bench::experiments::campaign::{paper_campaign, synthetic_campaign};
use underradar_bench::runner::StageClock;
use underradar_campaign::engine;
use underradar_campaign::report::CampaignReport;
use underradar_campaign::spec::CampaignSpec;
use underradar_runner::{run_service, JsonlSink, NullSink, RowSink, RunConfig};
use underradar_telemetry::{trace, Telemetry, TraceRecord, DEFAULT_TRACE_CAPACITY};

fn parse_shards(args: &[String]) -> usize {
    let mut shards = 1usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--shards" {
            shards = it
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("--shards needs a positive integer"));
        } else if let Some(v) = arg.strip_prefix("--shards=") {
            shards = v.parse().expect("--shards needs a positive integer");
        }
    }
    shards.max(1)
}

/// The value following `--flag` (or inline `--flag=value`), when present.
fn parse_value(args: &[String], flag: &str) -> Option<String> {
    let inline = format!("{flag}=");
    let mut it = args.iter();
    let mut found = None;
    while let Some(arg) = it.next() {
        if arg == flag {
            found = it.next().cloned();
        } else if let Some(v) = arg.strip_prefix(&inline) {
            found = Some(v.to_string());
        }
    }
    found
}

/// `--trace-diff A B`: the two trial indices to diff, when present.
fn parse_trace_diff(args: &[String]) -> Option<(u64, u64)> {
    let pos = args.iter().position(|a| a == "--trace-diff")?;
    let a = args.get(pos + 1)?.parse().ok()?;
    let b = args.get(pos + 2)?.parse().ok()?;
    Some((a, b))
}

/// Trial `index`'s stage decisions: its trace segment minus the campaign
/// markers (which carry the trial identity and would differ trivially).
fn trial_decisions(records: &[TraceRecord], index: u64) -> Option<Vec<TraceRecord>> {
    trace::split_trials(records)
        .into_iter()
        .find(|seg| {
            seg.first()
                .is_some_and(|r| r.kind == "trial_start" && r.field_u64("trial") == Some(index))
        })
        .map(|seg| {
            seg.iter()
                .filter(|r| r.stage != "campaign")
                .cloned()
                .collect()
        })
}

fn run_trace_diff(spec: &CampaignSpec, shards: usize, a: u64, b: u64) {
    let tel = Telemetry::with_trace(DEFAULT_TRACE_CAPACITY);
    let _ = engine::run(spec, shards, &tel);
    let snap = tel.snapshot();
    let left = trial_decisions(&snap.trace, a)
        .unwrap_or_else(|| panic!("trial {a} not found in the campaign trace"));
    let right = trial_decisions(&snap.trace, b)
        .unwrap_or_else(|| panic!("trial {b} not found in the campaign trace"));
    println!("trace diff: trial {a} (a) vs trial {b} (b)");
    print!(
        "{}",
        trace::render_diff(trace::diff(&left, &right).as_ref())
    );
}

fn run_campaign(
    spec: &CampaignSpec,
    shards: usize,
    tel: &Telemetry,
    clock: &StageClock,
) -> CampaignReport {
    clock.time("run", || engine::run(spec, shards, tel))
}

/// Collects `(index, row)` pairs so service-mode `--json` can emit rows
/// in index order even though they complete out of order.
#[derive(Default)]
struct IndexedSink {
    rows: Vec<(usize, String)>,
}

impl RowSink for IndexedSink {
    fn row(&mut self, result: &underradar_campaign::TrialResult) -> std::io::Result<()> {
        self.rows.push((result.index, result.to_json_row()));
        Ok(())
    }
}

/// `--service`: the durable run path. Rows stream in completion order
/// under `--jsonl`; every other mode's stdout is byte-identical to the
/// plain engine's report for any `--shards` value.
fn run_service_mode(spec: &CampaignSpec, cfg: &RunConfig, mode: OutputMode, clock: &StageClock) {
    let run = |tel: &Telemetry, sink: &mut dyn RowSink| {
        let outcome = clock
            .time("run", || run_service(spec, cfg, tel, sink))
            .unwrap_or_else(|e| {
                eprintln!("service run failed: {e}");
                std::process::exit(1);
            });
        eprintln!(
            "service: {} executed, {} restored, {} resumed retries, {} journal bytes truncated",
            outcome.executed, outcome.restored, outcome.resumed_retries, outcome.journal_truncated
        );
        outcome
    };
    match mode {
        OutputMode::Text => {
            let outcome = run(&Telemetry::disabled(), &mut NullSink);
            print!("{}", clock.time("score", || outcome.report.render_text()));
        }
        OutputMode::TextWithTelemetry => {
            let tel = Telemetry::enabled();
            let outcome = run(&tel, &mut NullSink);
            print!("{}", outcome.report.render_text());
            println!("--- telemetry ---");
            print!("{}", clock.time("score", || tel.snapshot().render_text()));
        }
        OutputMode::Json => {
            let tel = Telemetry::enabled();
            let mut sink = IndexedSink::default();
            let outcome = run(&tel, &mut sink);
            sink.rows.sort();
            let rows: Vec<String> = sink.rows.into_iter().map(|(_, row)| row).collect();
            println!(
                "{{\"experiment\":\"campaign\",\"name\":\"{}\",\"trials\":[{}],\"telemetry\":{}}}",
                outcome.report.name,
                rows.join(","),
                clock.time("score", || tel.snapshot().to_json())
            );
        }
        OutputMode::Jsonl => {
            let stdout = std::io::stdout();
            let mut sink = JsonlSink::new(std::io::BufWriter::new(stdout.lock()));
            run(&Telemetry::disabled(), &mut sink);
        }
        OutputMode::Trace => {
            let tel = Telemetry::with_trace(DEFAULT_TRACE_CAPACITY);
            let outcome = run(&tel, &mut NullSink);
            let out = clock.time("score", || {
                underradar_bench::cli::render_trace(&outcome.report.render_text(), &tel.snapshot())
            });
            print!("{out}");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let shards = parse_shards(&args);
    let profile = args.iter().any(|a| a == "--profile");
    let checkpoint = parse_value(&args, "--checkpoint").map(PathBuf::from);
    let service = args.iter().any(|a| a == "--service") || checkpoint.is_some();
    let clock = StageClock::default();
    let mut spec = clock.time("prepare", || match parse_value(&args, "--synthetic") {
        Some(n) => synthetic_campaign(n.parse().expect("--synthetic needs a trial count")),
        None => paper_campaign(4),
    });
    if args.iter().any(|a| a == "--impair") {
        spec = spec.client_link_reorder(0.2).client_link_duplicate(0.1);
    }
    if let Some((a, b)) = parse_trace_diff(&args) {
        run_trace_diff(&spec, shards, a, b);
        return;
    }
    let mode = underradar_bench::cli::output_mode(args.iter().cloned());
    if service {
        let mut cfg = RunConfig::new(shards);
        if let Some(path) = checkpoint {
            cfg = cfg.checkpoint(path);
        }
        run_service_mode(&spec, &cfg, mode, &clock);
    } else {
        match mode {
            OutputMode::Text => {
                let report = run_campaign(&spec, shards, &Telemetry::disabled(), &clock);
                print!("{}", clock.time("score", || report.render_text()));
            }
            OutputMode::TextWithTelemetry => {
                let tel = Telemetry::enabled();
                let report = run_campaign(&spec, shards, &tel, &clock);
                print!("{}", report.render_text());
                println!("--- telemetry ---");
                print!("{}", clock.time("score", || tel.snapshot().render_text()));
            }
            OutputMode::Json => {
                let tel = Telemetry::enabled();
                let report = run_campaign(&spec, shards, &tel, &clock);
                println!(
                    "{{\"experiment\":\"campaign\",\"report\":{},\"telemetry\":{}}}",
                    report.to_json(),
                    clock.time("score", || tel.snapshot().to_json())
                );
            }
            OutputMode::Jsonl => {
                let report = run_campaign(&spec, shards, &Telemetry::disabled(), &clock);
                let out = clock.time("score", || {
                    report
                        .trials
                        .iter()
                        .map(|t| t.to_json_row() + "\n")
                        .collect::<String>()
                });
                print!("{out}");
            }
            OutputMode::Trace => {
                let tel = Telemetry::with_trace(DEFAULT_TRACE_CAPACITY);
                let report = run_campaign(&spec, shards, &tel, &clock);
                let out = clock.time("score", || {
                    underradar_bench::cli::render_trace(&report.render_text(), &tel.snapshot())
                });
                print!("{out}");
            }
        }
    }
    if profile {
        eprintln!("--- profile ---");
        for (stage, total, calls) in clock.rows() {
            eprintln!(
                "stage {stage}: {:.3}s over {calls} calls",
                total.as_secs_f64()
            );
        }
    }
}
