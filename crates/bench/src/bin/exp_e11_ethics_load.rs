//! Regenerates the e11_ethics_load experiment report (see DESIGN.md §4).
fn main() {
    print!("{}", underradar_bench::experiments::e11_ethics_load::run());
}
