//! Regenerates the e09_mvr experiment report (see DESIGN.md §4).
//! `--json` emits the report plus its telemetry registry as one JSON
//! object; `--telemetry` (or `UNDERRADAR_TELEMETRY=1`) appends a text
//! rendering of the registry.
fn main() {
    underradar_bench::cli::exp_main("e09_mvr", underradar_bench::experiments::e09_mvr::run_with);
}
