//! Regenerates the e09_mvr experiment report (see DESIGN.md §4).
fn main() {
    print!("{}", underradar_bench::experiments::e09_mvr::run());
}
