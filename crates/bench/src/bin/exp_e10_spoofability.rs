//! Regenerates the e10_spoofability experiment report (see DESIGN.md §4).
fn main() {
    print!("{}", underradar_bench::experiments::e10_spoofability::run());
}
