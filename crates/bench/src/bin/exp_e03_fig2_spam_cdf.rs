//! Regenerates the e03_fig2_spam_cdf experiment report (see DESIGN.md §4).
//! `--json` emits the report plus its telemetry registry as one JSON
//! object; `--telemetry` (or `UNDERRADAR_TELEMETRY=1`) appends a text
//! rendering of the registry.
fn main() {
    underradar_bench::cli::exp_main(
        "e03_fig2_spam_cdf",
        underradar_bench::experiments::e03_fig2_spam_cdf::run_with,
    );
}
