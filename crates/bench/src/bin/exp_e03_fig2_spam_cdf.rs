//! Regenerates the e03_fig2_spam_cdf experiment report (see DESIGN.md §4).
fn main() {
    print!(
        "{}",
        underradar_bench::experiments::e03_fig2_spam_cdf::run()
    );
}
