//! Regenerates the e05_ddos experiment report (see DESIGN.md §4).
fn main() {
    print!("{}", underradar_bench::experiments::e05_ddos::run());
}
