//! Regenerates the e13_evasion experiment report (see DESIGN.md §4).
//! `--json` emits the report plus its telemetry registry as one JSON
//! object; `--telemetry` (or `UNDERRADAR_TELEMETRY=1`) appends a text
//! rendering of the registry.
fn main() {
    underradar_bench::cli::exp_main(
        "e13_evasion",
        underradar_bench::experiments::e13_evasion::run_with,
    );
}
