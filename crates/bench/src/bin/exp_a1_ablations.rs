//! Regenerates the a1_ablations experiment report (see DESIGN.md §4).
//! `--json` emits the report plus its telemetry registry as one JSON
//! object; `--telemetry` (or `UNDERRADAR_TELEMETRY=1`) appends a text
//! rendering of the registry.
fn main() {
    underradar_bench::cli::exp_main(
        "a1_ablations",
        underradar_bench::experiments::a1_ablations::run_with,
    );
}
