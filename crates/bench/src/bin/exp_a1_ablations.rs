//! Regenerates the A1 ablation summary (see DESIGN.md §5).
fn main() {
    print!("{}", underradar_bench::experiments::a1_ablations::run());
}
