//! Regenerates the e01_testbed experiment report (see DESIGN.md §4).
fn main() {
    print!("{}", underradar_bench::experiments::e01_testbed::run());
}
