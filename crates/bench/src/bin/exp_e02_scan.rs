//! Regenerates the e02_scan experiment report (see DESIGN.md §4).
fn main() {
    print!("{}", underradar_bench::experiments::e02_scan::run());
}
