#![warn(missing_docs)]

//! # underradar-bench
//!
//! Experiment harnesses that regenerate every table and figure of the
//! paper's evaluation, plus Criterion performance benches over the
//! substrate.
//!
//! Each experiment is a pure function `run() -> String` (deterministic in
//! its internal seeds) with a thin binary wrapper in `src/bin/` and a
//! consolidated `cargo bench` harness (`benches/experiments.rs`) that
//! prints all of them. The experiment ↔ paper mapping lives in
//! `DESIGN.md` §4 and `EXPERIMENTS.md`.

pub mod experiments;
pub mod table;

pub use table::Table;
