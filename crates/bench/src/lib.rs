#![warn(missing_docs)]
// Library paths must surface failures as typed errors or documented
// invariant expects — never bare unwraps (test code is exempt).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! # underradar-bench
//!
//! Experiment harnesses that regenerate every table and figure of the
//! paper's evaluation, plus hand-rolled performance benches over the
//! substrate (`benches/perf.rs`; no external bench framework).
//!
//! Each experiment is a pure function `run() -> String` (deterministic in
//! its internal seeds) with a thin binary wrapper in `src/bin/` and a
//! consolidated `cargo bench` harness (`benches/experiments.rs`) that
//! prints all of them. [`experiments::run_all`] fans the experiments
//! across threads with [`runner::run_sharded`]; determinism is preserved
//! because each experiment seeds its own RNGs. The experiment ↔ paper
//! mapping lives in `DESIGN.md` §4 and `EXPERIMENTS.md`.

pub mod cli;
pub mod experiments;
pub mod runner;
pub mod table;
pub mod telemetry;

pub use table::Table;
