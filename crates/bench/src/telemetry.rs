//! Per-experiment telemetry plumbing.
//!
//! Experiments often build several independent testbeds (scenario loops,
//! parameter sweeps). Subsystem exports write *absolute totals*
//! ([`Telemetry::set_counter`]-style), so two testbeds exporting into the
//! same registry would overwrite each other instead of accumulating. The
//! pattern here gives every testbed its own **scope** (a fresh
//! sub-registry) and folds finished scopes into the experiment's registry
//! with merge semantics — counters and histogram buckets add, so the
//! experiment-level numbers are sums over its scenarios, exactly like a
//! sharded run merging its shards.
//!
//! Everything is a no-op when the parent handle is disabled; the only
//! cost on the disabled path is the `is_enabled` branch.

use underradar_censor::TapCensor;
use underradar_core::methods::stateful::RoutedMimicryNet;
use underradar_core::testbed::Testbed;
use underradar_surveil::system::SurveillanceNode;
use underradar_telemetry::Telemetry;

/// A fresh sub-registry, enabled iff `parent` is enabled (delegates to
/// [`Telemetry::scope`]).
pub fn scope(parent: &Telemetry) -> Telemetry {
    parent.scope()
}

/// Fold a finished scope's totals into `parent` (counters add, gauges
/// overwrite, histograms bucket-add, spans/events append; delegates to
/// [`Telemetry::absorb`]).
pub fn absorb(parent: &Telemetry, sub: &Telemetry) {
    parent.absorb(sub);
}

/// Attach a fresh scope to a testbed's scheduler so live counters record
/// while it runs. Returns the scope; finish with [`finish_testbed`].
pub fn instrument_testbed(tb: &mut Testbed, parent: &Telemetry) -> Telemetry {
    let sub = scope(parent);
    if sub.is_enabled() {
        tb.set_telemetry(sub.clone());
    }
    sub
}

/// Export a finished testbed into its scope and fold the scope into
/// `parent`.
pub fn finish_testbed(tb: &Testbed, sub: &Telemetry, parent: &Telemetry) {
    tb.export_telemetry(sub);
    absorb(parent, sub);
}

/// Attach a fresh scope to a routed-mimicry net's scheduler (and, when
/// the scope carries a flight-recorder trace, to the net's censor and
/// surveillance stages). Finish with [`finish_routed`].
pub fn instrument_routed(net: &mut RoutedMimicryNet, parent: &Telemetry) -> Telemetry {
    let sub = scope(parent);
    if sub.is_enabled() {
        let tracer = sub.tracer();
        net.sim.set_telemetry(sub.clone());
        if tracer.is_live() {
            if let Some(tap) = net.sim.node_mut::<TapCensor>(net.censor) {
                tap.set_tracer(tracer.clone());
            }
            if let Some(surv) = net.sim.node_mut::<SurveillanceNode>(net.surveillance) {
                surv.set_tracer(tracer);
            }
        }
    }
    sub
}

/// Export a finished routed-mimicry net (scheduler, tap censor,
/// surveillance pipeline) into its scope and fold into `parent`.
pub fn finish_routed(net: &RoutedMimicryNet, sub: &Telemetry, parent: &Telemetry) {
    if sub.is_enabled() {
        net.sim.export_telemetry(sub);
        if let Some(tap) = net.sim.node_ref::<TapCensor>(net.censor) {
            tap.export_telemetry(sub);
        }
        if let Some(surv) = net.sim.node_ref::<SurveillanceNode>(net.surveillance) {
            surv.system().export_telemetry(sub);
        }
    }
    absorb(parent, sub);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_parent_yields_disabled_scope() {
        let parent = Telemetry::disabled();
        let sub = scope(&parent);
        assert!(!sub.is_enabled());
        absorb(&parent, &sub); // no-op, must not panic
        assert!(parent.snapshot().is_empty());
    }

    #[test]
    fn scopes_accumulate_instead_of_overwriting() {
        let parent = Telemetry::enabled();
        for _ in 0..3 {
            let sub = scope(&parent);
            sub.set_counter("x.total", 5); // absolute total per scenario
            absorb(&parent, &sub);
        }
        assert_eq!(parent.snapshot().counter("x.total"), 15);
    }
}
