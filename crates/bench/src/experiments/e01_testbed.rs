//! E1 — Figure 1 / §3.2.1: validate the reference censorship system.
//!
//! "To demonstrate accuracy, we created Snort rules to mimic known
//! censorship mechanisms and validated that we detected these mechanisms."
//!
//! For every blocking mechanism the censor implements, run an overt probe
//! and check (a) the censor actually acted (ground truth from its action
//! log), and (b) the client-side measurement detected it with the right
//! mechanism label.

use underradar_censor::CensorPolicy;
use underradar_core::methods::overt::OvertProbe;
use underradar_core::probe::Probe;
use underradar_core::testbed::{TargetSite, Testbed, TestbedConfig};
use underradar_core::verdict::Mechanism;
use underradar_netsim::addr::Cidr;
use underradar_netsim::time::SimTime;
use underradar_protocols::dns::DnsName;

use crate::table::{heading, mark, Table};

struct Case {
    name: &'static str,
    policy: CensorPolicy,
    domain: &'static str,
    path: &'static str,
    expect_mechanism: Option<Mechanism>,
}

fn cases() -> Vec<Case> {
    let twitter = DnsName::parse("twitter.com").expect("name");
    let twitter_web = TargetSite::numbered("twitter.com", 0).web_ip;
    vec![
        Case {
            name: "no censorship (control)",
            policy: CensorPolicy::new(),
            domain: "twitter.com",
            path: "/",
            expect_mechanism: None,
        },
        Case {
            name: "GFC keyword RST injection",
            policy: CensorPolicy::new().block_keyword("falun"),
            domain: "twitter.com",
            path: "/falun",
            expect_mechanism: Some(Mechanism::RstInjection),
        },
        Case {
            name: "GFC DNS injection (A)",
            policy: CensorPolicy::new().block_domain(&twitter),
            domain: "twitter.com",
            path: "/",
            expect_mechanism: Some(Mechanism::DnsPoison),
        },
        Case {
            name: "DNS injection (NXDOMAIN style)",
            policy: CensorPolicy::new()
                .block_domain(&twitter)
                .with_dns_nxdomain(),
            domain: "twitter.com",
            path: "/",
            expect_mechanism: Some(Mechanism::DnsPoison),
        },
        Case {
            name: "IP blackhole",
            policy: CensorPolicy::new().block_ip(Cidr::host(twitter_web)),
            domain: "twitter.com",
            path: "/",
            expect_mechanism: Some(Mechanism::Blackhole),
        },
        Case {
            name: "HTTP URL filter",
            policy: CensorPolicy::new().block_url("/banned"),
            domain: "twitter.com",
            path: "/banned-page",
            expect_mechanism: Some(Mechanism::RstInjection),
        },
    ]
}

/// Run E1 with a disabled telemetry handle.
pub fn run() -> String {
    run_with(&underradar_telemetry::Telemetry::disabled())
}

/// Run E1 and render its report, recording per-case telemetry into `tel`.
pub fn run_with(tel: &underradar_telemetry::Telemetry) -> String {
    let mut out = heading(
        "E1",
        "Figure 1 + §3.2.1 (reference systems)",
        "Snort-rule censor reproduces known mechanisms; client detects each",
    );
    let mut table = Table::new(&[
        "mechanism",
        "censor acted",
        "client verdict",
        "expected",
        "pass",
    ]);
    let mut all_pass = true;
    for case in cases() {
        let mut tb = Testbed::build(TestbedConfig {
            policy: case.policy,
            ..TestbedConfig::default()
        });
        let scope = crate::telemetry::instrument_testbed(&mut tb, tel);
        let domain = DnsName::parse(case.domain).expect("domain");
        let probe = OvertProbe::new(&domain, tb.resolver_ip, tb.collector_ip, case.path);
        let idx = tb.spawn_on_client(SimTime::ZERO, Box::new(probe));
        tb.run_secs(20);
        let probe = tb.client_task::<OvertProbe>(idx).expect("probe state");
        let verdict = probe.verdict();
        let acted = tb.censor_acted();
        crate::telemetry::finish_testbed(&tb, &scope, tel);
        let pass = match case.expect_mechanism {
            Some(m) => acted && verdict.mechanism() == Some(m),
            None => !acted && verdict.is_reachable(),
        };
        all_pass &= pass;
        table.row(&[
            case.name.to_string(),
            mark(acted).to_string(),
            verdict.to_string(),
            case.expect_mechanism
                .map(|m| m.to_string())
                .unwrap_or_else(|| "reachable".to_string()),
            mark(pass).to_string(),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nresult: reference censor validation {}\n\n",
        if all_pass {
            "PASSED (matches §3.2.1)"
        } else {
            "FAILED"
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn e1_passes() {
        let report = super::run();
        assert!(report.contains("PASSED"), "{report}");
    }
}
