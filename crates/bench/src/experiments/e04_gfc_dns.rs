//! E4 — §3.2.3 spam-method accuracy: GFC DNS injection for A *and* MX.
//!
//! "We validated accuracy by sending MX queries from a PlanetLab node in
//! China. We verified that the Great Firewall of China (GFC) injected bad
//! A DNS responses for both A and MX requests for twitter.com and
//! youtube.com."
//!
//! The PlanetLab vantage is replaced by the testbed client behind the
//! DNS-injecting tap censor; the table reports both query types for both
//! domains.

use underradar_censor::CensorPolicy;
use underradar_core::methods::stateless::StatelessDnsMimicry;
use underradar_core::probe::Probe;
use underradar_core::testbed::{Testbed, TestbedConfig};
use underradar_netsim::time::SimTime;
use underradar_protocols::dns::{DnsName, QType};

use crate::table::{heading, mark, Table};

/// Run E4 with a disabled telemetry handle.
pub fn run() -> String {
    run_with(&underradar_telemetry::Telemetry::disabled())
}

/// Run E4 and render its report, recording telemetry into `tel`.
pub fn run_with(tel: &underradar_telemetry::Telemetry) -> String {
    let mut out = heading(
        "E4",
        "§3.2.3 (spam accuracy: GFC DNS injection)",
        "bad A responses injected for both A and MX queries, twitter.com & youtube.com",
    );
    let mut table = Table::new(&["domain", "qtype", "bad A injected", "probe verdict", "pass"]);
    let mut all_pass = true;
    for domain in ["twitter.com", "youtube.com"] {
        for qtype in [QType::A, QType::Mx] {
            let name = DnsName::parse(domain).expect("domain");
            let policy = CensorPolicy::new()
                .block_domain(&DnsName::parse("twitter.com").expect("n"))
                .block_domain(&DnsName::parse("youtube.com").expect("n"));
            let poison = policy.dns_poison_ip;
            let mut tb = Testbed::build(TestbedConfig {
                policy,
                ..TestbedConfig::default()
            });
            let scope = crate::telemetry::instrument_testbed(&mut tb, tel);
            // Use a bare mimicry lookup (no cover) to capture the raw DNS
            // behaviour for this qtype.
            let probe = StatelessDnsMimicry::new(&name, qtype, tb.resolver_ip, vec![]);
            let idx = tb.spawn_on_client(SimTime::ZERO, Box::new(probe));
            tb.run_secs(10);
            let probe = tb.client_task::<StatelessDnsMimicry>(idx).expect("probe");
            let bad_a = probe
                .answers
                .iter()
                .any(|answers| answers.contains(&poison))
                || probe.a_for_mx;
            let verdict = probe.verdict();
            crate::telemetry::finish_testbed(&tb, &scope, tel);
            let pass = bad_a && verdict.is_censored();
            all_pass &= pass;
            table.row(&[
                domain.to_string(),
                format!("{qtype}"),
                mark(bad_a).to_string(),
                verdict.to_string(),
                mark(pass).to_string(),
            ]);
        }
    }
    out.push_str(&table.render());

    // The full spam pipeline sees the same thing end to end — one
    // campaign cell (method=spam, policy=dns-injection).
    let spec = underradar_campaign::CampaignSpec::new("e04-spam-pipeline", 4)
        .target("twitter.com")
        .method(underradar_campaign::MethodKind::Spam)
        .policy(underradar_campaign::NamedPolicy::new(
            "gfc-dns",
            CensorPolicy::new().block_domain(&DnsName::parse("twitter.com").expect("n")),
        ))
        .run_secs(30);
    let campaign = underradar_campaign::engine::run(&spec, 1, tel);
    let trial = &campaign.trials[0];
    let a_for_mx = crate::experiments::campaign::evidence(trial, "a_for_mx") == "true";
    out.push_str(&format!(
        "\nfull spam pipeline on twitter.com (campaign cell): A-for-MX tell observed = {}, verdict = {}\n",
        mark(a_for_mx),
        trial.verdict
    ));
    all_pass &= a_for_mx && trial.verdict.is_censored();
    out.push_str(&format!(
        "\nresult: §3.2.3 DNS-injection validation: {}\n\n",
        if all_pass { "PASSED" } else { "FAILED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn e4_passes() {
        let report = super::run();
        assert!(report.contains("PASSED"), "{report}");
    }
}
