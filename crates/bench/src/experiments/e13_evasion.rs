//! E13 — censor-vs-endpoint divergence under adversarial channel
//! impairments (§4.1 insertion/evasion).
//!
//! The paper's §4.1 tricks work precisely because a monitor in the
//! middle and the real endpoint can disagree about a TCP stream: a
//! TTL-limited segment dies after the tap (*insertion* — the monitor
//! reassembles bytes the endpoint never saw), and a monitor with a
//! bounded hold-back buffer drops what the endpoint happily buffers
//! (*evasion* — the endpoint sees bytes the monitor missed).
//!
//! This experiment replays identical flows past both vantage points and
//! scores the divergence three ways:
//!
//! 1. **In-bound impairments** (reordering within the hold-back window,
//!    duplicates, overlapping retransmits): monitor and endpoint must
//!    agree byte-for-byte — zero divergence, zero verdict flips.
//! 2. **Insertion** (TTL-limited keyword segment seen only by the
//!    monitor, innocuous retransmit accepted by the endpoint): the
//!    monitor's stream diverges and its keyword verdict flips.
//! 3. **Evasion** (hold-back budget exhausted so the monitor drops the
//!    keyword segment the endpoint buffers): the endpoint's stream
//!    diverges and the monitor misses the keyword.
//!
//! Finally a campaign cell runs with the client-link impairment knobs
//! enabled and checks the verdicts match the impairment-free run:
//! in-bound channel noise must not change measurement outcomes.

use std::net::Ipv4Addr;

use underradar_censor::CensorPolicy;
use underradar_ids::stream::{seq_le, seq_lt, Direction, FlowKey, StreamReassembler};
use underradar_netsim::wire::tcp::TcpFlags;
use underradar_netsim::{Packet, SimRng};
use underradar_telemetry::{trace, Tracer};

use crate::table::{heading, mark, Table};

const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 2);
const SERVER: Ipv4Addr = Ipv4Addr::new(93, 184, 0, 10);
const SPORT: u16 = 4000;
const DPORT: u16 = 80;
const KEYWORD: &[u8] = b"falun";

/// Who observes a scheduled segment: both vantage points, only the
/// monitor (a TTL-limited packet that dies after the tap), or only the
/// endpoint (a packet lost on the tap's mirror port).
#[derive(Clone, Copy, PartialEq)]
enum Sees {
    Both,
    MonitorOnly,
    EndpointOnly,
}

/// Reference endpoint: reassembles with the same windowed sequence
/// arithmetic as the monitor but an effectively unbounded out-of-order
/// buffer (a real TCP stack holds a full receive window, far more than
/// the monitor's hold-back budget).
struct Endpoint {
    expected: u32,
    data: Vec<u8>,
    held: Vec<(u32, Vec<u8>)>,
}

impl Endpoint {
    fn new(isn: u32) -> Endpoint {
        Endpoint {
            expected: isn,
            data: Vec::new(),
            held: Vec::new(),
        }
    }

    fn accept(&mut self, seq: u32, payload: &[u8]) {
        let end = seq.wrapping_add(payload.len() as u32);
        if seq_le(end, self.expected) {
            return;
        }
        if seq_lt(seq, self.expected) {
            let trim = self.expected.wrapping_sub(seq) as usize;
            self.data.extend_from_slice(&payload[trim..]);
            self.expected = end;
        } else if seq == self.expected {
            self.data.extend_from_slice(payload);
            self.expected = end;
        } else {
            self.held.push((seq, payload.to_vec()));
        }
    }

    fn receive(&mut self, seq: u32, payload: &[u8]) {
        if payload.is_empty() {
            return;
        }
        self.accept(seq, payload);
        while let Some(pos) = self
            .held
            .iter()
            .position(|(s, _)| seq_le(*s, self.expected))
        {
            let (s, p) = self.held.swap_remove(pos);
            self.accept(s, &p);
        }
    }
}

struct Divergence {
    monitor_only: usize,
    endpoint_only: usize,
    monitor_hit: bool,
    endpoint_hit: bool,
    ooo_dropped: u64,
}

impl Divergence {
    fn diverged(&self) -> bool {
        self.monitor_only > 0 || self.endpoint_only > 0
    }

    fn verdict_flip(&self) -> bool {
        self.monitor_hit != self.endpoint_hit
    }
}

fn contains(hay: &[u8], needle: &[u8]) -> bool {
    hay.windows(needle.len()).any(|w| w == needle)
}

/// Replay one schedule of `(seq, payload, sees)` segments past a fresh
/// monitor (the shared tap/IDS reassembler) and a fresh endpoint, and
/// score the divergence between the two reconstructed streams.
fn replay(isn: u32, schedule: &[(u32, Vec<u8>, Sees)]) -> Divergence {
    replay_traced(isn, schedule, Tracer::disabled())
}

/// [`replay`] with the monitor's flight recorder attached. There is no
/// simulator clock in this replay, so the trace's sim-time is the
/// schedule position of the segment that triggered the decision.
fn replay_traced(isn: u32, schedule: &[(u32, Vec<u8>, Sees)], tracer: Tracer) -> Divergence {
    let traced = tracer.is_live();
    let mut monitor = StreamReassembler::new();
    monitor.set_tracer(tracer);
    let syn_seq = isn.wrapping_sub(1);
    let syn = Packet::tcp(
        CLIENT,
        SERVER,
        SPORT,
        DPORT,
        syn_seq,
        0,
        TcpFlags::syn(),
        vec![],
    );
    monitor.process(&syn).expect("syn tracked");
    let syn_ack = Packet::tcp(
        SERVER,
        CLIENT,
        DPORT,
        SPORT,
        900,
        isn,
        TcpFlags::syn_ack(),
        vec![],
    );
    monitor.process(&syn_ack).expect("syn-ack tracked");
    let ack = Packet::tcp(
        CLIENT,
        SERVER,
        SPORT,
        DPORT,
        isn,
        901,
        TcpFlags::ack(),
        vec![],
    );
    let ctx = monitor.process(&ack).expect("ack tracked");
    let key: FlowKey = ctx.key;

    let mut endpoint = Endpoint::new(isn);
    for (i, (seq, payload, sees)) in schedule.iter().enumerate() {
        if traced {
            monitor.set_now(i as u64);
        }
        if *sees != Sees::EndpointOnly {
            let pkt = Packet::tcp(
                CLIENT,
                SERVER,
                SPORT,
                DPORT,
                *seq,
                901,
                TcpFlags::psh_ack(),
                payload.clone(),
            );
            monitor.process(&pkt);
        }
        if *sees != Sees::MonitorOnly {
            endpoint.receive(*seq, payload);
        }
    }

    let monitor_stream = monitor.stream_of(&key, Direction::ToServer).to_vec();
    let lcp = monitor_stream
        .iter()
        .zip(endpoint.data.iter())
        .take_while(|(a, b)| a == b)
        .count();
    Divergence {
        monitor_only: monitor_stream.len() - lcp,
        endpoint_only: endpoint.data.len() - lcp,
        monitor_hit: contains(&monitor_stream, KEYWORD),
        endpoint_hit: contains(&endpoint.data, KEYWORD),
        ooo_dropped: monitor.stats().ooo_dropped,
    }
}

/// A random keyword-bearing flow scheduled with in-bound impairments:
/// bounded reordering, duplicates, and overlapping retransmits.
fn impaired_schedule(rng: &mut SimRng, isn: u32) -> Vec<(u32, Vec<u8>, Sees)> {
    let len = 256 + rng.index(768);
    let mut stream: Vec<u8> = (0..len).map(|i| b'a' + ((i * 7 + 3) % 23) as u8).collect();
    let at = rng.index(len - KEYWORD.len());
    stream[at..at + KEYWORD.len()].copy_from_slice(KEYWORD);

    // Segment, then shuffle by bounded rank displacement (well inside
    // the monitor's hold-back budget) with occasional duplicates and
    // overlapping re-sends.
    let mut segs: Vec<(u32, Vec<u8>)> = Vec::new();
    let mut off = 0usize;
    while off < stream.len() {
        let take = (1 + rng.index(128)).min(stream.len() - off);
        segs.push((
            isn.wrapping_add(off as u32),
            stream[off..off + take].to_vec(),
        ));
        off += take;
    }
    let mut ranked: Vec<(usize, u32, Vec<u8>)> = Vec::new();
    for (i, (seq, payload)) in segs.iter().enumerate() {
        ranked.push((i * 4 + rng.index(8), *seq, payload.clone()));
        if rng.chance(0.15) {
            ranked.push((i * 4 + rng.index(8), *seq, payload.clone()));
        }
        if i > 0 && rng.chance(0.15) {
            // Overlapping retransmit reaching back into delivered bytes.
            let start = seq.wrapping_sub(isn) as usize;
            let back = 1 + rng.index(start.min(24));
            let take = (back + 1 + rng.index(16)).min(stream.len() - (start - back));
            ranked.push((
                i * 4 + rng.index(8),
                isn.wrapping_add((start - back) as u32),
                stream[start - back..start - back + take].to_vec(),
            ));
        }
    }
    ranked.sort_by_key(|(rank, _, _)| *rank);
    // Lead with the first in-order byte so the monitor anchors its
    // expected sequence at the ISN rather than mid-stream.
    let mut schedule = vec![(isn, stream[0..1].to_vec(), Sees::Both)];
    schedule.extend(
        ranked
            .into_iter()
            .map(|(_, seq, payload)| (seq, payload, Sees::Both)),
    );
    schedule
}

/// §4.1 insertion: a TTL-limited keyword segment dies after the tap, and
/// the retransmit the endpoint accepts carries innocuous bytes the
/// monitor discards as a duplicate.
fn insertion_schedule(isn: u32) -> Vec<(u32, Vec<u8>, Sees)> {
    vec![
        (isn, b"GET /".to_vec(), Sees::Both),
        (isn.wrapping_add(5), b"falun".to_vec(), Sees::MonitorOnly),
        (isn.wrapping_add(5), b"files".to_vec(), Sees::Both),
        (isn.wrapping_add(10), b" HTTP/1.0".to_vec(), Sees::Both),
    ]
}

/// Evasion by hold-back exhaustion: junk segments beyond a small gap
/// fill the monitor's out-of-order budget, so the keyword segment behind
/// them is dropped by the monitor but buffered by the endpoint; filling
/// the gap then reveals the divergence.
fn evasion_schedule(isn: u32) -> Vec<(u32, Vec<u8>, Sees)> {
    let mut schedule = vec![(isn, b"GET /".to_vec(), Sees::Both)];
    let gap = isn.wrapping_add(5);
    let after = isn.wrapping_add(15);
    for j in 0..4u32 {
        schedule.push((after.wrapping_add(j * 1024), vec![b'x'; 1024], Sees::Both));
    }
    schedule.push((after.wrapping_add(4096), KEYWORD.to_vec(), Sees::Both));
    schedule.push((gap, b"0123456789".to_vec(), Sees::Both));
    schedule
}

/// Run E13 with a disabled telemetry handle.
pub fn run() -> String {
    run_with(&underradar_telemetry::Telemetry::disabled())
}

/// Run E13 and render its report, recording telemetry into `tel`.
pub fn run_with(tel: &underradar_telemetry::Telemetry) -> String {
    let mut out = heading(
        "E13",
        "§4.1 insertion/evasion",
        "monitor and endpoint agree under in-bound impairments; \
         divergence requires TTL-limiting or exceeding the hold-back bound",
    );

    // Part 1: in-bound impairment schedules must not diverge.
    let trials = 32usize;
    let mut rng = SimRng::seed_from_u64(0xE13_0001);
    let mut divergent = 0usize;
    let mut flips = 0usize;
    let mut dropped = 0u64;
    for i in 0..trials {
        let isn = 0x4000_0000u32.wrapping_mul(i as u32).wrapping_add(101);
        let d = replay(isn, &impaired_schedule(&mut rng, isn));
        if d.diverged() {
            divergent += 1;
        }
        if d.verdict_flip() {
            flips += 1;
        }
        dropped += d.ooo_dropped;
        if !d.endpoint_hit {
            // The keyword is always embedded; the endpoint must see it.
            flips += 1;
        }
    }
    out.push_str("in-bound impairments (reorder/duplicate/overlap within hold-back):\n");
    let mut t1 = Table::new(&[
        "trials",
        "divergent streams",
        "verdict flips",
        "monitor drops",
    ]);
    t1.row(&[
        trials.to_string(),
        divergent.to_string(),
        flips.to_string(),
        dropped.to_string(),
    ]);
    out.push_str(&t1.render());
    let in_bound_ok = divergent == 0 && flips == 0 && dropped == 0;

    // Part 2 + 3: crafted divergence, one row per attack.
    out.push_str("\ncrafted divergence (monitor-only vs endpoint-only bytes):\n");
    let insertion = replay(0x7fff_ff00, &insertion_schedule(0x7fff_ff00));
    let evasion = replay(0x0000_0065, &evasion_schedule(0x0000_0065));
    let mut t2 = Table::new(&[
        "attack",
        "monitor-only B",
        "endpoint-only B",
        "monitor kw",
        "endpoint kw",
        "verdict flip",
    ]);
    for (name, d) in [
        ("insertion (TTL-limited)", &insertion),
        ("evasion (hold-back flood)", &evasion),
    ] {
        t2.row(&[
            name.to_string(),
            d.monitor_only.to_string(),
            d.endpoint_only.to_string(),
            mark(d.monitor_hit).to_string(),
            mark(d.endpoint_hit).to_string(),
            mark(d.verdict_flip()).to_string(),
        ]);
    }
    out.push_str(&t2.render());
    let insertion_ok =
        insertion.monitor_hit && !insertion.endpoint_hit && insertion.monitor_only > 0;
    let evasion_ok = !evasion.monitor_hit
        && evasion.endpoint_hit
        && evasion.endpoint_only > 0
        && evasion.ooo_dropped > 0;

    // Part 4: the flight recorder narrates the insertion flip. Replay the
    // clean pair (same schedule without the TTL-limited segment) and the
    // insertion pair with tracing on, and diff the monitor's decision
    // streams: the first divergent decision *is* the attack — the monitor
    // discarding the endpoint's real bytes as a duplicate of the
    // inserted keyword segment it alone saw.
    let isn = 0x7fff_ff00u32;
    let clean_sched: Vec<(u32, Vec<u8>, Sees)> = insertion_schedule(isn)
        .into_iter()
        .filter(|(_, _, sees)| *sees != Sees::MonitorOnly)
        .collect();
    let clean_tracer = Tracer::with_capacity(256);
    let _ = replay_traced(isn, &clean_sched, clean_tracer.clone());
    let attack_tracer = Tracer::with_capacity(256);
    let _ = replay_traced(isn, &insertion_schedule(isn), attack_tracer.clone());
    let divergence = trace::diff(&clean_tracer.records(), &attack_tracer.records());
    out.push_str(
        "\ntrace diff, clean pair (a) vs TTL-insertion pair (b); \
         sim-time = schedule position:\n",
    );
    out.push_str(&trace::render_diff(divergence.as_ref()));
    let diff_ok = divergence
        .as_ref()
        .and_then(|d| d.right.as_ref())
        .is_some_and(|r| {
            r.stage == "stream"
                && r.kind == "dup_ignored"
                && r.field_u64("seq_lo") == Some(u64::from(isn.wrapping_add(5)))
                && r.field_u64("seq_hi") == Some(u64::from(isn.wrapping_add(10)))
        });

    // Part 5: campaign verdicts are impairment-invariant in bound.
    let spec = |name: &str| {
        underradar_campaign::CampaignSpec::new(name, 29)
            .target("twitter.com")
            .methods([
                underradar_campaign::MethodKind::Overt,
                underradar_campaign::MethodKind::Scan,
            ])
            .policy(underradar_campaign::NamedPolicy::new(
                "control",
                CensorPolicy::new(),
            ))
            .policy(
                underradar_campaign::NamedPolicy::new(
                    "keyword-rst",
                    CensorPolicy::new().block_keyword("falun"),
                )
                .with_probe_path("/falun"),
            )
            .trials_per_cell(2)
            .run_secs(30)
    };
    let clean = underradar_campaign::engine::run(&spec("e13-clean"), 1, tel);
    let impaired_spec = spec("e13-impaired")
        .client_link_reorder(0.2)
        .client_link_duplicate(0.1);
    let impaired = underradar_campaign::engine::run(&impaired_spec, 1, tel);
    let mut verdicts_match = clean.trials.len() == impaired.trials.len();
    let mut matched = 0usize;
    for (a, b) in clean.trials.iter().zip(impaired.trials.iter()) {
        if format!("{:?}", a.verdict) == format!("{:?}", b.verdict) {
            matched += 1;
        } else {
            verdicts_match = false;
        }
    }
    out.push_str("\ncampaign cell with client-link reorder=0.2 duplicate=0.1 vs clean:\n");
    let mut t3 = Table::new(&["trials", "verdicts unchanged", "all correct (clean)"]);
    t3.row(&[
        clean.trials.len().to_string(),
        format!("{matched}/{}", clean.trials.len()),
        mark(clean.trials.iter().all(|t| t.verdict_correct)).to_string(),
    ]);
    out.push_str(&t3.render());

    let pass = in_bound_ok && insertion_ok && evasion_ok && diff_ok && verdicts_match;
    out.push_str(&format!(
        "\nresult: divergence is zero in bound and nonzero exactly under \
         TTL-limiting or hold-back overflow: {}\n\n",
        if pass { "PASSED" } else { "FAILED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn e13_passes() {
        let report = super::run();
        assert!(report.contains("PASSED"), "{report}");
    }
}
