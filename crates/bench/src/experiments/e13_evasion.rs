//! E13 — censor-vs-endpoint divergence under adversarial channel
//! impairments (§4.1 insertion/evasion).
//!
//! The paper's §4.1 tricks work precisely because a monitor in the
//! middle and the real endpoint can disagree about a TCP stream. This
//! experiment replays identical flows past both vantage points — the
//! monitor is the shared tap/IDS [`StreamReassembler`], the endpoint is
//! the *real* simulator TCP stack ([`TcpConn`], the same state machine
//! hosts run) — and sweeps the full divergence matrix: every channel
//! impairment crossed with every evasion class.
//!
//! **Impairments** transform the delivery schedule identically at both
//! vantage points (the tap sits next to the endpoint, so reordering,
//! duplication and loss-then-retransmit look the same from both chairs;
//! checksum corruption is dropped by monitor and endpoint alike, so it
//! degenerates to loss with retransmission). In-bound impairments must
//! therefore never change a verdict — divergence has to come from the
//! evasion class, not the channel.
//!
//! **Evasion classes** (rows of the matrix):
//!
//! * *baseline* — keyword-bearing flow, no trickery: zero divergence
//!   under every impairment.
//! * *retransmit-insertion* — a TTL-limited keyword segment dies after
//!   the tap; the retransmit the endpoint accepts carries innocuous
//!   bytes the monitor discards as a duplicate (keep-first).
//! * *overlap-ambiguity* — two out-of-order copies of the same range
//!   with different payloads: the keep-first monitor reassembles the
//!   first copy, the keep-last endpoint the second.
//! * *ttl-retransmit* — the mirror image, with the monitor configured
//!   keep-last: a TTL-limited *retransmit* overwrites bytes on the
//!   monitor that the endpoint never sees.
//! * *rst-desync* — an out-of-window RST: the monitor tears the flow
//!   down (the paper's exploited behaviour), the endpoint answers with a
//!   challenge ACK and keeps the stream.
//! * *syn-desync* — a stray mid-stream SYN: the monitor resynchronizes
//!   its expected sequence to it, the endpoint ignores it, and a decoy
//!   at the resynced position blinds the monitor to the real bytes.
//! * *window-evasion* — the keyword arrives further out of order than
//!   the endpoint's advertised receive window but inside the monitor's
//!   hold-back bound: the monitor reassembles bytes the endpoint
//!   dropped.
//!
//! For the flips, the monitor's flight recorder narrates causality: a
//! clean replay (the same schedule minus the attack segments) is diffed
//! against the attack replay, and the first divergent decision names the
//! exact mechanism (`dup_ignored` of the real bytes, `ooo_held` of the
//! conflicting copy, `rst_teardown` of the live flow).
//!
//! Finally a campaign cell runs with client-link impairments enabled and
//! checks verdicts match the impairment-free run, and the same spec run
//! on 1 and 4 workers yields byte-identical verdicts.

use std::net::Ipv4Addr;

use underradar_censor::CensorPolicy;
use underradar_ids::stream::{
    Direction, FlowKey, OverlapPolicy, ReassemblyConfig, StreamReassembler,
};
use underradar_netsim::wire::tcp::TcpFlags;
use underradar_netsim::{Packet, SimRng, SimTime, TcpConn, TcpEvent};
use underradar_telemetry::{trace, Tracer};

use crate::table::{heading, mark, Table};

const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 2);
const SERVER: Ipv4Addr = Ipv4Addr::new(93, 184, 0, 10);
const SPORT: u16 = 4000;
const DPORT: u16 = 80;
const KEYWORD: &[u8] = b"falun";

/// Who observes a scheduled segment: both vantage points, or only the
/// monitor (a TTL-limited packet that dies after the tap).
#[derive(Clone, Copy, PartialEq)]
enum Sees {
    Both,
    MonitorOnly,
}

/// What kind of segment a schedule item is.
#[derive(Clone, Copy, PartialEq)]
enum ItemKind {
    Data,
    Rst,
    Syn,
}

/// One scheduled segment. `pinned` items are attack scaffolding whose
/// relative order the impairment transforms must not disturb; unpinned
/// items are benign carrier data fair game for the channel.
#[derive(Clone)]
struct Item {
    seq: u32,
    payload: Vec<u8>,
    kind: ItemKind,
    sees: Sees,
    pinned: bool,
}

impl Item {
    fn data(seq: u32, payload: &[u8], sees: Sees, pinned: bool) -> Item {
        Item {
            seq,
            payload: payload.to_vec(),
            kind: ItemKind::Data,
            sees,
            pinned,
        }
    }
}

/// Channel impairments, applied identically at both vantage points.
#[derive(Clone, Copy, PartialEq)]
enum Impairment {
    None,
    Reorder,
    Duplicate,
    Loss,
    Corrupt,
}

const IMPAIRMENTS: [Impairment; 5] = [
    Impairment::None,
    Impairment::Reorder,
    Impairment::Duplicate,
    Impairment::Loss,
    Impairment::Corrupt,
];

/// Apply one impairment to the unpinned carrier items of a schedule.
/// Loss and corruption both resolve to "the copy is discarded and a
/// retransmit arrives later" — a checksum-invalid segment is dropped by
/// monitor and endpoint alike, so the two are indistinguishable here.
fn impair(schedule: &[Item], imp: Impairment, rng: &mut SimRng) -> Vec<Item> {
    let mut items = schedule.to_vec();
    let unpinned: Vec<usize> = items
        .iter()
        .enumerate()
        .filter(|(_, it)| !it.pinned)
        .map(|(i, _)| i)
        .collect();
    if unpinned.len() < 2 {
        return items;
    }
    match imp {
        Impairment::None => {}
        Impairment::Reorder => {
            // Swap two neighbouring carrier slots.
            let k = rng.index(unpinned.len() - 1);
            items.swap(unpinned[k], unpinned[k + 1]);
        }
        Impairment::Duplicate => {
            let k = unpinned[rng.index(unpinned.len())];
            let copy = items[k].clone();
            items.insert(k + 1, copy);
        }
        Impairment::Loss | Impairment::Corrupt => {
            // First transmission gone (lost, or corrupted and dropped on
            // checksum at both vantage points); the retransmit shows up a
            // couple of slots later.
            let k = unpinned[rng.index(unpinned.len())];
            let it = items.remove(k);
            let dst = (k + 2).min(items.len());
            items.insert(dst, it);
        }
    }
    items
}

/// Per-replay configuration: the monitor's overlap policy and the
/// endpoint's advertised receive window.
#[derive(Clone, Copy)]
struct ReplayCfg {
    monitor_overlap: OverlapPolicy,
    endpoint_rcv_wnd: Option<u32>,
}

impl Default for ReplayCfg {
    fn default() -> Self {
        ReplayCfg {
            monitor_overlap: OverlapPolicy::KeepFirst,
            endpoint_rcv_wnd: None,
        }
    }
}

struct Divergence {
    monitor_only: usize,
    endpoint_only: usize,
    monitor_hit: bool,
    endpoint_hit: bool,
    ooo_dropped: u64,
}

impl Divergence {
    fn diverged(&self) -> bool {
        self.monitor_only > 0 || self.endpoint_only > 0
    }

    fn verdict_flip(&self) -> bool {
        self.monitor_hit != self.endpoint_hit
    }
}

fn contains(hay: &[u8], needle: &[u8]) -> bool {
    hay.windows(needle.len()).any(|w| w == needle)
}

/// Replay one schedule past a fresh monitor (the shared tap/IDS
/// reassembler) and a fresh endpoint (the real simulator TCP stack,
/// accepting the connection like any simulated server), and score the
/// divergence between the monitor's reconstructed stream and the bytes
/// the endpoint actually delivered to its application.
fn replay(isn: u32, schedule: &[Item], cfg: ReplayCfg) -> Divergence {
    replay_traced(isn, schedule, cfg, Tracer::disabled())
}

/// [`replay`] with the monitor's flight recorder attached. There is no
/// simulator clock in this replay, so the trace's sim-time is the
/// schedule position of the segment that triggered the decision.
fn replay_traced(isn: u32, schedule: &[Item], cfg: ReplayCfg, tracer: Tracer) -> Divergence {
    let traced = tracer.is_live();
    let mut monitor = StreamReassembler::with_config(ReassemblyConfig {
        overlap: cfg.monitor_overlap,
        ..ReassemblyConfig::default()
    });
    monitor.set_tracer(tracer);
    let t0 = SimTime::ZERO;
    let syn_seq = isn.wrapping_sub(1);

    // The endpoint under observation: a real accepting TCP connection
    // (keep-last overlap resolution, like mainstream stacks).
    let (mut endpoint, _syn_ack) =
        TcpConn::accept((SERVER, DPORT), (CLIENT, SPORT), syn_seq, 900, t0);
    if let Some(wnd) = cfg.endpoint_rcv_wnd {
        endpoint.set_rcv_wnd(wnd);
    }

    // Handshake past both vantage points.
    let syn = Packet::tcp(
        CLIENT,
        SERVER,
        SPORT,
        DPORT,
        syn_seq,
        0,
        TcpFlags::syn(),
        vec![],
    );
    monitor.process(&syn).expect("syn tracked");
    let syn_ack = Packet::tcp(
        SERVER,
        CLIENT,
        DPORT,
        SPORT,
        900,
        isn,
        TcpFlags::syn_ack(),
        vec![],
    );
    monitor.process(&syn_ack).expect("syn-ack tracked");
    let ack = Packet::tcp(
        CLIENT,
        SERVER,
        SPORT,
        DPORT,
        isn,
        901,
        TcpFlags::ack(),
        vec![],
    );
    let ctx = monitor.process(&ack).expect("ack tracked");
    let key: FlowKey = ctx.key;
    let ack_seg = ack.as_tcp().expect("ack is tcp");
    let _ = endpoint.on_segment(ack_seg, t0);

    let mut endpoint_stream: Vec<u8> = Vec::new();
    for (i, item) in schedule.iter().enumerate() {
        if traced {
            monitor.set_now(i as u64);
        }
        let flags = match item.kind {
            ItemKind::Data => TcpFlags::psh_ack(),
            ItemKind::Rst => TcpFlags::rst(),
            ItemKind::Syn => TcpFlags::syn(),
        };
        let pkt = Packet::tcp(
            CLIENT,
            SERVER,
            SPORT,
            DPORT,
            item.seq,
            if item.kind == ItemKind::Syn { 0 } else { 901 },
            flags,
            item.payload.clone(),
        );
        monitor.process(&pkt);
        if item.sees == Sees::Both {
            let seg = pkt.as_tcp().expect("scheduled items are tcp");
            let (_acks, events) = endpoint.on_segment(seg, t0);
            for ev in events {
                if let TcpEvent::Data(d) = ev {
                    endpoint_stream.extend_from_slice(&d);
                }
            }
        }
    }

    let monitor_stream = monitor.stream_of(&key, Direction::ToServer).to_vec();
    let lcp = monitor_stream
        .iter()
        .zip(endpoint_stream.iter())
        .take_while(|(a, b)| a == b)
        .count();
    Divergence {
        monitor_only: monitor_stream.len() - lcp,
        endpoint_only: endpoint_stream.len() - lcp,
        monitor_hit: contains(&monitor_stream, KEYWORD),
        endpoint_hit: contains(&endpoint_stream, KEYWORD),
        ooo_dropped: monitor.stats().ooo_dropped,
    }
}

/// One row of the divergence matrix.
struct EvasionClass {
    name: &'static str,
    isn: u32,
    cfg: ReplayCfg,
    /// Expected flip direction under attack: `Some(true)` = monitor sees
    /// the keyword and the endpoint doesn't (insertion), `Some(false)` =
    /// the endpoint sees it and the monitor doesn't (evasion), `None` =
    /// no flip expected (baseline).
    expect_monitor_hit: Option<bool>,
    schedule: Vec<Item>,
}

fn baseline_class(isn: u32) -> EvasionClass {
    let stream = b"GET /falun HTTP/1.0 host: x";
    let mut schedule = Vec::new();
    for (i, chunk) in stream.chunks(6).enumerate() {
        schedule.push(Item::data(
            isn.wrapping_add((i * 6) as u32),
            chunk,
            Sees::Both,
            false,
        ));
    }
    EvasionClass {
        name: "baseline (no evasion)",
        isn,
        cfg: ReplayCfg::default(),
        expect_monitor_hit: None,
        schedule,
    }
}

/// §4.1 insertion: a TTL-limited keyword segment dies after the tap; the
/// "retransmit" the endpoint accepts carries innocuous bytes the
/// keep-first monitor discards as a duplicate.
fn insertion_class(isn: u32) -> EvasionClass {
    EvasionClass {
        name: "retransmit-insertion",
        isn,
        cfg: ReplayCfg::default(),
        expect_monitor_hit: Some(true),
        schedule: vec![
            Item::data(isn, b"GET /", Sees::Both, false),
            Item::data(isn.wrapping_add(5), KEYWORD, Sees::MonitorOnly, true),
            Item::data(isn.wrapping_add(5), b"files", Sees::Both, true),
            Item::data(isn.wrapping_add(10), b" HTTP", Sees::Both, false),
            Item::data(isn.wrapping_add(15), b"/1.0x", Sees::Both, false),
        ],
    }
}

/// Overlapping out-of-order retransmits with different payloads: the
/// keep-first monitor keeps the first copy, the keep-last endpoint the
/// second. Both copies arrive ahead of a gap that fills last.
fn overlap_class(isn: u32) -> EvasionClass {
    EvasionClass {
        name: "overlap-ambiguity",
        isn,
        cfg: ReplayCfg::default(),
        expect_monitor_hit: Some(true),
        schedule: vec![
            Item::data(isn.wrapping_add(5), KEYWORD, Sees::Both, true),
            Item::data(isn.wrapping_add(5), b"files", Sees::Both, true),
            Item::data(isn.wrapping_add(10), b" HTTP", Sees::Both, false),
            Item::data(isn.wrapping_add(15), b"/1.0x", Sees::Both, false),
            Item::data(isn, b"GET /", Sees::Both, true),
        ],
    }
}

/// TTL-limited retransmit against a keep-last monitor: the legitimate
/// bytes arrive first, then a TTL-limited copy with the keyword rewrites
/// them on the monitor alone.
fn ttl_retransmit_class(isn: u32) -> EvasionClass {
    EvasionClass {
        name: "ttl-retransmit (monitor keep-last)",
        isn,
        cfg: ReplayCfg {
            monitor_overlap: OverlapPolicy::KeepLast,
            endpoint_rcv_wnd: None,
        },
        expect_monitor_hit: Some(true),
        schedule: vec![
            Item::data(isn, b"GET /", Sees::Both, false),
            Item::data(isn.wrapping_add(5), b"files", Sees::Both, true),
            Item::data(isn.wrapping_add(5), KEYWORD, Sees::MonitorOnly, true),
            Item::data(isn.wrapping_add(10), b" HTTP", Sees::Both, false),
            Item::data(isn.wrapping_add(15), b"/1.0x", Sees::Both, false),
        ],
    }
}

/// TCB desync by out-of-window RST: the monitor tears the flow down on
/// any RST (the paper's exploited behaviour); the endpoint validates the
/// sequence, answers with a challenge ACK, and keeps the stream. The
/// keyword straddles the RST so the monitor's post-teardown pickup never
/// reassembles it.
fn rst_desync_class(isn: u32) -> EvasionClass {
    EvasionClass {
        name: "rst-desync",
        isn,
        cfg: ReplayCfg::default(),
        expect_monitor_hit: Some(false),
        schedule: vec![
            Item::data(isn, b"GET /fa", Sees::Both, true),
            Item {
                seq: isn.wrapping_add(200_000),
                payload: vec![],
                kind: ItemKind::Rst,
                sees: Sees::Both,
                pinned: true,
            },
            Item::data(isn.wrapping_add(7), b"lun", Sees::Both, true),
            Item::data(isn.wrapping_add(10), b" HTT", Sees::Both, false),
            Item::data(isn.wrapping_add(14), b"P/1.0", Sees::Both, false),
        ],
    }
}

/// TCB desync by stray mid-stream SYN: the monitor resynchronizes its
/// expected sequence to the SYN; the endpoint ignores it. A decoy at the
/// resynced position feeds the monitor innocuous bytes while the real
/// continuation (stale from the monitor's new viewpoint) carries the
/// keyword to the endpoint.
fn syn_desync_class(isn: u32) -> EvasionClass {
    EvasionClass {
        name: "syn-desync",
        isn,
        cfg: ReplayCfg::default(),
        expect_monitor_hit: Some(false),
        schedule: vec![
            Item::data(isn, b"GET /fal", Sees::Both, true),
            Item {
                seq: isn.wrapping_add(4999),
                payload: vec![],
                kind: ItemKind::Syn,
                sees: Sees::Both,
                pinned: true,
            },
            Item::data(isn.wrapping_add(5000), b"XXXXX", Sees::Both, true),
            Item::data(isn.wrapping_add(8), b"un ", Sees::Both, true),
            Item::data(isn.wrapping_add(11), b"HTT", Sees::Both, false),
            Item::data(isn.wrapping_add(14), b"P/1.0", Sees::Both, false),
        ],
    }
}

/// Window evasion: the keyword arrives displaced beyond the endpoint's
/// advertised receive window (it drops the segment) but inside the
/// monitor's hold-back bound (it buffers and later reassembles it).
fn window_evasion_class(isn: u32) -> EvasionClass {
    let mut schedule = vec![
        Item::data(isn, b"GET /", Sees::Both, true),
        Item::data(isn.wrapping_add(6000), KEYWORD, Sees::Both, true),
    ];
    let mut off = 5usize;
    while off < 6000 {
        let take = 1024.min(6000 - off);
        schedule.push(Item::data(
            isn.wrapping_add(off as u32),
            &vec![b'x'; take],
            Sees::Both,
            false,
        ));
        off += take;
    }
    EvasionClass {
        name: "window-evasion",
        isn,
        cfg: ReplayCfg {
            monitor_overlap: OverlapPolicy::KeepFirst,
            endpoint_rcv_wnd: Some(4096),
        },
        expect_monitor_hit: Some(true),
        schedule,
    }
}

/// A random keyword-bearing flow scheduled with in-bound impairments:
/// bounded reordering, duplicates, and same-byte overlapping
/// retransmits.
fn impaired_schedule(rng: &mut SimRng, isn: u32) -> Vec<Item> {
    let len = 256 + rng.index(768);
    let mut stream: Vec<u8> = (0..len).map(|i| b'a' + ((i * 7 + 3) % 23) as u8).collect();
    let at = rng.index(len - KEYWORD.len());
    stream[at..at + KEYWORD.len()].copy_from_slice(KEYWORD);

    // Segment, then shuffle by bounded rank displacement (well inside
    // the monitor's hold-back budget) with occasional duplicates and
    // overlapping re-sends.
    let mut segs: Vec<(u32, Vec<u8>)> = Vec::new();
    let mut off = 0usize;
    while off < stream.len() {
        let take = (1 + rng.index(128)).min(stream.len() - off);
        segs.push((
            isn.wrapping_add(off as u32),
            stream[off..off + take].to_vec(),
        ));
        off += take;
    }
    let mut ranked: Vec<(usize, u32, Vec<u8>)> = Vec::new();
    for (i, (seq, payload)) in segs.iter().enumerate() {
        ranked.push((i * 4 + rng.index(8), *seq, payload.clone()));
        if rng.chance(0.15) {
            ranked.push((i * 4 + rng.index(8), *seq, payload.clone()));
        }
        if i > 0 && rng.chance(0.15) {
            // Overlapping retransmit reaching back into delivered bytes.
            let start = seq.wrapping_sub(isn) as usize;
            let back = 1 + rng.index(start.min(24));
            let take = (back + 1 + rng.index(16)).min(stream.len() - (start - back));
            ranked.push((
                i * 4 + rng.index(8),
                isn.wrapping_add((start - back) as u32),
                stream[start - back..start - back + take].to_vec(),
            ));
        }
    }
    ranked.sort_by_key(|(rank, _, _)| *rank);
    // Lead with the first in-order byte so the monitor anchors its
    // expected sequence at the ISN rather than mid-stream.
    let mut schedule = vec![Item::data(isn, &stream[0..1], Sees::Both, true)];
    schedule.extend(
        ranked
            .into_iter()
            .map(|(_, seq, payload)| Item::data(seq, &payload, Sees::Both, true)),
    );
    schedule
}

/// The clean twin of an attack schedule: the same carrier bytes without
/// the attack segments (TTL-limited copies, injected RST/SYN, and for
/// the overlap class the conflicting second copy).
fn clean_twin(class: &EvasionClass) -> Vec<Item> {
    class
        .schedule
        .iter()
        .filter(|it| it.sees == Sees::Both && it.kind == ItemKind::Data)
        .filter(|it| !(class.name == "overlap-ambiguity" && it.payload == b"files"))
        .cloned()
        .collect()
}

/// Run E13 with a disabled telemetry handle.
pub fn run() -> String {
    run_with(&underradar_telemetry::Telemetry::disabled())
}

/// Run E13 and render its report, recording telemetry into `tel`.
pub fn run_with(tel: &underradar_telemetry::Telemetry) -> String {
    let mut out = heading(
        "E13",
        "§4.1 insertion/evasion",
        "monitor and endpoint agree under in-bound impairments; every \
         evasion class flips the keyword verdict under every impairment",
    );

    // Part 1: in-bound impairment schedules must not diverge — the
    // monitor's stream equals what the real endpoint stack delivered.
    let trials = 32usize;
    let mut rng = SimRng::seed_from_u64(0xE13_0001);
    let mut divergent = 0usize;
    let mut flips = 0usize;
    let mut dropped = 0u64;
    for i in 0..trials {
        let isn = 0x4000_0000u32.wrapping_mul(i as u32).wrapping_add(101);
        let d = replay(isn, &impaired_schedule(&mut rng, isn), ReplayCfg::default());
        if d.diverged() {
            divergent += 1;
        }
        if d.verdict_flip() {
            flips += 1;
        }
        dropped += d.ooo_dropped;
        if !d.endpoint_hit {
            // The keyword is always embedded; the endpoint must see it.
            flips += 1;
        }
    }
    out.push_str("in-bound impairments (reorder/duplicate/overlap within hold-back):\n");
    let mut t1 = Table::new(&[
        "trials",
        "divergent streams",
        "verdict flips",
        "monitor drops",
    ]);
    t1.row(&[
        trials.to_string(),
        divergent.to_string(),
        flips.to_string(),
        dropped.to_string(),
    ]);
    out.push_str(&t1.render());
    let in_bound_ok = divergent == 0 && flips == 0 && dropped == 0;

    // Part 2: the divergence matrix — every impairment × every evasion
    // class. The baseline row must never flip; every attack row must
    // flip in its expected direction under every impairment.
    let classes = [
        baseline_class(0x1000_0065),
        insertion_class(0x7fff_ff00),
        overlap_class(0x2000_0065),
        ttl_retransmit_class(0x3000_0065),
        rst_desync_class(0x4000_0065),
        syn_desync_class(0x5000_0065),
        window_evasion_class(0x0000_0065),
    ];
    out.push_str("\ndivergence matrix (verdict flip per impairment; kw = none-impaired):\n");
    let mut t2 = Table::new(&[
        "evasion class",
        "none",
        "reorder",
        "duplicate",
        "loss",
        "corrupt",
        "mon kw",
        "ep kw",
    ]);
    let mut cells = 0usize;
    let mut total_flips = 0usize;
    let mut matrix_ok = true;
    for class in classes.iter() {
        let mut row = vec![class.name.to_string()];
        let mut none_hits = (false, false);
        for (j, imp) in IMPAIRMENTS.iter().enumerate() {
            let mut imp_rng = SimRng::seed_from_u64(0xE13_2000 + (cells as u64) * 31 + j as u64);
            let schedule = impair(&class.schedule, *imp, &mut imp_rng);
            let d = replay(class.isn, &schedule, class.cfg);
            cells += 1;
            if d.verdict_flip() {
                total_flips += 1;
            }
            let cell_ok = match class.expect_monitor_hit {
                None => !d.diverged() && !d.verdict_flip() && d.monitor_hit && d.endpoint_hit,
                Some(mon_hit) => d.verdict_flip() && d.diverged() && d.monitor_hit == mon_hit,
            };
            matrix_ok &= cell_ok;
            row.push(mark(d.verdict_flip()).to_string());
            if *imp == Impairment::None {
                none_hits = (d.monitor_hit, d.endpoint_hit);
            }
        }
        row.push(mark(none_hits.0).to_string());
        row.push(mark(none_hits.1).to_string());
        t2.row(&row);
    }
    out.push_str(&t2.render());
    out.push_str(&format!(
        "divergence matrix: {cells} cells, {total_flips} verdict flips\n"
    ));
    let count_ok = cells == 35 && total_flips == 30;

    // Part 3: the overlap knob closes the overlap-ambiguity gap — a
    // keep-last monitor agrees with the keep-last endpoint.
    let aligned = replay(
        0x2000_0065,
        &overlap_class(0x2000_0065).schedule,
        ReplayCfg {
            monitor_overlap: OverlapPolicy::KeepLast,
            endpoint_rcv_wnd: None,
        },
    );
    let knob_ok = !aligned.verdict_flip() && !aligned.diverged();
    out.push_str(&format!(
        "\nkeep-last monitor vs keep-last endpoint on the overlap schedule: \
         divergence {} flip {} (knob closes the gap: {})\n",
        aligned.monitor_only + aligned.endpoint_only,
        mark(aligned.verdict_flip()),
        mark(knob_ok)
    ));

    // Part 4: flight-recorder narration. For three flip mechanisms, diff
    // the monitor's decision stream between the clean twin and the attack
    // replay: the first divergent decision names the mechanism.
    let mut narration_ok = true;
    out.push_str("\nfirst divergent monitor decision, clean twin (a) vs attack (b):\n");
    for (class, want_kind, offset) in [
        (&classes[1], "dup_ignored", Some(5u32)),
        (&classes[2], "ooo_held", Some(5u32)),
        (&classes[4], "rst_teardown", None),
    ] {
        let want_seq_lo = offset.map(|o| class.isn.wrapping_add(o));
        let clean_tracer = Tracer::with_capacity(256);
        let _ = replay_traced(
            class.isn,
            &clean_twin(class),
            class.cfg,
            clean_tracer.clone(),
        );
        let attack_tracer = Tracer::with_capacity(256);
        let _ = replay_traced(class.isn, &class.schedule, class.cfg, attack_tracer.clone());
        let divergence = trace::diff(&clean_tracer.records(), &attack_tracer.records());
        out.push_str(&format!("\n[{}]\n", class.name));
        out.push_str(&trace::render_diff(divergence.as_ref()));
        let ok = divergence
            .as_ref()
            .and_then(|d| d.right.as_ref())
            .is_some_and(|r| {
                r.stage == "stream"
                    && r.kind == want_kind
                    && want_seq_lo
                        .map(|lo| r.field_u64("seq_lo") == Some(u64::from(lo)))
                        .unwrap_or(true)
            });
        narration_ok &= ok;
    }

    // Part 5: campaign verdicts are impairment-invariant in bound, and
    // shard count does not change them.
    let spec = |name: &str| {
        underradar_campaign::CampaignSpec::new(name, 29)
            .target("twitter.com")
            .methods([
                underradar_campaign::MethodKind::Overt,
                underradar_campaign::MethodKind::Scan,
            ])
            .policy(underradar_campaign::NamedPolicy::new(
                "control",
                CensorPolicy::new(),
            ))
            .policy(
                underradar_campaign::NamedPolicy::new(
                    "keyword-rst",
                    CensorPolicy::new().block_keyword("falun"),
                )
                .with_probe_path("/falun"),
            )
            .trials_per_cell(2)
            .run_secs(30)
    };
    let clean = underradar_campaign::engine::run(&spec("e13-clean"), 1, tel);
    let impaired_spec = spec("e13-impaired")
        .client_link_reorder(0.2)
        .client_link_duplicate(0.1);
    let impaired = underradar_campaign::engine::run(&impaired_spec, 1, tel);
    let mut verdicts_match = clean.trials.len() == impaired.trials.len();
    let mut matched = 0usize;
    for (a, b) in clean.trials.iter().zip(impaired.trials.iter()) {
        if format!("{:?}", a.verdict) == format!("{:?}", b.verdict) {
            matched += 1;
        } else {
            verdicts_match = false;
        }
    }
    out.push_str("\ncampaign cell with client-link reorder=0.2 duplicate=0.1 vs clean:\n");
    let mut t3 = Table::new(&["trials", "verdicts unchanged", "all correct (clean)"]);
    t3.row(&[
        clean.trials.len().to_string(),
        format!("{matched}/{}", clean.trials.len()),
        mark(clean.trials.iter().all(|t| t.verdict_correct)).to_string(),
    ]);
    out.push_str(&t3.render());

    let sharded = underradar_campaign::engine::run(&spec("e13-clean"), 4, tel);
    let shard_identical = clean.trials.len() == sharded.trials.len()
        && clean
            .trials
            .iter()
            .zip(sharded.trials.iter())
            .all(|(a, b)| format!("{:?}", a.verdict) == format!("{:?}", b.verdict));
    out.push_str(&format!(
        "1-vs-4-shard verdicts: {}\n",
        if shard_identical {
            "byte-identical"
        } else {
            "DIVERGED"
        }
    ));

    let pass = in_bound_ok
        && matrix_ok
        && count_ok
        && knob_ok
        && narration_ok
        && verdicts_match
        && shard_identical;
    out.push_str(&format!(
        "\nresult: divergence is zero in bound and the full evasion matrix \
         flips verdicts with narrated causes: {}\n\n",
        if pass { "PASSED" } else { "FAILED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn e13_passes() {
        let report = super::run();
        assert!(report.contains("PASSED"), "{report}");
    }
}
