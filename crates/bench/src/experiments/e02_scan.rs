//! E2 — §3.1 Method #1 / §3.2.2: the scanning measurement.
//!
//! "Our scanning traffic is evasive because we use nmap for SYN scanning
//! ... Our scanning measurement is accurate because nmap can detect which
//! ports are open, thereby enabling us to infer censorship if a port that
//! should be open is not (e.g., port 80 for BBC.com)."
//!
//! Matrix: censorship scenario × (accuracy, evasion) — expressed as a
//! thin `CampaignSpec` with one policy column per scenario, driven by
//! the campaign engine.

use underradar_campaign::{engine, CampaignSpec, MethodKind, NamedPolicy};
use underradar_censor::CensorPolicy;
use underradar_core::testbed::TargetSite;
use underradar_netsim::addr::Cidr;

use crate::table::{heading, mark, Table};

/// Run E2 with a disabled telemetry handle.
pub fn run() -> String {
    run_with(&underradar_telemetry::Telemetry::disabled())
}

/// Run E2 and render its report, recording telemetry into `tel`.
pub fn run_with(tel: &underradar_telemetry::Telemetry) -> String {
    let mut out = heading(
        "E2",
        "§3.2.2 (Method #1: scanning)",
        "SYN scans detect blocking per port AND are discarded by the MVR",
    );
    let target = TargetSite::numbered("twitter.com", 0).web_ip;
    let spec = CampaignSpec::new("e02-scan", 7)
        .target("twitter.com")
        .method(MethodKind::Scan)
        .policy(NamedPolicy::new(
            "open service (control)",
            CensorPolicy::new(),
        ))
        .policy(NamedPolicy::new(
            "IP blackholed",
            CensorPolicy::new().block_ip(Cidr::host(target)),
        ))
        .policy(NamedPolicy::new(
            "port 80 blocked",
            CensorPolicy::new().block_port(Cidr::host(target), 80),
        ))
        .run_secs(30);
    let report = engine::run(&spec, 1, tel);

    let mut table = Table::new(&[
        "scenario",
        "verdict",
        "correct",
        "open/closed/filtered (of 60)",
        "evades",
    ]);
    let mut all_pass = true;
    for trial in &report.trials {
        all_pass &= trial.verdict_correct && trial.evaded;
        table.row(&[
            trial.policy.clone(),
            trial.verdict.to_string(),
            mark(trial.verdict_correct).to_string(),
            format!(
                "{}/{}/{}",
                super::campaign::evidence(trial, "open"),
                super::campaign::evidence(trial, "closed"),
                super::campaign::evidence(trial, "filtered"),
            ),
            mark(trial.evaded).to_string(),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nresult: scanning satisfies both §3.2 criteria (evasion + accuracy): {}\n\n",
        if all_pass { "PASSED" } else { "FAILED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn e2_passes() {
        let report = super::run();
        assert!(report.contains("PASSED"), "{report}");
    }
}
