//! E2 — §3.1 Method #1 / §3.2.2: the scanning measurement.
//!
//! "Our scanning traffic is evasive because we use nmap for SYN scanning
//! ... Our scanning measurement is accurate because nmap can detect which
//! ports are open, thereby enabling us to infer censorship if a port that
//! should be open is not (e.g., port 80 for BBC.com)."
//!
//! Matrix: censorship scenario × (accuracy, evasion), scanning the top-60
//! ports of the target so the MVR's scan classifier engages.

use underradar_censor::CensorPolicy;
use underradar_core::methods::scan::SynScanProbe;
use underradar_core::ports::top_ports;
use underradar_core::risk::RiskReport;
use underradar_core::testbed::{TargetSite, Testbed, TestbedConfig};
use underradar_netsim::addr::Cidr;
use underradar_netsim::time::SimTime;

use crate::table::{heading, mark, Table};

/// Run E2 with a disabled telemetry handle.
pub fn run() -> String {
    run_with(&underradar_telemetry::Telemetry::disabled())
}

/// Run E2 and render its report, recording telemetry into `tel`.
pub fn run_with(tel: &underradar_telemetry::Telemetry) -> String {
    let mut out = heading(
        "E2",
        "§3.2.2 (Method #1: scanning)",
        "SYN scans detect blocking per port AND are discarded by the MVR",
    );
    let target = TargetSite::numbered("twitter.com", 0).web_ip;
    let scenarios: Vec<(&str, CensorPolicy, bool)> = vec![
        ("open service (control)", CensorPolicy::new(), false),
        (
            "IP blackholed",
            CensorPolicy::new().block_ip(Cidr::host(target)),
            true,
        ),
        (
            "port 80 blocked",
            CensorPolicy::new().block_port(Cidr::host(target), 80),
            true,
        ),
    ];
    let mut table = Table::new(&[
        "scenario",
        "verdict",
        "correct",
        "open/closed/filtered (of 60)",
        "MVR discarded",
        "evades",
    ]);
    let mut all_pass = true;
    for (name, policy, _expect_censored) in scenarios {
        let mut tb = Testbed::build(TestbedConfig {
            policy,
            seed: 7,
            ..TestbedConfig::default()
        });
        let scope = crate::telemetry::instrument_testbed(&mut tb, tel);
        let probe = SynScanProbe::new(target, top_ports(60), vec![80]);
        let idx = tb.spawn_on_client(SimTime::ZERO, Box::new(probe));
        tb.run_secs(30);
        let scan = tb.client_task::<SynScanProbe>(idx).expect("scan state");
        let verdict = scan.verdict();
        let report = RiskReport::evaluate(&tb, &verdict);
        crate::telemetry::finish_testbed(&tb, &scope, tel);
        let (mut open, mut closed) = (0, 0);
        for port in top_ports(60) {
            match scan.port_state(port) {
                underradar_core::methods::scan::PortState::Open => open += 1,
                underradar_core::methods::scan::PortState::Closed => closed += 1,
                underradar_core::methods::scan::PortState::Filtered => {}
            }
        }
        let filtered = 60 - open - closed;
        all_pass &= report.verdict_correct && report.evades();
        table.row(&[
            name.to_string(),
            verdict.to_string(),
            mark(report.verdict_correct).to_string(),
            format!("{open}/{closed}/{filtered}"),
            tb.surveillance().stats().discarded.to_string(),
            mark(report.evades()).to_string(),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nresult: scanning satisfies both §3.2 criteria (evasion + accuracy): {}\n\n",
        if all_pass { "PASSED" } else { "FAILED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn e2_passes() {
        let report = super::run();
        assert!(report.contains("PASSED"), "{report}");
    }
}
