//! E10 — §4.2: spoofing feasibility (Beverly et al.).
//!
//! "Beverly et al. determined that 77% of clients can spoof other
//! addresses within their own /24, and 11% can spoof addresses within
//! their own /16 ... Because so many clients can spoof adjacent IPs, our
//! approach should work in practice on many networks."
//!
//! Sample a large client population under the measured filter deployment,
//! report the spoofability fractions, and measure the cover each class of
//! client can actually raise.

use underradar_netsim::addr::Cidr;
use underradar_netsim::rng::SimRng;
use underradar_spoof::{cover_sources, BeverlyFractions, FilterGranularity, SpoofPopulation};

use crate::table::{heading, Table};

/// Population size for the sample.
pub const CLIENTS: usize = 20_000;

/// Run E10 with a disabled telemetry handle.
pub fn run() -> String {
    run_with(&underradar_telemetry::Telemetry::disabled())
}

/// Run E10 and render its report, recording telemetry into `tel`.
pub fn run_with(tel: &underradar_telemetry::Telemetry) -> String {
    let mut out = heading(
        "E10",
        "§4.2 (spoofing feasibility, Beverly et al.)",
        "77% of clients can spoof within their /24; 11% within their /16",
    );
    let mut rng = SimRng::seed_from_u64(409);
    let population = SpoofPopulation::sample(
        Cidr::slash16(std::net::Ipv4Addr::new(10, 20, 0, 0)),
        CLIENTS,
        BeverlyFractions::default(),
        &mut rng,
    );

    population.export_telemetry(tel);
    let mut table = Table::new(&["capability", "paper", "measured"]);
    table.row(&[
        "can spoof within /24".to_string(),
        "77%".to_string(),
        format!("{:.1}%", population.fraction_spoof_24() * 100.0),
    ]);
    table.row(&[
        "can spoof within /16".to_string(),
        "11%".to_string(),
        format!("{:.1}%", population.fraction_spoof_16() * 100.0),
    ]);
    table.row(&[
        "fully filtered (no spoofing)".to_string(),
        "23%".to_string(),
        format!("{:.1}%", population.fraction_filtered() * 100.0),
    ]);
    out.push_str(&table.render());

    // Cover capacity per capability class.
    out.push_str("\ncover sources obtainable per client class (request k=100):\n");
    let mut cover_table = Table::new(&[
        "filter class",
        "clients",
        "avg cover sources",
        "max anonymity",
    ]);
    for (label, granularity, max_anon) in [
        ("/24-spoofable", FilterGranularity::Slash24, 256u64),
        ("/16-spoofable", FilterGranularity::Slash16, 65_536),
        ("filtered", FilterGranularity::Exact, 1),
    ] {
        let members: Vec<_> = population
            .clients
            .iter()
            .filter(|c| c.capability == granularity)
            .take(50)
            .collect();
        let mut total = 0usize;
        for c in &members {
            total += cover_sources(c, 100, &mut rng).len();
        }
        let avg = if members.is_empty() {
            0.0
        } else {
            total as f64 / members.len() as f64
        };
        cover_table.row(&[
            label.to_string(),
            members.len().to_string(),
            format!("{avg:.0}"),
            max_anon.to_string(),
        ]);
    }
    out.push_str(&cover_table.render());

    let f24 = population.fraction_spoof_24();
    let f16 = population.fraction_spoof_16();
    let pass = (f24 - 0.77).abs() < 0.02 && (f16 - 0.11).abs() < 0.02;
    out.push_str(&format!(
        "\nresult: deployment fractions match Beverly within sampling error: {}\n\n",
        if pass { "PASSED" } else { "FAILED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn e10_passes() {
        let report = super::run();
        assert!(report.contains("PASSED"), "{report}");
    }
}
