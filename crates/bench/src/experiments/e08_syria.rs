//! E8 — §2.2: the Syria-log infeasibility argument.
//!
//! "An analysis of two days of leaked censorship log files from Syria
//! shows that 1.57% of the population accessed at least one censored
//! site, far too many people for the surveillance system to pursue."
//!
//! Generate the calibrated synthetic log, reproduce the 1.57% statistic,
//! then run the analyst capacity model over the flagged users to show how
//! small a fraction could actually be pursued.

use underradar_ids::alert::Alert;
use underradar_ids::rule::RuleAction;
use underradar_netsim::rng::SimRng;
use underradar_surveil::analyst::{Analyst, AnalystConfig};
use underradar_workloads::syria::{SyriaLog, SyriaLogConfig};

use crate::table::{heading, Table};

/// Population size for the synthetic log.
pub const USERS: u32 = 30_000;

/// Run E8 with a disabled telemetry handle.
pub fn run() -> String {
    run_with(&underradar_telemetry::Telemetry::disabled())
}

/// Run E8 and render its report, recording telemetry into `tel`.
pub fn run_with(tel: &underradar_telemetry::Telemetry) -> String {
    let mut out = heading(
        "E8",
        "§2.2 (Syria censorship logs)",
        "≈1.57% of users touch censored content — too many to pursue",
    );
    let config = SyriaLogConfig::paper_calibrated(USERS);
    let mut rng = SimRng::seed_from_u64(1507);
    let log = SyriaLog::generate(&config, &mut rng);

    log.export_telemetry(tel);
    let frac = log.fraction_users_censored();
    let flagged = log.users_with_censored_access();
    let mut table = Table::new(&["metric", "paper", "measured"]);
    table.row(&[
        "users with ≥1 censored access".to_string(),
        "1.57%".to_string(),
        format!("{:.2}% ({flagged} of {USERS})", frac * 100.0),
    ]);
    table.row(&[
        "total requests (2 days)".to_string(),
        "(not reported)".to_string(),
        log.total_requests().to_string(),
    ]);
    table.row(&[
        "censored requests".to_string(),
        "(not reported)".to_string(),
        log.censored_requests().to_string(),
    ]);
    out.push_str(&table.render());

    // Alert-on-every-censored-access: feed the flagged users into the
    // analyst model at several capacities.
    let alerts: Vec<Alert> = log
        .entries
        .iter()
        .filter(|e| e.censored)
        .map(|e| Alert {
            time: e.time,
            sid: 9_100_000,
            msg: format!("censored access to {}", e.domain),
            action: RuleAction::Alert,
            src: std::net::Ipv4Addr::from(0x0a00_0000u32 | e.user),
            src_port: None,
            dst: std::net::Ipv4Addr::new(203, 0, 113, 113),
            dst_port: Some(80),
            classtype: Some("censored-lookup".to_string()),
        })
        .collect();

    out.push_str("\nanalyst pursuit capacity vs flagged users (min 1 alert to queue):\n");
    let mut cap_table = Table::new(&[
        "capacity/day",
        "queued users",
        "pursued",
        "% of flagged pursued",
    ]);
    for capacity in [10usize, 50, 200] {
        let analyst = Analyst::new(AnalystConfig {
            pursuit_capacity: capacity,
            min_alerts: 1,
        });
        let triage = analyst.triage(&alerts);
        let pursued = triage.iter().filter(|i| i.pursued).count();
        tel.set_counter(
            &format!("surveil.analyst.cap{capacity}.pursued"),
            pursued as u64,
        );
        tel.set_counter(
            &format!("surveil.analyst.cap{capacity}.queued"),
            triage.len() as u64,
        );
        cap_table.row(&[
            capacity.to_string(),
            triage.len().to_string(),
            pursued.to_string(),
            format!(
                "{:.1}%",
                100.0 * pursued as f64 / triage.len().max(1) as f64
            ),
        ]);
    }
    out.push_str(&cap_table.render());

    let pass = (frac - 0.0157).abs() < 0.004 && flagged > 200;
    out.push_str(&format!(
        "\nresult: the 1.57% statistic reproduced; even 200 pursuits/day covers <50%\n\
         of flagged users — alarming on all censored queries is infeasible: {}\n\n",
        if pass { "PASSED" } else { "FAILED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn e8_passes() {
        let report = super::run();
        assert!(report.contains("PASSED"), "{report}");
    }
}
