//! E7 — **Figure 3b**: stateful mimicry with TTL-limited replies.
//!
//! "the measurement client spoofs a SYN from another client in the AS, the
//! measurement server responds to the spoofed client with a TTL limited
//! query which dies in the network, and the measurement client sends an
//! ACK."
//!
//! Sweep the server's reply TTL across the routed topology
//! (`server - R3 - R2[taps] - R1 - switch - Y`) and record, per TTL:
//! whether the monitors at R2 saw the reply, whether the spoofed neighbor
//! Y received it (the replay hazard), whether Y RST the flow, and whether
//! the keyword measurement still detected censorship.

use underradar_censor::{CensorPolicy, TapCensor};
use underradar_core::methods::stateful::{MimicServer, RoutedMimicryNet, StatefulMimicry};
use underradar_netsim::host::Host;
use underradar_netsim::time::{SimDuration, SimTime};

use crate::table::{heading, mark, Table};

const PORT: u16 = 7443;
const ISS: u32 = 0x5151_aaaa;

struct TtlOutcome {
    tap_saw_reply: bool,
    neighbor_got_reply: bool,
    neighbor_rst: bool,
    server_got_data: bool,
    censor_detected: bool,
    flow_reset: bool,
}

fn run_ttl(
    tel: &underradar_telemetry::Telemetry,
    reply_ttl: Option<u8>,
    keyword_blocked: bool,
) -> TtlOutcome {
    let policy = if keyword_blocked {
        CensorPolicy::new().block_keyword("falun")
    } else {
        CensorPolicy::new()
    };
    let mut net = RoutedMimicryNet::build(17, policy);
    let scope = crate::telemetry::instrument_routed(&mut net, tel);
    net.sim
        .node_mut::<Host>(net.mserver)
        .expect("mserver")
        .spawn_task_at(
            SimTime::ZERO,
            Box::new(MimicServer::new(PORT, ISS, reply_ttl)),
        );
    let payload: &[u8] = if keyword_blocked {
        b"GET /falun HTTP/1.0\r\n\r\n"
    } else {
        b"GET /weather HTTP/1.0\r\n\r\n"
    };
    net.sim
        .node_mut::<Host>(net.client)
        .expect("client")
        .spawn_task_at(
            SimTime::ZERO,
            Box::new(StatefulMimicry::new(
                net.cover_ip,
                net.mserver_ip,
                PORT,
                ISS,
                payload,
            )),
        );
    net.sim.run_for(SimDuration::from_secs(10)).expect("run");

    let cap = net.sim.capture().expect("capture enabled");
    let tap_saw_reply = cap.records().iter().any(|r| {
        r.to_node == net.surveillance
            && r.packet.src == net.mserver_ip
            && r.packet
                .as_tcp()
                .map(|t| t.flags.has_syn() && t.flags.has_ack())
                .unwrap_or(false)
    });
    let cover_host = net.sim.node_ref::<Host>(net.cover).expect("cover");
    let server = net
        .sim
        .node_ref::<Host>(net.mserver)
        .expect("mserver")
        .task_ref::<MimicServer>(0)
        .expect("server task");
    let censor = net.sim.node_ref::<TapCensor>(net.censor).expect("censor");
    crate::telemetry::finish_routed(&net, &scope, tel);
    TtlOutcome {
        tap_saw_reply,
        neighbor_got_reply: cover_host.counters().tcp_in > 0,
        neighbor_rst: cover_host.counters().rst_sent > 0,
        server_got_data: !server.received.is_empty(),
        censor_detected: censor.stats().rst_injections > 0,
        flow_reset: server.was_reset(),
    }
}

/// Run E7 with a disabled telemetry handle.
pub fn run() -> String {
    run_with(&underradar_telemetry::Telemetry::disabled())
}

/// Run E7 and render its report, recording telemetry into `tel`.
pub fn run_with(tel: &underradar_telemetry::Telemetry) -> String {
    let mut out = heading(
        "E7",
        "Figure 3b (§4.1 stateful mimicry, TTL-limited replies)",
        "replies die after the surveillance tap but before the spoofed client",
    );
    out.push_str(&format!(
        "topology: server -R3- R2[taps] -R1- switch - neighbor Y  \
         (tap at {} hops, Y at {} hops)\n\n",
        RoutedMimicryNet::HOPS_TO_TAP,
        RoutedMimicryNet::HOPS_TO_COVER
    ));

    out.push_str("reply-TTL sweep (no censorship):\n");
    let mut sweep = Table::new(&[
        "reply TTL",
        "tap sees reply",
        "Y receives reply",
        "Y sends RST (replay!)",
        "flow survives",
    ]);
    let mut sweet_spot_ok = false;
    for ttl in 1u8..=5 {
        let o = run_ttl(tel, Some(ttl), false);
        if ttl == RoutedMimicryNet::HOPS_TO_COVER {
            sweet_spot_ok = o.tap_saw_reply && !o.neighbor_got_reply && !o.flow_reset;
        }
        sweep.row(&[
            ttl.to_string(),
            mark(o.tap_saw_reply).to_string(),
            mark(o.neighbor_got_reply).to_string(),
            mark(o.neighbor_rst).to_string(),
            mark(o.server_got_data && !o.flow_reset).to_string(),
        ]);
    }
    let unlimited = run_ttl(tel, None, false);
    sweep.row(&[
        "64 (unlimited)".to_string(),
        mark(unlimited.tap_saw_reply).to_string(),
        mark(unlimited.neighbor_got_reply).to_string(),
        mark(unlimited.neighbor_rst).to_string(),
        mark(unlimited.server_got_data && !unlimited.flow_reset).to_string(),
    ]);
    out.push_str(&sweep.render());

    out.push_str("\nkeyword measurement at the sweet-spot TTL vs unlimited TTL:\n");
    let mut acc = Table::new(&[
        "reply TTL",
        "censor injected RST",
        "server-side verdict correct",
    ]);
    // The sweet-spot run is one campaign cell: the engine's stateful
    // driver always replies at the calibrated TTL, so a keyword policy
    // plus a keyword-bearing probe path reproduces this row.
    let spec = underradar_campaign::CampaignSpec::new("e07-stateful", 17)
        .target("twitter.com")
        .method(underradar_campaign::MethodKind::Stateful)
        .policy(
            underradar_campaign::NamedPolicy::new(
                "keyword-rst",
                CensorPolicy::new().block_keyword("falun"),
            )
            .with_probe_path("/falun"),
        )
        .run_secs(10);
    let campaign = underradar_campaign::engine::run(&spec, 1, tel);
    let sweet = &campaign.trials[0];
    let sweet_reset = crate::experiments::campaign::evidence(sweet, "was_reset") == "true";
    acc.row(&[
        RoutedMimicryNet::HOPS_TO_COVER.to_string(),
        mark(sweet_reset).to_string(),
        mark(sweet.verdict_correct).to_string(),
    ]);
    let replay = run_ttl(tel, None, true);
    acc.row(&[
        "64 (unlimited)".to_string(),
        mark(replay.censor_detected).to_string(),
        // With replay, Y's RST also resets the flow, so the server cannot
        // distinguish censorship from the replay artifact.
        format!("{} (confounded by Y's RST)", mark(false)),
    ]);
    out.push_str(&acc.render());

    let pass = sweet_spot_ok && sweet_reset && sweet.verdict_correct && unlimited.neighbor_rst;
    out.push_str(&format!(
        "\nresult: TTL window exists and enables censorship measurement without replay: {}\n\n",
        if pass { "PASSED" } else { "FAILED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn e7_passes() {
        let report = super::run();
        assert!(report.contains("PASSED"), "{report}");
    }
}
