//! E5 — §3.1 Method #3: DDoS mimicry.
//!
//! "Repeated requests are also advantageous because we can treat each
//! request as a measurement sample and better determine how content is
//! being censored. DDoS attacks also significantly differ from typical
//! user traffic, causing the MVR to discard the traffic more
//! aggressively."
//!
//! Sweep the burst size: small bursts look like browsing (retained,
//! alertable); large bursts cross the rate classifier and get discarded.
//! Accuracy is checked per censorship scenario at the large burst size.

use underradar_censor::CensorPolicy;
use underradar_core::methods::ddos::DdosProbe;
use underradar_core::probe::Probe;
use underradar_core::testbed::{Testbed, TestbedConfig};
use underradar_netsim::time::SimTime;

use crate::table::{heading, mark, Table};

fn run_burst(
    tel: &underradar_telemetry::Telemetry,
    policy: CensorPolicy,
    path: &str,
    samples: usize,
) -> (Testbed, usize) {
    let mut tb = Testbed::build(TestbedConfig {
        policy,
        seed: 11,
        ..TestbedConfig::default()
    });
    let scope = crate::telemetry::instrument_testbed(&mut tb, tel);
    let target = tb.target("youtube.com").expect("target").web_ip;
    let probe = DdosProbe::new(target, "youtube.com", path, samples);
    let idx = tb.spawn_on_client(SimTime::ZERO, Box::new(probe));
    tb.run_secs(180);
    crate::telemetry::finish_testbed(&tb, &scope, tel);
    (tb, idx)
}

/// Run E5 with a disabled telemetry handle.
pub fn run() -> String {
    run_with(&underradar_telemetry::Telemetry::disabled())
}

/// Run E5 and render its report, recording telemetry into `tel`.
pub fn run_with(tel: &underradar_telemetry::Telemetry) -> String {
    let mut out = heading(
        "E5",
        "§3.1 Method #3 (DDoS mimicry)",
        "per-request samples measure censorship; large bursts are MVR-discarded",
    );

    out.push_str("burst-size sweep (uncensored target):\n");
    let mut sweep = Table::new(&[
        "samples",
        "classified DDoS",
        "MVR discarded pkts",
        "verdict",
    ]);
    for samples in [5usize, 20, 60] {
        let (tb, idx) = run_burst(tel, CensorPolicy::new(), "/watch", samples);
        let probe = tb.client_task::<DdosProbe>(idx).expect("probe");
        let ddos_pkts = tb
            .surveillance()
            .mvr()
            .volumes()
            .iter()
            .find(|(c, _)| *c == underradar_surveil::TrafficClass::DdosSource)
            .map(|(_, v)| v.packets)
            .unwrap_or(0);
        sweep.row(&[
            samples.to_string(),
            mark(ddos_pkts > 0).to_string(),
            tb.surveillance().stats().discarded.to_string(),
            probe.verdict().to_string(),
        ]);
    }
    out.push_str(&sweep.render());

    out.push_str("\naccuracy matrix (keyword samples ride on an already-classified flood):\n");
    let mut acc = Table::new(&[
        "scenario",
        "ok/reset/refused/timeout",
        "verdict",
        "correct",
        "evades",
    ]);
    let mut all_pass = true;
    // One campaign cell per scenario; the engine's ddos driver runs the
    // warm-up flood ("causing the MVR to discard the traffic more
    // aggressively") before the measured samples.
    use underradar_campaign::{engine, CampaignSpec, MethodKind, NamedPolicy};
    let spec = CampaignSpec::new("e05-ddos", 11)
        .target("youtube.com")
        .method(MethodKind::Ddos)
        .policy(NamedPolicy::new("uncensored", CensorPolicy::new()).with_probe_path("/watch"))
        .policy(
            NamedPolicy::new(
                "keyword censored",
                CensorPolicy::new().block_keyword("falun"),
            )
            .with_probe_path("/falun-video"),
        )
        .run_secs(180);
    let campaign = engine::run(&spec, 1, tel);
    for trial in &campaign.trials {
        all_pass &= trial.verdict_correct && trial.evaded;
        let ev = |k| crate::experiments::campaign::evidence(trial, k);
        acc.row(&[
            trial.policy.clone(),
            format!(
                "{}/{}/{}/{}",
                ev("ok"),
                ev("reset"),
                ev("refused"),
                ev("timed_out")
            ),
            trial.verdict.to_string(),
            mark(trial.verdict_correct).to_string(),
            mark(trial.evaded).to_string(),
        ]);
    }
    out.push_str(&acc.render());
    out.push_str(&format!(
        "\nresult: DDoS mimicry accuracy + evasion: {}\n\n",
        if all_pass { "PASSED" } else { "FAILED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn e5_passes() {
        let report = super::run();
        assert!(report.contains("PASSED"), "{report}");
    }
}
