//! E11 — §6: the ethics load comparison.
//!
//! "Schomp et al. found 32 million open forwarders and 60–70k recursive
//! DNS servers used by open DNS forwarders. In contrast, if we conducted a
//! single DNS measurement from every IP in an ASN's /16, we would send
//! roughly 65k queries. Finally, we increase load on network operators by
//! creating more spurious alerts ... but our campus network shows that the
//! increased number of alerts will be dwarfed by those from normal
//! operational traffic."
//!
//! Two comparisons: (a) query volume of a full-/16 cover measurement vs
//! the accepted open-resolver measurement practice; (b) extra IDS alerts
//! caused by one cover campaign vs the baseline alert volume from
//! population traffic.

use underradar_netsim::addr::Cidr;
use underradar_netsim::packet::Packet;
use underradar_netsim::rng::SimRng;
use underradar_netsim::time::SimTime;
use underradar_protocols::dns::{DnsMessage, DnsName, QType};
use underradar_surveil::system::{
    default_surveillance_rules, SurveillanceConfig, SurveillanceSystem,
};
use underradar_workloads::population::{PopulationConfig, PopulationTraffic};

use crate::table::{heading, Table};

/// Run E11 with a disabled telemetry handle.
pub fn run() -> String {
    run_with(&underradar_telemetry::Telemetry::disabled())
}

/// Run E11 and render its report, recording telemetry into `tel`.
pub fn run_with(tel: &underradar_telemetry::Telemetry) -> String {
    let mut out = heading(
        "E11",
        "§6 (ethics: load and alert impact)",
        "a /16 cover sweep ≈ 65k queries, small next to accepted practice;\n\
         extra alerts dwarfed by operational noise",
    );

    let slash16 = Cidr::slash16(std::net::Ipv4Addr::new(10, 20, 0, 0));
    let mut volume = Table::new(&["measurement practice", "endpoints involved"]);
    volume.row(&[
        "open DNS forwarders (Schomp et al., accepted)".to_string(),
        "32,000,000".to_string(),
    ]);
    volume.row(&[
        "open recursive resolvers behind them".to_string(),
        "60,000-70,000".to_string(),
    ]);
    volume.row(&[
        "one spoofed query per IP of a /16 (this paper)".to_string(),
        format!("{}", slash16.size()),
    ]);
    out.push_str(&volume.render());
    let ratio = 32_000_000f64 / slash16.size() as f64;
    out.push_str(&format!(
        "\nthe accepted practice touches {ratio:.0}x more endpoints than a full /16 sweep\n"
    ));

    // Alert-volume comparison on the surveillance system.
    let home = Cidr::new(std::net::Ipv4Addr::new(10, 0, 0, 0), 8);
    let watched = vec![DnsName::parse("twitter.com").expect("n")];
    let keywords = vec!["falun".to_string()];

    // Baseline: population traffic only.
    let rules = default_surveillance_rules(home, &watched, &keywords, None);
    let mut baseline = SurveillanceSystem::new(SurveillanceConfig::with_rules(rules));
    let mut rng = SimRng::seed_from_u64(611);
    let population = PopulationTraffic::generate(
        &PopulationConfig {
            client_prefix: Cidr::slash16(std::net::Ipv4Addr::new(10, 0, 0, 0)),
            ..PopulationConfig::default()
        },
        &mut rng,
    );
    for tp in &population {
        baseline.process(tp.time, &tp.packet);
    }
    let base_alerts = baseline.stats().alerts;

    // Same population plus a 256-source cover campaign (one /24).
    let rules = default_surveillance_rules(home, &watched, &keywords, None);
    let mut with_cover = SurveillanceSystem::new(SurveillanceConfig::with_rules(rules));
    for tp in &population {
        with_cover.process(tp.time, &tp.packet);
    }
    let resolver = std::net::Ipv4Addr::new(10, 0, 0, 53);
    let cover_net = Cidr::slash24(std::net::Ipv4Addr::new(10, 0, 1, 0));
    let mut cover_queries = 0u64;
    for i in 0..cover_net.size() {
        let src = cover_net.nth(i);
        let q = DnsMessage::query(
            i as u16,
            DnsName::parse("twitter.com").expect("n"),
            QType::A,
        );
        let pkt = Packet::udp(src, resolver, 5353, 53, q.encode());
        with_cover.process(SimTime::from_nanos(30_000_000_000 + i * 1000), &pkt);
        cover_queries += 1;
    }
    let cover_alerts = with_cover.stats().alerts - base_alerts;
    // Export the full scenario (population + cover campaign); the
    // baseline-only system is a control, not the modelled deployment.
    PopulationTraffic::export_telemetry(&population, tel);
    with_cover.export_telemetry(tel);
    tel.set_counter("workloads.cover.queries", cover_queries);
    tel.set_counter("surveil.cover_campaign.alerts", cover_alerts as u64);

    let mut alerts = Table::new(&["source of alerts", "alerts", "of total"]);
    let total = with_cover.stats().alerts.max(1);
    alerts.row(&[
        "normal operational traffic (60s window)".to_string(),
        base_alerts.to_string(),
        format!("{:.0}%", 100.0 * base_alerts as f64 / total as f64),
    ]);
    alerts.row(&[
        format!("one /24 cover campaign ({cover_queries} spoofed queries)"),
        cover_alerts.to_string(),
        format!("{:.0}%", 100.0 * cover_alerts as f64 / total as f64),
    ]);
    out.push('\n');
    out.push_str(&alerts.render());
    out.push_str(
        "\nnote: every cover query hits the censored-lookup rule by design — the point\n\
         is that the absolute count stays modest next to day-scale operational volume,\n\
         and the alerts spread across 256 sources rather than implicating one user.\n",
    );

    let pass = ratio > 400.0 && cover_queries == 256;
    out.push_str(&format!(
        "\nresult: load comparison matches §6's argument: {}\n\n",
        if pass { "PASSED" } else { "FAILED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn e11_passes() {
        let report = super::run();
        assert!(report.contains("PASSED"), "{report}");
    }
}
