//! E6 — **Figure 3a**: stateless mimicry with spoofed cover traffic.
//!
//! "The measurement client can send traffic directly to any DNS server
//! with the spoofed IP of another device in the AS ... All users in an AS
//! generate traffic with the same properties, so an IDS that triggers on a
//! particular measurement behavior may generate false positives for large
//! numbers of users."
//!
//! Sweep the number of cover sources and measure the anonymity set the
//! surveillance system faces at per-IP and per-/24 attribution
//! granularity; accuracy is checked against the DNS-injecting censor.

use underradar_censor::CensorPolicy;
use underradar_core::methods::stateless::StatelessDnsMimicry;
use underradar_core::testbed::{Testbed, TestbedConfig};
use underradar_netsim::time::SimTime;
use underradar_protocols::dns::{DnsName, QType};
use underradar_spoof::anonymity_set;

use crate::table::{heading, mark, Table};

/// Run E6 with a disabled telemetry handle.
pub fn run() -> String {
    run_with(&underradar_telemetry::Telemetry::disabled())
}

/// Run E6 and render its report. Each sweep trial records into its own
/// registry (so the inner `run_sharded` stays scheduling-independent);
/// the registries fold into `tel` in sweep order afterwards.
pub fn run_with(tel: &underradar_telemetry::Telemetry) -> String {
    let mut out = heading(
        "E6",
        "Figure 3a (§4.1 stateless mimicry)",
        "spoofed cover queries make probes appear to come from many hosts",
    );
    let mut table = Table::new(&[
        "cover sources",
        "verdict",
        "correct",
        "anon set (per-IP)",
        "anon set (per-/24)",
        "attribution odds",
    ]);
    let mut all_pass = true;
    // Each sweep point builds an independent testbed (fixed seed 5), so the
    // scan shards across threads; rows land in sweep order either way.
    let sweep = [0usize, 1, 4, 16, 64];
    // `Telemetry` handles are single-threaded (Rc), so each trial records
    // into a fresh local handle and ships the plain-data registry back;
    // the fold below is in sweep order regardless of scheduling.
    let telemetry_on = tel.is_enabled();
    let rows = crate::runner::run_sharded(&sweep, 6, |&cover_count, _| {
        let policy = CensorPolicy::new().block_domain(&DnsName::parse("twitter.com").expect("n"));
        let mut tb = Testbed::build(TestbedConfig {
            policy,
            cover_hosts: cover_count.min(8), // hosts that physically exist
            seed: 5,
            ..TestbedConfig::default()
        });
        let scope = if telemetry_on {
            underradar_telemetry::Telemetry::enabled()
        } else {
            underradar_telemetry::Telemetry::disabled()
        };
        if scope.is_enabled() {
            tb.set_telemetry(scope.clone());
        }
        // Cover *addresses* may outnumber cover hosts (spoofed sources do
        // not need real machines behind them for stateless protocols).
        let cover: Vec<std::net::Ipv4Addr> = (0..cover_count)
            .map(|i| std::net::Ipv4Addr::new(10, 0, 1, 30 + i as u8))
            .collect();
        let d = DnsName::parse("twitter.com").expect("n");
        let probe = StatelessDnsMimicry::new(&d, QType::A, tb.resolver_ip, cover);
        let idx = tb.spawn_on_client(SimTime::ZERO, Box::new(probe));
        tb.run_secs(10);
        let probe = tb.client_task::<StatelessDnsMimicry>(idx).expect("probe");
        let verdict = probe.verdict();
        let correct = verdict.is_censored();

        let home = Testbed::home_net();
        let sources: Vec<std::net::Ipv4Addr> = tb
            .surveillance()
            .engine()
            .log()
            .all()
            .iter()
            .map(|a| a.src)
            .filter(|s| home.contains(*s))
            .collect();
        let per_ip = anonymity_set(&sources, 32);
        let per_24 = anonymity_set(&sources, 24);
        tb.export_telemetry(&scope);
        let pass = correct && per_ip == cover_count + 1;
        (
            pass,
            scope.snapshot(),
            [
                cover_count.to_string(),
                verdict.to_string(),
                mark(correct).to_string(),
                per_ip.to_string(),
                per_24.to_string(),
                format!("1/{per_ip}"),
            ],
        )
    });
    for (pass, registry, row) in &rows {
        all_pass &= pass;
        if telemetry_on {
            tel.merge_registry(registry);
        }
        table.row(row);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nnote: with zero cover the client is the lone suspect (odds 1/1, the overt\n\
         situation); each spoofed source multiplies the suspect pool exactly as Fig 3a\n\
         intends. Per-/24 attribution collapses the set — the granularity ablation.\n",
    );
    out.push_str(&format!(
        "\nresult: anonymity set grows as cover+1 with accuracy intact: {}\n\n",
        if all_pass { "PASSED" } else { "FAILED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn e6_passes() {
        let report = super::run();
        assert!(report.contains("PASSED"), "{report}");
    }
}
