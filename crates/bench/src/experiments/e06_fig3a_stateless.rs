//! E6 — **Figure 3a**: stateless mimicry with spoofed cover traffic.
//!
//! "The measurement client can send traffic directly to any DNS server
//! with the spoofed IP of another device in the AS ... All users in an AS
//! generate traffic with the same properties, so an IDS that triggers on a
//! particular measurement behavior may generate false positives for large
//! numbers of users."
//!
//! Sweep the number of cover sources and measure the anonymity set the
//! surveillance system faces; each sweep point is a one-trial campaign
//! with `spoofed_cover` set (spoofed *addresses* may outnumber the real
//! cover hosts — stateless protocols need no machine behind a source).

use underradar_campaign::{engine, CampaignSpec, MethodKind, NamedPolicy};
use underradar_censor::CensorPolicy;
use underradar_protocols::dns::DnsName;

use crate::table::{heading, mark, Table};

/// Run E6 with a disabled telemetry handle.
pub fn run() -> String {
    run_with(&underradar_telemetry::Telemetry::disabled())
}

/// Run E6 and render its report. Each sweep point runs through the
/// campaign engine, which folds per-trial registries into `tel` in trial
/// order (scheduling-independent).
pub fn run_with(tel: &underradar_telemetry::Telemetry) -> String {
    let mut out = heading(
        "E6",
        "Figure 3a (§4.1 stateless mimicry)",
        "spoofed cover queries make probes appear to come from many hosts",
    );
    let mut table = Table::new(&[
        "cover sources",
        "verdict",
        "correct",
        "anon set (per-IP)",
        "attribution odds",
    ]);
    let mut all_pass = true;
    for cover_count in [0usize, 1, 4, 16, 64] {
        let policy = CensorPolicy::new().block_domain(&DnsName::parse("twitter.com").expect("n"));
        let spec = CampaignSpec::new("e06-stateless", 5)
            .target("twitter.com")
            .method(MethodKind::StatelessDns)
            .policy(NamedPolicy::new("dns-block", policy))
            .cover_hosts(cover_count.min(8)) // hosts that physically exist
            .spoofed_cover(cover_count)
            .run_secs(10);
        let report = engine::run(&spec, 1, tel);
        let trial = &report.trials[0];
        let per_ip = trial.anonymity_set.unwrap_or(0);
        let pass = trial.verdict_correct && per_ip == cover_count + 1;
        all_pass &= pass;
        table.row(&[
            cover_count.to_string(),
            trial.verdict.to_string(),
            mark(trial.verdict_correct).to_string(),
            per_ip.to_string(),
            format!("1/{per_ip}"),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nnote: with zero cover the client is the lone suspect (odds 1/1, the overt\n\
         situation); each spoofed source multiplies the suspect pool exactly as Fig 3a\n\
         intends.\n",
    );
    out.push_str(&format!(
        "\nresult: anonymity set grows as cover+1 with accuracy intact: {}\n\n",
        if all_pass { "PASSED" } else { "FAILED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn e6_passes() {
        let report = super::run();
        assert!(report.contains("PASSED"), "{report}");
    }
}
