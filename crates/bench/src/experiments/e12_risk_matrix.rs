//! E12 — the headline comparison (§1/§7): overt vs stealthy measurement
//! risk under identical surveillance.
//!
//! For each method, run its natural censorship scenario and report both
//! axes: accuracy (verdict vs ground truth) and risk (alerts, attribution,
//! pursuit, anonymity set). The expected shape: the overt baseline detects
//! censorship *and* gets attributed; every §3/§4 technique detects the
//! same censorship while evading.
//!
//! Each row is one campaign cell — a thin `CampaignSpec` (method ×
//! policy) driven by the campaign engine, which owns the warm-up phases,
//! spoofed cover, and risk scoring that used to be hand-wired here.
//!
//! A final ablation shows the paper's admitted limitation (§3.2.1): a
//! surveillance operator willing to write bespoke fingerprinting rules and
//! spend pre-MVR analysis can re-identify the scanning measurement.

use underradar_campaign::{engine, CampaignSpec, MethodKind, NamedPolicy, TrialResult};
use underradar_censor::CensorPolicy;
use underradar_core::methods::scan::SynScanProbe;
use underradar_core::ports::top_ports;
use underradar_core::probe::Probe;
use underradar_core::risk::RiskReport;
use underradar_core::testbed::{TargetSite, Testbed, TestbedConfig};
use underradar_netsim::addr::Cidr;
use underradar_netsim::time::SimTime;
use underradar_protocols::dns::DnsName;

use crate::table::{heading, mark, Table};

struct Row {
    method: &'static str,
    scenario: &'static str,
    trial: TrialResult,
}

fn blocked(domain: &str) -> CensorPolicy {
    CensorPolicy::new().block_domain(&DnsName::parse(domain).expect("n"))
}

/// Run a one-cell campaign and return the trial at `pick`.
fn cell(tel: &underradar_telemetry::Telemetry, spec: CampaignSpec, pick: usize) -> TrialResult {
    let report = engine::run(&spec, 1, tel);
    report.trials[pick].clone()
}

fn overt_row(tel: &underradar_telemetry::Telemetry) -> Row {
    let spec = CampaignSpec::new("e12-overt", 1)
        .target("twitter.com")
        .method(MethodKind::Overt)
        .policy(NamedPolicy::new("dns-block", blocked("twitter.com")))
        .run_secs(20);
    Row {
        method: "overt (OONI-style baseline)",
        scenario: "dns-block",
        trial: cell(tel, spec, 0),
    }
}

fn scan_row(tel: &underradar_telemetry::Telemetry) -> Row {
    let target = TargetSite::numbered("twitter.com", 0).web_ip;
    let spec = CampaignSpec::new("e12-scan", 1)
        .target("twitter.com")
        .method(MethodKind::Scan)
        .policy(NamedPolicy::new(
            "ip-blackhole",
            CensorPolicy::new().block_ip(Cidr::host(target)),
        ))
        .run_secs(30);
    Row {
        method: "scan (Method #1)",
        scenario: "ip-blackhole",
        trial: cell(tel, spec, 0),
    }
}

fn spam_row(tel: &underradar_telemetry::Telemetry) -> Row {
    // Extra targets exist so the engine's warm-up phase can earn the
    // spammer label against them; the measured cell is twitter (index 0).
    let spec = CampaignSpec::new("e12-spam", 1)
        .targets(["twitter.com", "bbc.com", "example.org", "youtube.com"])
        .method(MethodKind::Spam)
        .policy(NamedPolicy::new("dns-block", blocked("twitter.com")))
        .run_secs(40);
    Row {
        method: "spam campaign (Method #2)",
        scenario: "dns-block",
        trial: cell(tel, spec, 0),
    }
}

fn ddos_row(tel: &underradar_telemetry::Telemetry) -> Row {
    let spec = CampaignSpec::new("e12-ddos", 1)
        .target("youtube.com")
        .method(MethodKind::Ddos)
        .policy(
            NamedPolicy::new("keyword-rst", CensorPolicy::new().block_keyword("falun"))
                .with_probe_path("/falun-clip"),
        )
        .run_secs(180);
    Row {
        method: "ddos burst (Method #3)",
        scenario: "keyword-rst",
        trial: cell(tel, spec, 0),
    }
}

fn stateless_row(tel: &underradar_telemetry::Telemetry) -> Row {
    let spec = CampaignSpec::new("e12-stateless", 1)
        .target("twitter.com")
        .method(MethodKind::StatelessDns)
        .policy(NamedPolicy::new("dns-block", blocked("twitter.com")))
        .cover_hosts(8)
        .spoofed_cover(16)
        .run_secs(10);
    Row {
        method: "stateless mimicry (Fig 3a)",
        scenario: "dns-block",
        trial: cell(tel, spec, 0),
    }
}

fn stateful_row(tel: &underradar_telemetry::Telemetry) -> Row {
    let spec = CampaignSpec::new("e12-stateful", 12)
        .target("twitter.com")
        .method(MethodKind::Stateful)
        .policy(
            NamedPolicy::new("keyword-rst", CensorPolicy::new().block_keyword("falun"))
                .with_probe_path("/falun"),
        )
        .run_secs(10);
    Row {
        method: "stateful mimicry (Fig 3b)",
        scenario: "keyword-rst",
        trial: cell(tel, spec, 0),
    }
}

/// Run E12 with a disabled telemetry handle.
pub fn run() -> String {
    run_with(&underradar_telemetry::Telemetry::disabled())
}

/// Run E12 and render its report, recording per-method telemetry into
/// `tel`.
pub fn run_with(tel: &underradar_telemetry::Telemetry) -> String {
    let mut out = heading(
        "E12",
        "headline result (§1/§7)",
        "stealthy techniques match the overt baseline's accuracy without its risk",
    );
    let rows = vec![
        overt_row(tel),
        scan_row(tel),
        spam_row(tel),
        ddos_row(tel),
        stateless_row(tel),
        stateful_row(tel),
    ];
    let mut table = Table::new(&[
        "method",
        "scenario",
        "correct",
        "evades",
        "attributed",
        "pursued",
        "anon set",
    ]);
    let mut pass = true;
    for row in &rows {
        let t = &row.trial;
        table.row(&[
            row.method.to_string(),
            row.scenario.to_string(),
            mark(t.verdict_correct).to_string(),
            mark(t.evaded).to_string(),
            mark(t.attributed).to_string(),
            mark(t.pursued).to_string(),
            t.anonymity_set.map_or("-".to_string(), |n| n.to_string()),
        ]);
        pass &= t.verdict_correct;
        if row.method.starts_with("overt") {
            pass &= !t.evaded && t.attributed;
        } else if row.method.starts_with("stateless") {
            // Cover traffic trades zero-alerts for a large anonymity set.
            pass &= t.anonymity_set.map(|n| n >= 17).unwrap_or(false) && !t.attributed;
        } else {
            pass &= t.evaded && !t.attributed;
        }
    }
    out.push_str(&table.render());

    // Ablation: bespoke fingerprinting + pre-MVR analysis re-identifies
    // the scan (the paper's §3.2.1 caveat). Stays hand-wired: it needs
    // the alert-before-MVR surveillance mode the spec doesn't expose.
    let target = TargetSite::numbered("twitter.com", 0).web_ip;
    let mut tb = Testbed::build(TestbedConfig {
        policy: CensorPolicy::new().block_ip(Cidr::host(target)),
        surveillance_alert_first: true,
        ..TestbedConfig::default()
    });
    let scope = crate::telemetry::instrument_testbed(&mut tb, tel);
    let idx = tb.spawn_on_client(
        SimTime::ZERO,
        Box::new(SynScanProbe::new(target, top_ports(120), vec![80])),
    );
    tb.run_secs(60);
    let verdict = tb.client_task::<SynScanProbe>(idx).expect("p").verdict();
    let ablation = RiskReport::evaluate(&tb, &verdict);
    crate::telemetry::finish_testbed(&tb, &scope, tel);
    out.push_str(&format!(
        "\nablation (§3.2.1 caveat): alert-before-MVR surveillance with a generic SYN-fanout\n\
         rule re-identifies the 120-port scan: evades={} alerts={}\n",
        mark(ablation.evades()),
        ablation.alerts_on_client
    ));
    pass &= !ablation.evades();

    out.push_str(&format!(
        "\nresult: headline comparison reproduced (stealthy wins on risk, ties on accuracy): {}\n\n",
        if pass { "PASSED" } else { "FAILED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn e12_passes() {
        let report = super::run();
        assert!(report.contains("PASSED"), "{report}");
    }
}
