//! E12 — the headline comparison (§1/§7): overt vs stealthy measurement
//! risk under identical surveillance.
//!
//! For each method, run its natural censorship scenario and report both
//! axes: accuracy (verdict vs ground truth) and risk (alerts, attribution,
//! pursuit, anonymity set). The expected shape: the overt baseline detects
//! censorship *and* gets attributed; every §3/§4 technique detects the
//! same censorship while evading.
//!
//! A final ablation shows the paper's admitted limitation (§3.2.1): a
//! surveillance operator willing to write bespoke fingerprinting rules and
//! spend pre-MVR analysis can re-identify the scanning measurement.

use underradar_censor::CensorPolicy;
use underradar_core::methods::ddos::DdosProbe;
use underradar_core::methods::overt::OvertProbe;
use underradar_core::methods::scan::SynScanProbe;
use underradar_core::methods::spam::SpamProbe;
use underradar_core::methods::stateful::{MimicServer, RoutedMimicryNet, StatefulMimicry};
use underradar_core::methods::stateless::StatelessDnsMimicry;
use underradar_core::ports::top_ports;
use underradar_core::risk::RiskReport;
use underradar_core::testbed::{TargetSite, Testbed, TestbedConfig};
use underradar_netsim::addr::Cidr;
use underradar_netsim::host::Host;
use underradar_netsim::time::{SimDuration, SimTime};
use underradar_protocols::dns::{DnsName, QType};

use crate::table::{heading, mark, Table};

struct Row {
    method: &'static str,
    scenario: &'static str,
    report: RiskReport,
}

fn blocked(domain: &str) -> CensorPolicy {
    CensorPolicy::new().block_domain(&DnsName::parse(domain).expect("n"))
}

fn overt_row(tel: &underradar_telemetry::Telemetry) -> Row {
    let mut tb = Testbed::build(TestbedConfig {
        policy: blocked("twitter.com"),
        ..TestbedConfig::default()
    });
    let scope = crate::telemetry::instrument_testbed(&mut tb, tel);
    let d = DnsName::parse("twitter.com").expect("n");
    let idx = tb.spawn_on_client(
        SimTime::ZERO,
        Box::new(OvertProbe::new(&d, tb.resolver_ip, tb.collector_ip, "/")),
    );
    tb.run_secs(20);
    let verdict = tb.client_task::<OvertProbe>(idx).expect("p").verdict();
    crate::telemetry::finish_testbed(&tb, &scope, tel);
    Row {
        method: "overt (OONI-style baseline)",
        scenario: "dns-block",
        report: RiskReport::evaluate(&tb, &verdict),
    }
}

fn scan_row(tel: &underradar_telemetry::Telemetry) -> Row {
    let target = TargetSite::numbered("twitter.com", 0).web_ip;
    let policy = CensorPolicy::new().block_ip(Cidr::host(target));
    let mut tb = Testbed::build(TestbedConfig {
        policy,
        ..TestbedConfig::default()
    });
    let scope = crate::telemetry::instrument_testbed(&mut tb, tel);
    let idx = tb.spawn_on_client(
        SimTime::ZERO,
        Box::new(SynScanProbe::new(target, top_ports(60), vec![80])),
    );
    tb.run_secs(30);
    let verdict = tb.client_task::<SynScanProbe>(idx).expect("p").verdict();
    crate::telemetry::finish_testbed(&tb, &scope, tel);
    Row {
        method: "scan (Method #1)",
        scenario: "ip-blackhole",
        report: RiskReport::evaluate(&tb, &verdict),
    }
}

fn spam_row(tel: &underradar_telemetry::Telemetry) -> Row {
    let mut tb = Testbed::build(TestbedConfig {
        policy: blocked("twitter.com"),
        ..TestbedConfig::default()
    });
    let scope = crate::telemetry::instrument_testbed(&mut tb, tel);
    let resolver = tb.resolver_ip;
    // Campaign warm-up earns the spammer label before the measured lookup.
    for (i, warmup) in ["bbc.com", "example.org", "youtube.com"].iter().enumerate() {
        let d = DnsName::parse(warmup).expect("n");
        tb.spawn_on_client(
            SimTime::ZERO + SimDuration::from_secs(i as u64),
            Box::new(SpamProbe::new(&d, resolver, i as u64)),
        );
    }
    let d = DnsName::parse("twitter.com").expect("n");
    let idx = tb.spawn_on_client(
        SimTime::ZERO + SimDuration::from_secs(10),
        Box::new(SpamProbe::new(&d, resolver, 9)),
    );
    tb.run_secs(40);
    let verdict = tb.client_task::<SpamProbe>(idx).expect("p").verdict();
    crate::telemetry::finish_testbed(&tb, &scope, tel);
    Row {
        method: "spam campaign (Method #2)",
        scenario: "dns-block",
        report: RiskReport::evaluate(&tb, &verdict),
    }
}

fn ddos_row(tel: &underradar_telemetry::Telemetry) -> Row {
    let policy = CensorPolicy::new().block_keyword("falun");
    let mut tb = Testbed::build(TestbedConfig {
        policy,
        ..TestbedConfig::default()
    });
    let scope = crate::telemetry::instrument_testbed(&mut tb, tel);
    let target = tb.target("youtube.com").expect("t").web_ip;
    tb.spawn_on_client(
        SimTime::ZERO,
        Box::new(DdosProbe::new(target, "youtube.com", "/", 60)),
    );
    let idx = tb.spawn_on_client(
        SimTime::ZERO + SimDuration::from_secs(5),
        Box::new(DdosProbe::new(target, "youtube.com", "/falun-clip", 20)),
    );
    tb.run_secs(180);
    let verdict = tb.client_task::<DdosProbe>(idx).expect("p").verdict();
    crate::telemetry::finish_testbed(&tb, &scope, tel);
    Row {
        method: "ddos burst (Method #3)",
        scenario: "keyword-rst",
        report: RiskReport::evaluate(&tb, &verdict),
    }
}

fn stateless_row(tel: &underradar_telemetry::Telemetry) -> Row {
    let mut tb = Testbed::build(TestbedConfig {
        policy: blocked("twitter.com"),
        cover_hosts: 8,
        ..TestbedConfig::default()
    });
    let scope = crate::telemetry::instrument_testbed(&mut tb, tel);
    let cover: Vec<std::net::Ipv4Addr> = (0..16)
        .map(|i| std::net::Ipv4Addr::new(10, 0, 1, 30 + i as u8))
        .collect();
    let d = DnsName::parse("twitter.com").expect("n");
    let idx = tb.spawn_on_client(
        SimTime::ZERO,
        Box::new(StatelessDnsMimicry::new(
            &d,
            QType::A,
            tb.resolver_ip,
            cover,
        )),
    );
    tb.run_secs(10);
    let verdict = tb
        .client_task::<StatelessDnsMimicry>(idx)
        .expect("p")
        .verdict();
    crate::telemetry::finish_testbed(&tb, &scope, tel);
    Row {
        method: "stateless mimicry (Fig 3a)",
        scenario: "dns-block",
        report: RiskReport::evaluate(&tb, &verdict),
    }
}

fn stateful_row(tel: &underradar_telemetry::Telemetry) -> Row {
    const PORT: u16 = 7443;
    const ISS: u32 = 0x1212_3434;
    let policy = CensorPolicy::new().block_keyword("falun");
    let mut net = RoutedMimicryNet::build(12, policy);
    let scope = crate::telemetry::instrument_routed(&mut net, tel);
    net.sim
        .node_mut::<Host>(net.mserver)
        .expect("mserver")
        .spawn_task_at(
            SimTime::ZERO,
            Box::new(MimicServer::new(
                PORT,
                ISS,
                Some(RoutedMimicryNet::HOPS_TO_COVER),
            )),
        );
    net.sim
        .node_mut::<Host>(net.client)
        .expect("client")
        .spawn_task_at(
            SimTime::ZERO,
            Box::new(StatefulMimicry::new(
                net.cover_ip,
                net.mserver_ip,
                PORT,
                ISS,
                b"GET /falun HTTP/1.0\r\n\r\n",
            )),
        );
    net.sim.run_for(SimDuration::from_secs(10)).expect("run");
    let server = net
        .sim
        .node_ref::<Host>(net.mserver)
        .expect("ms")
        .task_ref::<MimicServer>(0)
        .expect("server");
    let verdict = server.verdict();
    // Build the risk report by hand (different topology than Testbed).
    use underradar_censor::TapCensor;
    use underradar_surveil::system::SurveillanceNode;
    let censor = net.sim.node_ref::<TapCensor>(net.censor).expect("censor");
    let surv = net
        .sim
        .node_ref::<SurveillanceNode>(net.surveillance)
        .expect("surv")
        .system();
    let censor_triggered = censor.stats().rst_injections > 0;
    let report = RiskReport {
        censor_triggered,
        verdict_correct: verdict.correct_against(censor_triggered),
        alerts_on_client: surv.alerts_for(net.client_ip),
        attributed: surv.is_attributed(net.client_ip),
        pursued: surv.is_pursued(net.client_ip),
        anonymity_set: {
            let sources: Vec<std::net::Ipv4Addr> =
                surv.engine().log().all().iter().map(|a| a.src).collect();
            if sources.is_empty() {
                None
            } else {
                Some(underradar_spoof::anonymity_set(&sources, 32))
            }
        },
    };
    crate::telemetry::finish_routed(&net, &scope, tel);
    Row {
        method: "stateful mimicry (Fig 3b)",
        scenario: "keyword-rst",
        report,
    }
}

/// Run E12 with a disabled telemetry handle.
pub fn run() -> String {
    run_with(&underradar_telemetry::Telemetry::disabled())
}

/// Run E12 and render its report, recording per-method telemetry into
/// `tel`.
pub fn run_with(tel: &underradar_telemetry::Telemetry) -> String {
    let mut out = heading(
        "E12",
        "headline result (§1/§7)",
        "stealthy techniques match the overt baseline's accuracy without its risk",
    );
    let rows = vec![
        overt_row(tel),
        scan_row(tel),
        spam_row(tel),
        ddos_row(tel),
        stateless_row(tel),
        stateful_row(tel),
    ];
    let mut table = Table::new(&[
        "method",
        "scenario",
        "correct",
        "evades",
        "attributed",
        "pursued",
        "anon set",
    ]);
    let mut pass = true;
    for row in &rows {
        let r = &row.report;
        table.row(&[
            row.method.to_string(),
            row.scenario.to_string(),
            mark(r.verdict_correct).to_string(),
            mark(r.evades()).to_string(),
            mark(r.attributed).to_string(),
            mark(r.pursued).to_string(),
            r.anonymity_set.map_or("-".to_string(), |n| n.to_string()),
        ]);
        pass &= r.verdict_correct;
        if row.method.starts_with("overt") {
            pass &= !r.evades() && r.attributed;
        } else if row.method.starts_with("stateless") {
            // Cover traffic trades zero-alerts for a large anonymity set.
            pass &= r.anonymity_set.map(|n| n >= 17).unwrap_or(false) && !r.attributed;
        } else {
            pass &= r.evades() && !r.attributed;
        }
    }
    out.push_str(&table.render());

    // Ablation: bespoke fingerprinting + pre-MVR analysis re-identifies
    // the scan (the paper's §3.2.1 caveat).
    let target = TargetSite::numbered("twitter.com", 0).web_ip;
    let mut tb = Testbed::build(TestbedConfig {
        policy: CensorPolicy::new().block_ip(Cidr::host(target)),
        surveillance_alert_first: true,
        ..TestbedConfig::default()
    });
    let scope = crate::telemetry::instrument_testbed(&mut tb, tel);
    let idx = tb.spawn_on_client(
        SimTime::ZERO,
        Box::new(SynScanProbe::new(target, top_ports(120), vec![80])),
    );
    tb.run_secs(60);
    let verdict = tb.client_task::<SynScanProbe>(idx).expect("p").verdict();
    let ablation = RiskReport::evaluate(&tb, &verdict);
    crate::telemetry::finish_testbed(&tb, &scope, tel);
    out.push_str(&format!(
        "\nablation (§3.2.1 caveat): alert-before-MVR surveillance with a generic SYN-fanout\n\
         rule re-identifies the 120-port scan: evades={} alerts={}\n",
        mark(ablation.evades()),
        ablation.alerts_on_client
    ));
    pass &= !ablation.evades();

    out.push_str(&format!(
        "\nresult: headline comparison reproduced (stealthy wins on risk, ties on accuracy): {}\n\n",
        if pass { "PASSED" } else { "FAILED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn e12_passes() {
        let report = super::run();
        assert!(report.contains("PASSED"), "{report}");
    }
}
