//! One module per reproduced table/figure. See `DESIGN.md` §4 for the
//! experiment ↔ paper mapping.

pub mod a1_ablations;
pub mod e01_testbed;
pub mod e02_scan;
pub mod e03_fig2_spam_cdf;
pub mod e04_gfc_dns;
pub mod e05_ddos;
pub mod e06_fig3a_stateless;
pub mod e07_fig3b_stateful;
pub mod e08_syria;
pub mod e09_mvr;
pub mod e10_spoofability;
pub mod e11_ethics_load;
pub mod e12_risk_matrix;

/// Run every experiment, concatenating reports (used by the `cargo bench`
/// harness so one command regenerates all tables and figures).
pub fn run_all() -> String {
    let mut out = String::new();
    out.push_str(&e01_testbed::run());
    out.push_str(&e02_scan::run());
    out.push_str(&e03_fig2_spam_cdf::run());
    out.push_str(&e04_gfc_dns::run());
    out.push_str(&e05_ddos::run());
    out.push_str(&e06_fig3a_stateless::run());
    out.push_str(&e07_fig3b_stateful::run());
    out.push_str(&e08_syria::run());
    out.push_str(&e09_mvr::run());
    out.push_str(&e10_spoofability::run());
    out.push_str(&e11_ethics_load::run());
    out.push_str(&e12_risk_matrix::run());
    out.push_str(&a1_ablations::run());
    out
}
