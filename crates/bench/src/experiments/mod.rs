//! One module per reproduced table/figure. See `DESIGN.md` §4 for the
//! experiment ↔ paper mapping.

pub mod a1_ablations;
pub mod e01_testbed;
pub mod e02_scan;
pub mod e03_fig2_spam_cdf;
pub mod e04_gfc_dns;
pub mod e05_ddos;
pub mod e06_fig3a_stateless;
pub mod e07_fig3b_stateful;
pub mod e08_syria;
pub mod e09_mvr;
pub mod e10_spoofability;
pub mod e11_ethics_load;
pub mod e12_risk_matrix;

/// A named experiment entry point.
pub type Experiment = (&'static str, fn() -> String);

/// Every experiment, in report order: `(name, run)`.
pub const ALL: [Experiment; 13] = [
    ("e01_testbed", e01_testbed::run),
    ("e02_scan", e02_scan::run),
    ("e03_fig2_spam_cdf", e03_fig2_spam_cdf::run),
    ("e04_gfc_dns", e04_gfc_dns::run),
    ("e05_ddos", e05_ddos::run),
    ("e06_fig3a_stateless", e06_fig3a_stateless::run),
    ("e07_fig3b_stateful", e07_fig3b_stateful::run),
    ("e08_syria", e08_syria::run),
    ("e09_mvr", e09_mvr::run),
    ("e10_spoofability", e10_spoofability::run),
    ("e11_ethics_load", e11_ethics_load::run),
    ("e12_risk_matrix", e12_risk_matrix::run),
    ("a1_ablations", a1_ablations::run),
];

/// Run every experiment, concatenating reports (used by the `cargo bench`
/// harness so one command regenerates all tables and figures).
///
/// The experiments fan out across worker threads via
/// [`crate::runner::run_sharded`]; the concatenation is in [`ALL`] order,
/// and each experiment seeds its own RNGs, so the report is byte-identical
/// to the old sequential run.
pub fn run_all() -> String {
    crate::runner::run_sharded(&ALL, 0, |&(_, run), _| run()).concat()
}
