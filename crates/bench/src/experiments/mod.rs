//! One module per reproduced table/figure. See `DESIGN.md` §4 for the
//! experiment ↔ paper mapping.

use underradar_telemetry::{Registry, Telemetry};

pub mod a1_ablations;
pub mod campaign;
pub mod e01_testbed;
pub mod e02_scan;
pub mod e03_fig2_spam_cdf;
pub mod e04_gfc_dns;
pub mod e05_ddos;
pub mod e06_fig3a_stateless;
pub mod e07_fig3b_stateful;
pub mod e08_syria;
pub mod e09_mvr;
pub mod e10_spoofability;
pub mod e11_ethics_load;
pub mod e12_risk_matrix;
pub mod e13_evasion;
pub mod e14_scale;

/// A named experiment entry point. The function records metrics into the
/// given [`Telemetry`] handle (a disabled handle costs one branch per
/// site, so `run_with(&Telemetry::disabled())` is the plain run).
pub type Experiment = (&'static str, fn(&Telemetry) -> String);

/// Every experiment, in report order: `(name, run_with)`.
pub const ALL: [Experiment; 15] = [
    ("e01_testbed", e01_testbed::run_with),
    ("e02_scan", e02_scan::run_with),
    ("e03_fig2_spam_cdf", e03_fig2_spam_cdf::run_with),
    ("e04_gfc_dns", e04_gfc_dns::run_with),
    ("e05_ddos", e05_ddos::run_with),
    ("e06_fig3a_stateless", e06_fig3a_stateless::run_with),
    ("e07_fig3b_stateful", e07_fig3b_stateful::run_with),
    ("e08_syria", e08_syria::run_with),
    ("e09_mvr", e09_mvr::run_with),
    ("e10_spoofability", e10_spoofability::run_with),
    ("e11_ethics_load", e11_ethics_load::run_with),
    ("e12_risk_matrix", e12_risk_matrix::run_with),
    ("e13_evasion", e13_evasion::run_with),
    ("e14_scale", e14_scale::run_with),
    ("a1_ablations", a1_ablations::run_with),
];

/// Run every experiment, concatenating reports (used by the `cargo bench`
/// harness so one command regenerates all tables and figures).
///
/// The experiments fan out across worker threads via
/// [`crate::runner::run_sharded`]; the concatenation is in [`ALL`] order,
/// and each experiment seeds its own RNGs, so the report is byte-identical
/// to the old sequential run.
pub fn run_all() -> String {
    crate::runner::run_sharded(&ALL, 0, |&(_, run), _| run(&Telemetry::disabled())).concat()
}

/// One experiment's outcome: name, rendered report, telemetry registry.
pub type ExperimentResult = (&'static str, String, Registry);

/// Run `experiments` with telemetry enabled, sharded across worker
/// threads. Each experiment records into its own registry, so results are
/// independent of scheduling; the output is in item order and
/// byte-identical to [`collect_sequential`].
pub fn collect(experiments: &[Experiment]) -> Vec<ExperimentResult> {
    crate::runner::run_sharded(experiments, 0, |&(name, run), _| {
        let tel = Telemetry::enabled();
        let report = run(&tel);
        (name, report, tel.snapshot())
    })
}

/// Run `experiments` with telemetry enabled, one after another on this
/// thread (the reference ordering [`collect`] must match byte-for-byte).
pub fn collect_sequential(experiments: &[Experiment]) -> Vec<ExperimentResult> {
    experiments
        .iter()
        .map(|&(name, run)| {
            let tel = Telemetry::enabled();
            let report = run(&tel);
            (name, report, tel.snapshot())
        })
        .collect()
}

/// Run every experiment with telemetry enabled (sharded).
pub fn run_all_with_telemetry() -> Vec<ExperimentResult> {
    collect(&ALL)
}

/// [`collect`] with wall-clock profiling: each experiment's prepare
/// (telemetry scope build), run (experiment body), and score (registry
/// snapshot) stages are timed on the shared [`crate::runner::StageClock`],
/// and the returned [`crate::runner::RunProfile`] carries per-worker
/// busy/idle splits. Results are byte-identical to [`collect`].
pub fn collect_profiled(
    experiments: &[Experiment],
) -> (Vec<ExperimentResult>, crate::runner::RunProfile) {
    crate::runner::run_sharded_profiled(experiments, 0, |&(name, run), _, clock| {
        let tel = clock.time("prepare", Telemetry::enabled);
        let report = clock.time("run", || run(&tel));
        let registry = clock.time("score", || tel.snapshot());
        (name, report, registry)
    })
}

/// Render `BENCH_telemetry.json`: every experiment's registry in run
/// order, plus a merged view folding all of them together (counters add,
/// gauges overwrite, histograms bucket-add). Deterministic: same inputs,
/// same bytes.
pub fn telemetry_json(results: &[ExperimentResult]) -> String {
    let mut merged = Registry::default();
    let mut out = String::from("{\"experiments\":{");
    for (i, (name, _, registry)) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        underradar_telemetry::json::push_key(&mut out, name);
        out.push_str(&registry.to_json());
        merged.merge(registry);
    }
    out.push_str("},\"merged\":");
    out.push_str(&merged.to_json());
    out.push_str("}\n");
    out
}
