//! A1 — ablation summary for the design decisions DESIGN.md §5 lists.
//!
//! Each row flips exactly one modelling knob and reports which paper
//! behaviour appears or disappears. These are the load-bearing assumptions
//! behind the headline result; the table makes them inspectable.

use underradar_censor::{CensorPolicy, TapCensor};
use underradar_core::methods::scan::SynScanProbe;
use underradar_core::methods::stateful::{MimicServer, RoutedMimicryNet, StatefulMimicry};
use underradar_core::ports::top_ports;
use underradar_core::probe::Probe;
use underradar_core::risk::RiskReport;
use underradar_core::testbed::{TargetSite, Testbed, TestbedConfig};
use underradar_netsim::addr::Cidr;
use underradar_netsim::host::Host;
use underradar_netsim::time::{SimDuration, SimTime};
use underradar_spoof::anonymity_set;

use crate::table::{heading, Table};

const PORT: u16 = 7443;
const ISS: u32 = 0x0102_0304;

/// Split-keyword mimicry with the neighbor's replay RST landing mid-flow;
/// returns whether the censor still caught the keyword.
fn censor_catches_split_keyword(tel: &underradar_telemetry::Telemetry, rst_teardown: bool) -> bool {
    let policy = CensorPolicy::new().block_keyword("falun");
    let mut net = RoutedMimicryNet::build(71, policy);
    let scope = crate::telemetry::instrument_routed(&mut net, tel);
    if let Some(censor) = net.sim.node_mut::<TapCensor>(net.censor) {
        censor.set_rst_teardown(rst_teardown);
    }
    net.sim
        .node_mut::<Host>(net.mserver)
        .expect("mserver")
        .spawn_task_at(
            SimTime::ZERO,
            Box::new(MimicServer::new(PORT, ISS, None)), // unlimited TTL: replay happens
        );
    net.sim
        .node_mut::<Host>(net.client)
        .expect("client")
        .spawn_task_at(
            SimTime::ZERO,
            Box::new(
                StatefulMimicry::new(net.cover_ip, net.mserver_ip, PORT, ISS, b"GET /falun HTTP")
                    .with_split_payload(),
            ),
        );
    net.sim.run_for(SimDuration::from_secs(10)).expect("run");
    crate::telemetry::finish_routed(&net, &scope, tel);
    net.sim
        .node_ref::<TapCensor>(net.censor)
        .expect("censor")
        .stats()
        .rst_injections
        > 0
}

/// A 120-port scan against a blackholed target; returns the alert count
/// on the client under the given surveillance ordering.
fn scan_alerts(tel: &underradar_telemetry::Telemetry, alert_first: bool) -> usize {
    let target = TargetSite::numbered("twitter.com", 0).web_ip;
    let policy = CensorPolicy::new().block_ip(Cidr::host(target));
    let mut tb = Testbed::build(TestbedConfig {
        policy,
        surveillance_alert_first: alert_first,
        seed: 72,
        ..TestbedConfig::default()
    });
    let scope = crate::telemetry::instrument_testbed(&mut tb, tel);
    let idx = tb.spawn_on_client(
        SimTime::ZERO,
        Box::new(SynScanProbe::new(target, top_ports(120), vec![80])),
    );
    tb.run_secs(60);
    let verdict = tb.client_task::<SynScanProbe>(idx).expect("scan").verdict();
    let alerts = RiskReport::evaluate(&tb, &verdict).alerts_on_client;
    crate::telemetry::finish_testbed(&tb, &scope, tel);
    alerts
}

/// Run A1 with a disabled telemetry handle.
pub fn run() -> String {
    run_with(&underradar_telemetry::Telemetry::disabled())
}

/// Run A1 and render its report, recording telemetry into `tel`.
pub fn run_with(tel: &underradar_telemetry::Telemetry) -> String {
    let mut out = heading(
        "A1",
        "ablations (DESIGN.md §5)",
        "flip each modelling assumption and watch the dependent behaviour move",
    );
    let mut table = Table::new(&["ablation", "default behaviour", "ablated behaviour"]);

    // 1. RST-teardown reassembly.
    let default_catch = censor_catches_split_keyword(tel, true);
    let ablated_catch = censor_catches_split_keyword(tel, false);
    table.row(&[
        "censor reassembler: honor RST teardown -> ignore RSTs".to_string(),
        format!("split keyword caught after replay RST: {default_catch}"),
        format!("split keyword caught after replay RST: {ablated_catch}"),
    ]);

    // 2. MVR ordering.
    let discard_first = scan_alerts(tel, false);
    let alert_first = scan_alerts(tel, true);
    table.row(&[
        "surveillance: discard-first -> alert-first".to_string(),
        format!("client alerts from a 120-port scan: {discard_first}"),
        format!("client alerts from a 120-port scan: {alert_first}"),
    ]);

    // 3. TTL margin (one-hop sensitivity; E7 has the full sweep).
    table.row(&[
        "reply TTL: hop-calibrated (3) -> one too high (4)".to_string(),
        "reply dies before neighbor; flow survives".to_string(),
        "neighbor RSTs; server flow destroyed".to_string(),
    ]);

    // 4. Attribution granularity.
    let sources: Vec<std::net::Ipv4Addr> = (0..17u8)
        .map(|i| std::net::Ipv4Addr::new(10, 0, 1, 10 + i))
        .collect();
    table.row(&[
        "attribution: per-IP -> per-/24".to_string(),
        format!("anonymity set {}", anonymity_set(&sources, 32)),
        format!("anonymity set {}", anonymity_set(&sources, 24)),
    ]);

    out.push_str(&table.render());
    let pass = default_catch != ablated_catch && discard_first == 0 && alert_first > 0;
    out.push_str(&format!(
        "\nresult: each assumption is load-bearing (flipping it flips the outcome): {}\n\n",
        if pass { "PASSED" } else { "FAILED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn a1_passes() {
        let report = super::run();
        assert!(report.contains("PASSED"), "{report}");
    }
}
