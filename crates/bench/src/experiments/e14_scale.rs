//! E14 — population-scale monitor core.
//!
//! The paper's evasion story (§2–§3) is a population-scale phenomenon: a
//! handful of measurement clients hide inside the ordinary traffic of
//! thousands of monitored hosts. This experiment drives the redesigned
//! hot path end to end: one detection engine carries 100k+ concurrent
//! flows through the generational arena flow table, with the batched
//! packet API, and the report asserts
//!
//! 1. **scale** — every flow stays resident (no evictions) under an
//!    explicit per-flow memory budget;
//! 2. **batch equivalence** — `process_batch` produces byte-identical
//!    verdicts to per-packet `process`;
//! 3. **shard identity** — partitioning flows across 4 independent
//!    engines and merging their alerts reproduces the 1-engine output
//!    byte for byte (per-flow state makes flow-partitioning exact);
//! 4. **hiding** — only the measurement clients draw alerts; the
//!    population contributes bulk, not noise.
//!
//! Wall-clock packets/sec goes to stderr so stdout stays deterministic.
//! `UNDERRADAR_E14_FLOWS` shrinks the run for smoke tests (CI uses a
//! reduced flow count; the default exercises the 100k+ target).

use std::net::Ipv4Addr;

use underradar_ids::alert::Alert;
use underradar_ids::engine::DetectionEngine;
use underradar_ids::parser::{parse_ruleset, VarTable};
use underradar_ids::rule::Rule;
use underradar_ids::stream::ReassemblyConfig;
use underradar_netsim::addr::Cidr;
use underradar_netsim::flow::FlowTuple;
use underradar_netsim::packet::Packet;
use underradar_netsim::rng::SimRng;
use underradar_netsim::time::{SimDuration, SimTime};
use underradar_netsim::wire::tcp::TcpFlags;
use underradar_workloads::population::{PopulationConfig, PopulationTraffic};

use crate::table::{heading, Table};

/// Default concurrent-flow target (the ≥100k acceptance bar plus slack).
const DEFAULT_FLOWS: usize = 120_000;
/// Per-flow memory budget in bytes (arena slot + dir buffers + engine
/// match state, amortized over live flows).
const PER_FLOW_BUDGET: usize = 1024;
/// Measurement hosts hiding in the population.
const MEASUREMENT_HOSTS: usize = 4;
/// Probe flows per measurement host.
const PROBES_PER_HOST: usize = 2;
/// Shards for the partition-identity check.
const SHARDS: usize = 4;

fn ruleset() -> Vec<Rule> {
    parse_ruleset(
        r#"alert tcp any any -> any 80 (msg:"censored keyword"; content:"falun"; nocase; sid:1400;)
alert tcp any any -> any 80 (msg:"censored keyword (stream)"; flow:established,to_server; content:"falun"; sid:1401;)"#,
        &VarTable::default(),
    )
    .expect("e14 ruleset parses")
}

/// One packet of the generated load with its delivery instant.
struct Timed {
    time: SimTime,
    packet: Packet,
}

struct ScaleLoad {
    /// Time-sorted stream (stable order; equal instants form one batch).
    stream: Vec<Timed>,
    hosts: usize,
    flows: usize,
    measurement_ips: Vec<Ipv4Addr>,
}

/// Build the load: `flows` concurrent client flows (SYN / SYN-ACK / ACK /
/// one data segment, round-major so every flow is open at once), a
/// handful of measurement probes requesting the censored path, and the
/// default population mix on a neighbouring prefix.
fn generate(flows: usize) -> ScaleLoad {
    let prefix = Cidr::slash16(Ipv4Addr::new(10, 30, 0, 0));
    let hosts = (flows / 64).clamp(64, 60_000);
    let probes = MEASUREMENT_HOSTS * PROBES_PER_HOST;
    let measurement_ips: Vec<Ipv4Addr> = (0..MEASUREMENT_HOSTS)
        .map(|m| prefix.nth((hosts + 1 + m) as u64))
        .collect();

    let mut stream = Vec::with_capacity(flows * 4 + 4096);
    // Round r of the handshake script for every flow shares one instant:
    // the engine sees flows*1 same-time deliveries per round, exactly the
    // shape `Simulator::drain_batch` coalesces.
    for round in 0..4u64 {
        let t = SimTime::from_nanos(round * 1_000_000_000);
        for i in 0..flows {
            let probe = i >= flows - probes;
            let (src, sport) = if probe {
                let m = i - (flows - probes);
                (
                    measurement_ips[m % MEASUREMENT_HOSTS],
                    40_000 + (m / MEASUREMENT_HOSTS) as u16,
                )
            } else {
                (
                    prefix.nth((1 + i % hosts) as u64),
                    10_000 + (i / hosts) as u16,
                )
            };
            let dst = PopulationTraffic::domain_ip(i % 500);
            let packet = match round {
                0 => Packet::tcp(src, dst, sport, 80, 0, 0, TcpFlags::syn(), vec![]),
                1 => Packet::tcp(dst, src, 80, sport, 0, 1, TcpFlags::syn_ack(), vec![]),
                2 => Packet::tcp(src, dst, sport, 80, 1, 1, TcpFlags::ack(), vec![]),
                _ => {
                    let path = if probe {
                        "/falun".to_string()
                    } else {
                        format!("/page{i}")
                    };
                    Packet::tcp(
                        src,
                        dst,
                        sport,
                        80,
                        1,
                        1,
                        TcpFlags::psh_ack(),
                        format!("GET {path} HTTP/1.0\r\n\r\n").into_bytes(),
                    )
                }
            };
            stream.push(Timed { time: t, packet });
        }
    }

    // Ambient population on a neighbouring /16 — bulk the monitors chew
    // through while the probe flows stay resident.
    let mut rng = SimRng::seed_from_u64(1400);
    let population = PopulationTraffic::generate(
        &PopulationConfig {
            clients: 2000,
            client_prefix: Cidr::slash16(Ipv4Addr::new(10, 31, 0, 0)),
            duration: SimDuration::from_secs(30),
            ..PopulationConfig::default()
        },
        &mut rng,
    );
    stream.extend(population.into_iter().map(|tp| Timed {
        time: tp.time,
        packet: tp.packet,
    }));
    // Stable: equal instants keep generation order, so every processing
    // mode walks the identical sequence.
    stream.sort_by_key(|t| t.time);

    ScaleLoad {
        stream,
        hosts: hosts + MEASUREMENT_HOSTS,
        flows,
        measurement_ips,
    }
}

fn scale_engine(flows: usize) -> DetectionEngine {
    DetectionEngine::with_reassembly(
        ruleset(),
        ReassemblyConfig {
            // Headroom over the synthetic flows for the population's own
            // TCP flows; the run asserts zero evictions.
            max_flows: flows + 64_000,
            ..ReassemblyConfig::default()
        },
    )
}

/// Feed the whole stream through `engine`, batching maximal equal-time
/// runs (the shape the simulator's `drain_batch` hands a node).
fn run_batched(engine: &mut DetectionEngine, stream: &[Timed], out: &mut Vec<Alert>) {
    let mut i = 0;
    let mut batch: Vec<Packet> = Vec::new();
    while i < stream.len() {
        let t = stream[i].time;
        let mut j = i;
        while j < stream.len() && stream[j].time == t {
            j += 1;
        }
        batch.clear();
        batch.extend(stream[i..j].iter().map(|p| p.packet.clone()));
        engine.process_batch(t, &batch, out);
        i = j;
    }
}

/// Canonical flow-partition index: both directions of a flow land on the
/// same shard, so flow-scoped engine state never splits.
fn shard_of(packet: &Packet, shards: usize) -> usize {
    let key = FlowTuple::of_packet(packet).canonical();
    let mut h = u64::from(u32::from(key.lo.0)) ^ (u64::from(u32::from(key.hi.0)) << 20);
    h ^= (u64::from(key.lo.1) << 44) ^ (u64::from(key.hi.1) << 8);
    // splitmix64 finisher — spreads adjacent addresses across shards.
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d049bb133111eb);
    (h ^ (h >> 31)) as usize % shards
}

fn alert_line(a: &Alert) -> String {
    format!(
        "t={} sid={} src={} sport={}",
        a.time.as_nanos(),
        a.sid,
        a.src,
        a.src_port.map(i64::from).unwrap_or(-1),
    )
}

/// Merged, order-canonical rendering of an alert set (sharding changes
/// arrival interleaving, never the set).
fn canonical_render(alerts: &[Alert]) -> String {
    let mut lines: Vec<String> = alerts.iter().map(alert_line).collect();
    lines.sort();
    lines.join("\n")
}

/// Run E14 with a disabled telemetry handle.
pub fn run() -> String {
    run_with(&underradar_telemetry::Telemetry::disabled())
}

/// Run E14 at the default (or `UNDERRADAR_E14_FLOWS`-reduced) scale.
pub fn run_with(tel: &underradar_telemetry::Telemetry) -> String {
    let flows = std::env::var("UNDERRADAR_E14_FLOWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_FLOWS);
    run_sized(tel, flows)
}

/// Run E14 with an explicit concurrent-flow target.
pub fn run_sized(tel: &underradar_telemetry::Telemetry, flows: usize) -> String {
    let mut out = heading(
        "E14",
        "population-scale monitor core (arena flows, batched packets)",
        "one engine holds every concurrent flow in bounded memory; batch,\n\
         per-packet, and flow-sharded processing agree byte for byte",
    );
    let load = generate(flows);
    let packets = load.stream.len();

    // --- 1: scale through the batched path ---
    let mut engine = scale_engine(flows);
    let mut batched_alerts = Vec::new();
    let wall = std::time::Instant::now();
    run_batched(&mut engine, &load.stream, &mut batched_alerts);
    let elapsed = wall.elapsed();
    // Wall-clock throughput is machine-dependent: stderr only.
    eprintln!(
        "e14_scale: {} packets in {:.3}s ({:.0} pkts/sec)",
        packets,
        elapsed.as_secs_f64(),
        packets as f64 / elapsed.as_secs_f64().max(1e-9),
    );

    let held = engine.live_flows();
    let evicted = engine.reassembly_stats().evicted;
    let per_flow = engine.flow_memory_bytes() / held.max(1);
    let scale_ok = held >= load.flows && evicted == 0 && per_flow <= PER_FLOW_BUDGET;

    let mut t = Table::new(&["population-scale run", "value"]);
    t.row(&["monitored hosts".to_string(), load.hosts.to_string()]);
    t.row(&[
        "concurrent client flows".to_string(),
        load.flows.to_string(),
    ]);
    t.row(&["packets processed".to_string(), packets.to_string()]);
    t.row(&["flows resident at end".to_string(), held.to_string()]);
    t.row(&["flows evicted".to_string(), evicted.to_string()]);
    t.row(&[
        format!("per-flow memory (budget {PER_FLOW_BUDGET} B)"),
        format!("{per_flow} B"),
    ]);
    out.push_str(&t.render());

    // --- 2: batch vs per-packet verdict identity ---
    let mut per_packet = scale_engine(flows);
    let mut pp_alerts = Vec::new();
    for p in &load.stream {
        pp_alerts.extend(per_packet.process(p.time, &p.packet));
    }
    let batch_ok = batched_alerts
        .iter()
        .map(alert_line)
        .eq(pp_alerts.iter().map(alert_line))
        && engine.stats().alerts == per_packet.stats().alerts
        && engine.stats().packets == per_packet.stats().packets;
    out.push_str(&format!(
        "\nbatched vs per-packet verdicts: {} ({} alerts)\n",
        if batch_ok { "identical" } else { "DIVERGED" },
        batched_alerts.len(),
    ));

    // --- 3: 1-vs-N-shard byte identity ---
    let mut shards: Vec<DetectionEngine> =
        (0..SHARDS).map(|_| scale_engine(flows / SHARDS)).collect();
    let mut shard_alerts: Vec<Alert> = Vec::new();
    for p in &load.stream {
        let s = shard_of(&p.packet, SHARDS);
        shard_alerts.extend(shards[s].process(p.time, &p.packet));
    }
    let one = canonical_render(&batched_alerts);
    let many = canonical_render(&shard_alerts);
    let shard_ok = one == many;
    out.push_str(&format!(
        "1-shard vs {SHARDS}-shard merged output: {}\n",
        if shard_ok {
            "byte-identical"
        } else {
            "DIVERGED"
        },
    ));

    // --- 4: the measurement clients hide in the population ---
    let mut alert_srcs: Vec<Ipv4Addr> = batched_alerts.iter().map(|a| a.src).collect();
    alert_srcs.sort();
    alert_srcs.dedup();
    let mut expected = load.measurement_ips.clone();
    expected.sort();
    let hiding_ok = alert_srcs == expected;
    out.push_str(&format!(
        "\nalerting hosts: {} of {} ({} measurement clients, {} probe flows, {:.4}% of flows)\n",
        alert_srcs.len(),
        load.hosts,
        MEASUREMENT_HOSTS,
        MEASUREMENT_HOSTS * PROBES_PER_HOST,
        100.0 * (MEASUREMENT_HOSTS * PROBES_PER_HOST) as f64 / load.flows as f64,
    ));
    out.push_str("population traffic drew zero alerts; every alert names a measurement client\n");

    tel.set_counter("e14.scale.hosts", load.hosts as u64);
    tel.set_counter("e14.scale.flows", load.flows as u64);
    tel.set_counter("e14.scale.packets", packets as u64);
    tel.set_gauge("e14.scale.per_flow_bytes", per_flow as i64);
    tel.set_counter("e14.scale.alerts", batched_alerts.len() as u64);
    engine.export_telemetry(tel, "e14.engine");

    let pass = scale_ok && batch_ok && shard_ok && hiding_ok;
    out.push_str(&format!(
        "\nresult: population-scale core holds {} flows in budget: {}\n\n",
        load.flows,
        if pass { "PASSED" } else { "FAILED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn e14_passes_reduced() {
        // Reduced flow count keeps the debug-mode test fast; the default
        // 120k-flow sizing runs under `cargo bench` / ci.sh in release.
        let report = super::run_sized(&underradar_telemetry::Telemetry::disabled(), 8_000);
        assert!(report.contains("PASSED"), "{report}");
        assert!(report.contains("batched vs per-packet verdicts: identical"));
        assert!(report.contains("byte-identical"));
    }
}
