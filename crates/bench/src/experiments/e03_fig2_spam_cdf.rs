//! E3 — **Figure 2**: CDF of spam-filter scores for measurement emails.
//!
//! "This CDF shows Proofpoint's (our university spam detection service)
//! spam scores for n=100 measurements. Possible scores range from 0 (not
//! spam) to 100 (spam)." In the paper, every measurement message lands in
//! the spam range (scores ≈40–100), validating evasion-as-spam.
//!
//! We push n=100 measurement messages through the heuristic scorer and
//! plot the same CDF, with a ham baseline for contrast.

use underradar_spam::{empirical_cdf, ham_message, measurement_spam, spam_score, SPAM_THRESHOLD};

use crate::table::heading;

/// Number of measurement emails, matching the paper's n.
pub const N: u64 = 100;

/// Collect the measurement-spam score sample.
pub fn measurement_scores() -> Vec<f64> {
    (0..N)
        .map(|i| spam_score(&measurement_spam(i, "twitter.com")))
        .collect()
}

/// Run E3 with a disabled telemetry handle.
pub fn run() -> String {
    run_with(&underradar_telemetry::Telemetry::disabled())
}

/// Run E3 and render its report, recording telemetry into `tel`.
pub fn run_with(tel: &underradar_telemetry::Telemetry) -> String {
    let mut out = heading(
        "E3",
        "Figure 2 (§3.2.3, spam evasion)",
        "all n=100 measurement emails score in the spam range (~40-100)",
    );
    let scores = measurement_scores();
    underradar_spam::score::export_score_telemetry(tel, &scores);
    let cdf = empirical_cdf(&scores);
    out.push_str("CDF of spam scores for n=100 measurement emails:\n\n");
    out.push_str(&underradar_spam::cdf::render_ascii(
        &cdf,
        "Proofpoint-like Spam Score",
        60,
        16,
    ));

    let min = scores.iter().cloned().fold(f64::MAX, f64::min);
    let max = scores.iter().cloned().fold(f64::MIN, f64::max);
    let classified = scores.iter().filter(|&&s| s >= SPAM_THRESHOLD).count();
    let ham_scores: Vec<f64> = (0..N)
        .map(|i| spam_score(&ham_message(i, "campus.example")))
        .collect();
    let ham_max = ham_scores.iter().cloned().fold(f64::MIN, f64::max);

    out.push_str(&format!(
        "\nmeasurement emails: min score {min:.1}, max {max:.1}; {classified}/{N} \
         classified as spam (threshold {SPAM_THRESHOLD})\n"
    ));
    out.push_str(&format!(
        "ham baseline:       max score {ham_max:.1}; 0/{N} classified as spam\n"
    ));
    let pass = classified == N as usize && min >= 40.0 && ham_max < SPAM_THRESHOLD;
    out.push_str(&format!(
        "\nresult: Figure 2 shape reproduced (all measurements in spam range): {}\n\n",
        if pass { "PASSED" } else { "FAILED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_passes() {
        let report = run();
        assert!(report.contains("PASSED"), "{report}");
        assert!(report.contains("100/100"), "{report}");
    }

    #[test]
    fn scores_match_figure2_support() {
        let scores = measurement_scores();
        assert_eq!(scores.len(), 100);
        assert!(scores.iter().all(|&s| (40.0..=100.0).contains(&s)));
    }
}
