//! The paper-scale campaign behind `exp_campaign`, plus small helpers
//! the campaign-backed experiments (e02, e04–e07, e12) share.
//!
//! The campaign crosses every measurement method with the censor-policy
//! columns the paper evaluates (control, DNS injection, IP blackholing,
//! keyword RST) over a curated target list — ≥500 trials. Output is
//! byte-identical for any `--shards` value.

use underradar_campaign::{engine, CampaignSpec, MethodKind, NamedPolicy, TrialResult};
use underradar_censor::CensorPolicy;
use underradar_core::testbed::TargetSite;
use underradar_netsim::addr::Cidr;
use underradar_protocols::dns::DnsName;
use underradar_telemetry::Telemetry;

/// Look up one evidence value on a trial ("-" when absent).
pub fn evidence(trial: &TrialResult, key: &str) -> String {
    trial
        .evidence
        .iter()
        .find(|(name, _)| *name == key)
        .map(|(_, value)| value.clone())
        .unwrap_or_else(|| "-".to_string())
}

/// The paper-scale campaign: all 8 methods × 4 policies × 4 targets ×
/// `trials_per_cell` seeds (512 trials at the default 4).
pub fn paper_campaign(trials_per_cell: usize) -> CampaignSpec {
    let targets = underradar_workloads::targets::curated(4);
    let mut dns_block = CensorPolicy::new();
    let mut blackhole = CensorPolicy::new();
    for (i, domain) in targets.iter().enumerate() {
        dns_block = dns_block.block_domain(&DnsName::parse(domain).expect("domain"));
        blackhole = blackhole.block_ip(Cidr::host(TargetSite::numbered(domain, i as u8).web_ip));
    }
    CampaignSpec::new("paper-campaign", 2015)
        .targets(targets.iter().copied())
        .methods(MethodKind::ALL)
        .policy(NamedPolicy::new("control", CensorPolicy::new()))
        .policy(NamedPolicy::new("dns-injection", dns_block))
        .policy(NamedPolicy::new("ip-blackhole", blackhole))
        .policy(
            NamedPolicy::new("keyword-rst", CensorPolicy::new().block_keyword("falun"))
                .with_probe_path("/falun-page"),
        )
        .trials_per_cell(trials_per_cell)
        .run_secs(180)
}

/// A synthetic scale matrix for service-mode stress runs: `trials` cheap
/// SYN-scan trials of one policy column against one target. Each trial is
/// a full deterministic testbed simulation, but the cheapest one we have,
/// so million-trial campaigns (`exp_campaign --service --synthetic N`)
/// finish in minutes while exercising the scheduler, journal, and
/// streaming paths at population scale.
pub fn synthetic_campaign(trials: usize) -> CampaignSpec {
    CampaignSpec::new("synthetic-scale", 2015)
        .target("twitter.com")
        .method(MethodKind::Scan)
        .policy(NamedPolicy::new("control", CensorPolicy::new()))
        .trials_per_cell(trials)
        .run_secs(20)
}

/// Run the paper campaign on `shards` workers and render the text view.
pub fn run_with_shards(tel: &Telemetry, shards: usize) -> String {
    let spec = paper_campaign(4);
    let report = engine::run(&spec, shards, tel);
    report.render_text()
}

/// Run with a single worker (the `experiments::ALL`-style entry point).
pub fn run_with(tel: &Telemetry) -> String {
    run_with_shards(tel, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_campaign_scales_linearly_in_trials() {
        assert_eq!(synthetic_campaign(1_000).trial_count(), 1_000);
        assert_eq!(synthetic_campaign(3).trial_count(), 3);
    }

    #[test]
    fn paper_campaign_is_at_least_500_trials_across_all_methods() {
        let spec = paper_campaign(4);
        assert!(spec.trial_count() >= 500, "{}", spec.trial_count());
        assert_eq!(spec.methods.len(), 8);
        assert!(spec.policies.len() >= 3);
    }
}
