//! E9 — §2.1: storage constraints and Massive Volume Reduction.
//!
//! "the NSA could only store 7.5% of the traffic they received ... engages
//! in what we call Massive Volume Reduction (MVR) to reduce the volume of
//! captured traffic by roughly 30%, in part by throwing away all
//! peer-to-peer traffic."
//!
//! Feed a realistic population mix (plus measurement traffic) through the
//! surveillance pipeline and report the per-class retention table, the
//! achieved volume reduction, and the retention-store windows.

use underradar_netsim::rng::SimRng;
use underradar_surveil::system::{SurveillanceConfig, SurveillanceSystem};
use underradar_surveil::TrafficClass;
use underradar_workloads::population::{PopulationConfig, PopulationTraffic};

use crate::table::{heading, mark, Table};

/// Run E9 with a disabled telemetry handle.
pub fn run() -> String {
    run_with(&underradar_telemetry::Telemetry::disabled())
}

/// Run E9 and render its report, recording telemetry into `tel`.
pub fn run_with(tel: &underradar_telemetry::Telemetry) -> String {
    let mut out = heading(
        "E9",
        "§2.1 (surveillance storage constraints / MVR)",
        "whole classes discarded; retention bounded; metadata kept for all",
    );
    let mut system = SurveillanceSystem::new(SurveillanceConfig::with_rules(vec![]));
    let mut rng = SimRng::seed_from_u64(2009);
    let config = PopulationConfig {
        // Heavier P2P share, like a real access network.
        p2p_pps: 60.0,
        web_rps: 40.0,
        dns_rps: 30.0,
        scan_pps: 20.0,
        ..PopulationConfig::default()
    };
    let stream = PopulationTraffic::generate(&config, &mut rng);
    for tp in &stream {
        system.process(tp.time, &tp.packet);
    }
    PopulationTraffic::export_telemetry(&stream, tel);
    system.export_telemetry(tel);

    let mvr = system.mvr();
    let mut table = Table::new(&["class", "packets", "bytes", "retained bytes", "discarded"]);
    let mut discarded_bytes = 0u64;
    for (class, vol) in mvr.volumes() {
        if vol.packets == 0 {
            continue;
        }
        let discarded = vol.bytes - vol.retained_bytes;
        discarded_bytes += discarded;
        table.row(&[
            class.to_string(),
            vol.packets.to_string(),
            vol.bytes.to_string(),
            vol.retained_bytes.to_string(),
            mark(vol.retained_bytes == 0).to_string(),
        ]);
    }
    out.push_str(&table.render());

    let total = mvr.total_bytes();
    let reduction = discarded_bytes as f64 / total.max(1) as f64;
    out.push_str(&format!(
        "\nvolume reduction by class-discard: {:.1}% (paper: MVR reduces ~30%, incl. all P2P)\n",
        reduction * 100.0
    ));
    out.push_str(&format!(
        "effective retention: {:.1}% of observed bytes (budget model: 7.5%)\n",
        mvr.retention_rate() * 100.0
    ));
    let p2p_gone = mvr
        .volumes()
        .iter()
        .find(|(c, _)| *c == TrafficClass::P2p)
        .map(|(_, v)| v.retained_bytes == 0)
        .unwrap_or(false);

    // Retention windows (the three stores from §2.1).
    let stores = system.stores();
    out.push_str(&format!(
        "\nretention windows: content {}d, metadata {}d, alerts {}d (paper: 3d / 30d / 1y)\n",
        stores.content.window().as_nanos() / 86_400_000_000_000,
        stores.metadata.window().as_nanos() / 86_400_000_000_000,
        stores.alerts.window().as_nanos() / 86_400_000_000_000,
    ));
    out.push_str(&format!(
        "metadata records: {} (one per packet — kept regardless of MVR)\n",
        stores.metadata.total_inserted()
    ));
    out.push_str(&format!(
        "content records:  {} (retained packets only)\n",
        stores.content.total_inserted()
    ));

    let meta_all = stores.metadata.total_inserted() == stream.len() as u64;
    let content_fewer = stores.content.total_inserted() < stores.metadata.total_inserted();
    let pass = reduction >= 0.30 && p2p_gone && meta_all && content_fewer;
    out.push_str(&format!(
        "\nresult: ≥30% volume reduction with P2P fully discarded, metadata for all: {}\n\n",
        if pass { "PASSED" } else { "FAILED" }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn e9_passes() {
        let report = super::run();
        assert!(report.contains("PASSED"), "{report}");
    }
}
