//! Criterion performance benches over the substrate: the engine and
//! simulator costs that determine how large a reproduction run can get.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::net::Ipv4Addr;

use underradar_ids::aho::{find_sub, AhoCorasick};
use underradar_ids::engine::DetectionEngine;
use underradar_ids::parser::{parse_ruleset, VarTable};
use underradar_ids::stream::StreamReassembler;
use underradar_netsim::packet::Packet;
use underradar_netsim::rng::SimRng;
use underradar_netsim::time::SimTime;
use underradar_netsim::wire::tcp::TcpFlags;
use underradar_protocols::dns::{DnsMessage, DnsName, QType};
use underradar_surveil::mvr::{Mvr, MvrConfig};
use underradar_workloads::population::{PopulationConfig, PopulationTraffic};

const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 2);
const DST: Ipv4Addr = Ipv4Addr::new(93, 184, 216, 34);

fn sample_payload(len: usize) -> Vec<u8> {
    // Realistic-ish HTTP filler without any rule keyword.
    let base = b"GET /articles/weather-report HTTP/1.0\r\nHost: news.example\r\nAccept: text/html\r\n\r\n";
    base.iter().copied().cycle().take(len).collect()
}

fn ruleset(n: usize) -> Vec<underradar_ids::rule::Rule> {
    let mut text = String::new();
    for i in 0..n {
        text.push_str(&format!(
            "alert tcp any any -> any any (msg:\"kw{i}\"; content:\"pattern-{i}-zzz\"; nocase; sid:{};)\n",
            1000 + i
        ));
    }
    parse_ruleset(&text, &VarTable::new()).expect("bench ruleset parses")
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("ids_engine");
    for rules in [10usize, 100, 500] {
        let payload = sample_payload(512);
        group.throughput(Throughput::Bytes(512));
        group.bench_function(format!("process_512B_{rules}rules"), |b| {
            let mut engine = DetectionEngine::new(ruleset(rules));
            let pkt = Packet::tcp(SRC, DST, 40000, 80, 1, 1, TcpFlags::psh_ack(), payload.clone());
            b.iter(|| engine.process(SimTime::ZERO, std::hint::black_box(&pkt)));
        });
    }
    group.finish();
}

fn bench_aho_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("multipattern");
    let patterns: Vec<(Vec<u8>, bool)> = (0..200)
        .map(|i| (format!("needle-{i}-xyz").into_bytes(), false))
        .collect();
    let hay = sample_payload(4096);
    group.throughput(Throughput::Bytes(hay.len() as u64));
    group.bench_function("aho_corasick_200pat_4KB", |b| {
        let ac = AhoCorasick::new(&patterns);
        b.iter(|| ac.matching_patterns(std::hint::black_box(&hay)));
    });
    group.bench_function("naive_200pat_4KB", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for (p, nocase) in &patterns {
                if find_sub(std::hint::black_box(&hay), p, *nocase, 0).is_some() {
                    hits += 1;
                }
            }
            hits
        });
    });
    group.finish();
}

fn bench_reassembly(c: &mut Criterion) {
    c.bench_function("stream_reassembly_100seg", |b| {
        b.iter_batched(
            StreamReassembler::new,
            |mut r| {
                let syn = Packet::tcp(SRC, DST, 4000, 80, 100, 0, TcpFlags::syn(), vec![]);
                let syn_ack = Packet::tcp(DST, SRC, 80, 4000, 500, 101, TcpFlags::syn_ack(), vec![]);
                let ack = Packet::tcp(SRC, DST, 4000, 80, 101, 501, TcpFlags::ack(), vec![]);
                r.process(&syn);
                r.process(&syn_ack);
                r.process(&ack);
                let mut seq = 101u32;
                for _ in 0..100 {
                    let data =
                        Packet::tcp(SRC, DST, 4000, 80, seq, 501, TcpFlags::psh_ack(), vec![0x61; 64]);
                    r.process(&data);
                    seq = seq.wrapping_add(64);
                }
                r
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_wire_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    let pkt = Packet::tcp(SRC, DST, 40000, 80, 7, 9, TcpFlags::psh_ack(), sample_payload(512));
    let wire = pkt.to_wire();
    group.throughput(Throughput::Bytes(wire.len() as u64));
    group.bench_function("packet_encode_552B", |b| b.iter(|| std::hint::black_box(&pkt).to_wire()));
    group.bench_function("packet_decode_552B", |b| {
        b.iter(|| Packet::from_wire(std::hint::black_box(&wire)).expect("decode"))
    });
    let query = DnsMessage::query(7, DnsName::parse("mail.example.com").expect("n"), QType::Mx);
    let qwire = query.encode();
    group.bench_function("dns_encode", |b| b.iter(|| std::hint::black_box(&query).encode()));
    group.bench_function("dns_decode", |b| {
        b.iter(|| DnsMessage::decode(std::hint::black_box(&qwire)).expect("decode"))
    });
    group.finish();
}

fn bench_mvr(c: &mut Criterion) {
    let mut rng = SimRng::seed_from_u64(1);
    let stream = PopulationTraffic::generate(&PopulationConfig::default(), &mut rng);
    c.bench_function("mvr_classify_population_stream", |b| {
        b.iter_batched(
            || Mvr::new(MvrConfig::default()),
            |mut mvr| {
                for tp in &stream {
                    mvr.process(tp.time, &tp.packet);
                }
                mvr
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_generators(c: &mut Criterion) {
    c.bench_function("spam_score_100_messages", |b| {
        use underradar_spam::{measurement_spam, spam_score};
        b.iter(|| {
            let mut total = 0.0;
            for i in 0..100u64 {
                total += spam_score(std::hint::black_box(&measurement_spam(i, "twitter.com")));
            }
            total
        });
    });
    c.bench_function("syria_log_2000_users", |b| {
        use underradar_workloads::syria::{SyriaLog, SyriaLogConfig};
        let config = SyriaLogConfig::paper_calibrated(2_000);
        b.iter(|| {
            let mut rng = SimRng::seed_from_u64(1);
            SyriaLog::generate(std::hint::black_box(&config), &mut rng).total_requests()
        });
    });
}

fn bench_simulator(c: &mut Criterion) {
    use underradar_core::testbed::{Testbed, TestbedConfig};
    use underradar_core::methods::ddos::DdosProbe;
    c.bench_function("testbed_ddos_20_samples_end_to_end", |b| {
        b.iter(|| {
            let mut tb = Testbed::build(TestbedConfig::default());
            let target = tb.target("youtube.com").expect("t").web_ip;
            tb.spawn_on_client(
                SimTime::ZERO,
                Box::new(DdosProbe::new(target, "youtube.com", "/", 20)),
            );
            tb.run_secs(30);
            tb.sim.events_processed()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_engine, bench_aho_vs_naive, bench_reassembly, bench_wire_codec, bench_mvr, bench_generators, bench_simulator
}
criterion_main!(benches);
