//! Performance benches over the substrate: the engine and simulator costs
//! that determine how large a reproduction run can get.
//!
//! Hand-rolled `Instant` harness (no external bench framework). Run with
//! `cargo bench --bench perf`. Besides timing, the reassembly section
//! *checks* the two acceptance properties of the zero-clone refactor:
//! bytes copied stay ≤ 2× payload (no per-segment O(window) clone), and
//! incremental throughput on a near-full 8 KB flow beats the old
//! clone-per-segment behaviour by ≥ 5×.

use std::hint::black_box;
use std::net::Ipv4Addr;
use std::time::Instant;

use underradar_ids::aho::{find_sub, AhoCorasick};
use underradar_ids::engine::DetectionEngine;
use underradar_ids::parser::{parse_ruleset, VarTable};
use underradar_ids::stream::StreamReassembler;
use underradar_netsim::packet::Packet;
use underradar_netsim::rng::SimRng;
use underradar_netsim::time::SimTime;
use underradar_netsim::wire::tcp::TcpFlags;
use underradar_protocols::dns::{DnsMessage, DnsName, QType};
use underradar_surveil::mvr::{Mvr, MvrConfig};
use underradar_workloads::population::{PopulationConfig, PopulationTraffic};

const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 2);
const DST: Ipv4Addr = Ipv4Addr::new(93, 184, 216, 34);

/// Median ns/iteration over 5 timed batches of `iters` calls (plus warmup).
fn measure<R>(iters: u32, mut f: impl FnMut() -> R) -> f64 {
    for _ in 0..(iters / 4).max(1) {
        black_box(f());
    }
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            t.elapsed().as_nanos() as f64 / f64::from(iters)
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

/// Print one result line; `bytes` adds a MB/s column.
fn report(name: &str, ns: f64, bytes: Option<u64>) {
    let tput = bytes
        .map(|b| format!("  {:>9.1} MB/s", b as f64 / ns * 1e9 / 1e6))
        .unwrap_or_default();
    println!("  {name:<44} {:>12.0} ns/iter{tput}", ns);
}

fn sample_payload(len: usize) -> Vec<u8> {
    // Realistic-ish HTTP filler without any rule keyword.
    let base =
        b"GET /articles/weather-report HTTP/1.0\r\nHost: news.example\r\nAccept: text/html\r\n\r\n";
    base.iter().copied().cycle().take(len).collect()
}

fn ruleset(n: usize) -> Vec<underradar_ids::rule::Rule> {
    let mut text = String::new();
    for i in 0..n {
        text.push_str(&format!(
            "alert tcp any any -> any any (msg:\"kw{i}\"; content:\"pattern-{i}-zzz\"; nocase; sid:{};)\n",
            1000 + i
        ));
    }
    parse_ruleset(&text, &VarTable::new()).expect("bench ruleset parses")
}

fn bench_engine() {
    println!("ids_engine");
    for rules in [10usize, 100, 500] {
        let payload = sample_payload(512);
        let mut engine = DetectionEngine::new(ruleset(rules));
        let pkt = Packet::tcp(SRC, DST, 40000, 80, 1, 1, TcpFlags::psh_ack(), payload);
        let ns = measure(2_000, || engine.process(SimTime::ZERO, black_box(&pkt)));
        report(&format!("process_512B_{rules}rules"), ns, Some(512));
    }
}

fn bench_aho_vs_naive() {
    println!("multipattern");
    let patterns: Vec<(Vec<u8>, bool)> = (0..200)
        .map(|i| (format!("needle-{i}-xyz").into_bytes(), false))
        .collect();
    let hay = sample_payload(4096);
    let ac = AhoCorasick::new(&patterns);
    let ns = measure(500, || ac.matching_patterns(black_box(&hay)));
    report("aho_corasick_200pat_4KB", ns, Some(hay.len() as u64));
    let ns = measure(20, || {
        let mut hits = 0usize;
        for (p, nocase) in &patterns {
            if find_sub(black_box(&hay), p, *nocase, 0).is_some() {
                hits += 1;
            }
        }
        hits
    });
    report("naive_200pat_4KB", ns, Some(hay.len() as u64));
}

/// A prebuilt in-order packet trace for one flow: handshake + `segs`
/// 64-byte data segments. Built outside the timed region so the benches
/// below measure reassembly, not packet construction.
fn flow_trace(segs: usize) -> Vec<Packet> {
    let mut trace = vec![
        Packet::tcp(SRC, DST, 4000, 80, 100, 0, TcpFlags::syn(), vec![]),
        Packet::tcp(DST, SRC, 80, 4000, 500, 101, TcpFlags::syn_ack(), vec![]),
        Packet::tcp(SRC, DST, 4000, 80, 101, 501, TcpFlags::ack(), vec![]),
    ];
    let mut seq = 101u32;
    for _ in 0..segs {
        trace.push(Packet::tcp(
            SRC,
            DST,
            4000,
            80,
            seq,
            501,
            TcpFlags::psh_ack(),
            vec![0x61; 64],
        ));
        seq = seq.wrapping_add(64);
    }
    trace
}

/// Run a trace through a fresh reassembler. `clone_per_segment`
/// re-materialises the full direction window after each segment — the
/// seed's old behaviour, where every `FlowContext` carried an owned copy
/// of the stream. Returns the reassembler and the bytes the clones copied.
fn drive_flow(trace: &[Packet], clone_per_segment: bool) -> (StreamReassembler, u64) {
    let mut r = StreamReassembler::new();
    let mut cloned = 0u64;
    for pkt in trace {
        if let Some(ctx) = r.process(pkt) {
            if clone_per_segment && ctx.appended {
                let copy = r.stream_of(&ctx.key, ctx.direction).to_vec();
                cloned += copy.len() as u64;
                black_box(copy);
            }
        }
    }
    (r, cloned)
}

fn bench_reassembly() {
    println!("stream_reassembly");
    let short = flow_trace(100);
    let ns = measure(2_000, || drive_flow(&short, false));
    report("stream_reassembly_100seg", ns, Some(100 * 64));

    // Near-full 8 KB flow: 512 × 64 B = 32 KB through the 8 KB window, so
    // most segments land on a full window — the worst case for the seed's
    // clone-per-segment contexts and the steady state for long flows.
    const SEGS: usize = 512;
    let payload = (SEGS * 64) as u64;
    let trace = flow_trace(SEGS);
    let incr_ns = measure(500, || drive_flow(&trace, false));
    report("reassembly_8KB_flow_incremental", incr_ns, Some(payload));
    let clone_ns = measure(50, || drive_flow(&trace, true));
    report(
        "reassembly_8KB_flow_clone_baseline",
        clone_ns,
        Some(payload),
    );
    let speedup = clone_ns / incr_ns;
    println!(
        "  {:<44} {speedup:>11.1}x",
        "incremental vs clone-per-segment"
    );
    assert!(
        speedup >= 5.0,
        "acceptance: incremental reassembly must be ≥5x the clone-per-segment \
         baseline on near-full flows (got {speedup:.1}x)"
    );

    // And the structural property behind the speedup: the reassembler
    // itself never copies more than 2× the payload (append + one compaction
    // per byte), while the old behaviour cloned the whole window per segment.
    let (r, cloned) = drive_flow(&trace, true);
    let copied = r.stats().bytes_copied();
    println!(
        "  {:<44} {copied:>12} B (≤ {} B bound; old behaviour recopied {cloned} B)",
        "bytes copied for 32 KB payload",
        2 * payload
    );
    assert!(
        copied <= 2 * payload,
        "no per-segment O(window) clone: {copied} > {}",
        2 * payload
    );
}

fn bench_wire_codec() {
    println!("codec");
    let pkt = Packet::tcp(
        SRC,
        DST,
        40000,
        80,
        7,
        9,
        TcpFlags::psh_ack(),
        sample_payload(512),
    );
    let wire = pkt.to_wire();
    let ns = measure(2_000, || black_box(&pkt).to_wire());
    report("packet_encode_552B", ns, Some(wire.len() as u64));
    let ns = measure(2_000, || {
        Packet::from_wire(black_box(&wire)).expect("decode")
    });
    report("packet_decode_552B", ns, Some(wire.len() as u64));
    let query = DnsMessage::query(7, DnsName::parse("mail.example.com").expect("n"), QType::Mx);
    let qwire = query.encode();
    let ns = measure(2_000, || black_box(&query).encode());
    report("dns_encode", ns, None);
    let ns = measure(2_000, || {
        DnsMessage::decode(black_box(&qwire)).expect("decode")
    });
    report("dns_decode", ns, None);
}

fn bench_mvr() {
    println!("mvr");
    let mut rng = SimRng::seed_from_u64(1);
    let stream = PopulationTraffic::generate(&PopulationConfig::default(), &mut rng);
    let bytes: u64 = stream.iter().map(|tp| tp.packet.wire_len() as u64).sum();
    let ns = measure(20, || {
        let mut mvr = Mvr::new(MvrConfig::default());
        for tp in &stream {
            mvr.process(tp.time, &tp.packet);
        }
        mvr
    });
    report(
        &format!("mvr_classify_population_{}pkts", stream.len()),
        ns,
        Some(bytes),
    );
    println!(
        "  {:<44} {:>12.2} Mpkt/s",
        "mvr packet rate",
        stream.len() as f64 / ns * 1e9 / 1e6
    );
}

fn bench_generators() {
    println!("generators");
    let ns = measure(50, || {
        use underradar_spam::{measurement_spam, spam_score};
        let mut total = 0.0;
        for i in 0..100u64 {
            total += spam_score(black_box(&measurement_spam(i, "twitter.com")));
        }
        total
    });
    report("spam_score_100_messages", ns, None);
    let ns = measure(10, || {
        use underradar_workloads::syria::{SyriaLog, SyriaLogConfig};
        let config = SyriaLogConfig::paper_calibrated(2_000);
        let mut rng = SimRng::seed_from_u64(1);
        SyriaLog::generate(black_box(&config), &mut rng).total_requests()
    });
    report("syria_log_2000_users", ns, None);
}

fn bench_simulator() {
    use underradar_core::methods::ddos::DdosProbe;
    use underradar_core::testbed::{Testbed, TestbedConfig};
    println!("simulator");
    let ns = measure(5, || {
        let mut tb = Testbed::build(TestbedConfig::default());
        let target = tb.target("youtube.com").expect("t").web_ip;
        tb.spawn_on_client(
            SimTime::ZERO,
            Box::new(DdosProbe::new(target, "youtube.com", "/", 20)),
        );
        tb.run_secs(30);
        tb.sim.events_processed()
    });
    report("testbed_ddos_20_samples_end_to_end", ns, None);
}

fn main() {
    println!("perf benches (median of 5 batches; hand-rolled harness)");
    bench_engine();
    bench_aho_vs_naive();
    bench_reassembly();
    bench_wire_codec();
    bench_mvr();
    bench_generators();
    bench_simulator();
    println!("done: all acceptance assertions held");
}
