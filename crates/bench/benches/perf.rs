//! Performance benches over the substrate: the engine and simulator costs
//! that determine how large a reproduction run can get.
//!
//! Hand-rolled `Instant` harness (no external bench framework). Run with
//! `cargo bench --bench perf`; pass section names to run a subset (e.g.
//! `cargo bench --bench perf -- telemetry` for the CI smoke). Besides
//! timing, the reassembly section *checks* the two acceptance properties
//! of the zero-clone refactor: bytes copied stay ≤ 2× payload (no
//! per-segment O(window) clone), and incremental throughput on a
//! near-full 8 KB flow beats the old clone-per-segment behaviour by ≥ 5×.
//! The telemetry section checks the observability acceptance bounds:
//! disabled telemetry handles *and* a disabled flight-recorder tracer
//! each keep the 8 KB reassembly hot path within 3% of the
//! uninstrumented throughput, and the `NoopSink` skips all rendering
//! work. Unfiltered runs also snapshot every result row to
//! `BENCH_perf.json` at the workspace root; the committed copy pins the
//! bench schema (`scripts/ci.sh` regenerates and diffs it).

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use underradar_ids::aho::{find_sub, AhoCorasick};
use underradar_ids::dfa::PrefilterDfa;
use underradar_ids::engine::DetectionEngine;
use underradar_ids::parser::{parse_ruleset, VarTable};
use underradar_ids::stream::{
    DirBuffer, DirLimits, OverlapPolicy, ReassemblyStats, StreamReassembler, MAX_DIR_BUFFER,
};
use underradar_netsim::packet::Packet;
use underradar_netsim::rng::SimRng;
use underradar_netsim::time::SimTime;
use underradar_netsim::wire::tcp::TcpFlags;
use underradar_protocols::dns::{DnsMessage, DnsName, QType};
use underradar_surveil::mvr::{Mvr, MvrConfig};
use underradar_workloads::population::{PopulationConfig, PopulationTraffic};

const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 2);
const DST: Ipv4Addr = Ipv4Addr::new(93, 184, 216, 34);

/// Heap-allocation counter wrapped around the system allocator, so the
/// scale section can *assert* (not merely time) that the steady-state
/// packet path performs zero allocations. Only `alloc`/`realloc` count —
/// frees are irrelevant to the bound — and forwarding keeps behaviour
/// identical to the default allocator for every other bench.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Median ns/iteration over 5 timed batches of `iters` calls (plus warmup).
fn measure<R>(iters: u32, mut f: impl FnMut() -> R) -> f64 {
    for _ in 0..(iters / 4).max(1) {
        black_box(f());
    }
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            t.elapsed().as_nanos() as f64 / f64::from(iters)
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

/// Result rows collected for `BENCH_perf.json` (written by `main` when
/// the run is unfiltered, so the snapshot always covers every section).
static RESULTS: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// Print one result line; `bytes` adds a MB/s column. Every row also
/// lands in the [`RESULTS`] collector as a JSON object with sorted keys
/// (`mb_per_s` only for byte-rated benches), so the committed
/// `BENCH_perf.json` schema — the set of quoted strings — is stable
/// across runs even though the timings drift.
fn report(name: &str, ns: f64, bytes: Option<u64>) {
    let tput = bytes
        .map(|b| format!("  {:>9.1} MB/s", b as f64 / ns * 1e9 / 1e6))
        .unwrap_or_default();
    println!("  {name:<44} {:>12.0} ns/iter{tput}", ns);
    let mbs = bytes
        .map(|b| format!("\"mb_per_s\":{:.1},", b as f64 / ns * 1e9 / 1e6))
        .unwrap_or_default();
    RESULTS
        .lock()
        .expect("perf result collector")
        .push(format!("{{{mbs}\"name\":\"{name}\",\"ns\":{ns:.1}}}"));
}

fn sample_payload(len: usize) -> Vec<u8> {
    // Realistic-ish HTTP filler without any rule keyword.
    let base =
        b"GET /articles/weather-report HTTP/1.0\r\nHost: news.example\r\nAccept: text/html\r\n\r\n";
    base.iter().copied().cycle().take(len).collect()
}

fn ruleset(n: usize) -> Vec<underradar_ids::rule::Rule> {
    let mut text = String::new();
    for i in 0..n {
        text.push_str(&format!(
            "alert tcp any any -> any any (msg:\"kw{i}\"; content:\"pattern-{i}-zzz\"; nocase; sid:{};)\n",
            1000 + i
        ));
    }
    parse_ruleset(&text, &VarTable::new()).expect("bench ruleset parses")
}

/// `alerts` content alert rules plus `passes` content pass rules — the
/// mixed shape real policies carry. Pass patterns share no bytes with
/// [`sample_payload`], so on innocuous traffic they cost only prefilter
/// table size, never per-packet evaluations.
fn mixed_ruleset(alerts: usize, passes: usize) -> Vec<underradar_ids::rule::Rule> {
    let mut text = String::new();
    for i in 0..alerts {
        text.push_str(&format!(
            "alert tcp any any -> any any (msg:\"kw{i}\"; content:\"pattern-{i}-zzz\"; nocase; sid:{};)\n",
            1000 + i
        ));
    }
    for i in 0..passes {
        text.push_str(&format!(
            "pass tcp any any -> any any (msg:\"ok{i}\"; content:\"allow-{i}-qqq\"; nocase; sid:{};)\n",
            9000 + i
        ));
    }
    parse_ruleset(&text, &VarTable::new()).expect("bench ruleset parses")
}

fn bench_engine() {
    println!("ids_engine");
    let mut gate_ns = f64::MAX;
    for rules in [10usize, 100, 500] {
        let payload = sample_payload(512);
        let mut engine = DetectionEngine::new(ruleset(rules));
        let pkt = Packet::tcp(SRC, DST, 40000, 80, 1, 1, TcpFlags::psh_ack(), payload);
        // Best of 3 medians for the gated row, so a scheduler hiccup in
        // one batch can't fail the acceptance bound below.
        let mut ns = measure(2_000, || engine.process(SimTime::ZERO, black_box(&pkt)));
        if rules == 500 {
            for _ in 0..2 {
                ns = ns.min(measure(2_000, || {
                    engine.process(SimTime::ZERO, black_box(&pkt))
                }));
            }
            gate_ns = ns;
        }
        report(&format!("process_512B_{rules}rules"), ns, Some(512));
    }
    // The headline acceptance bound of the dense-DFA rewrite: 500 content
    // rules at ≥ 1 GB/s of packet payload (the seed's Aho–Corasick walk
    // managed ~290 MB/s here).
    let gbps = 512.0 / gate_ns;
    println!(
        "  {:<44} {gbps:>11.2} GB/s (≥ 1.0 bound)",
        "process_512B_500rules throughput"
    );
    assert!(
        gbps >= 1.0,
        "acceptance: the engine must sustain ≥ 1 GB/s over 500 content \
         rules on 512 B packets (got {gbps:.2} GB/s)"
    );

    // Pass-rule scaling: 50 content pass rules ride the same prefilter
    // scan, so on innocuous traffic they must not scale per-packet cost.
    // Both engines are sampled back-to-back per round and the bound is
    // the best *paired* ratio, as elsewhere, to cancel clock drift.
    let payload = sample_payload(512);
    let pkt = Packet::tcp(SRC, DST, 40000, 80, 1, 1, TcpFlags::psh_ack(), payload);
    let mut alerts_only = DetectionEngine::new(mixed_ruleset(500, 0));
    let mut with_passes = DetectionEngine::new(mixed_ruleset(500, 50));
    let mut base_ns = f64::MAX;
    let mut pass_ns = f64::MAX;
    let mut ratio = f64::MAX;
    for _ in 0..3 {
        let b = measure(2_000, || {
            alerts_only.process(SimTime::ZERO, black_box(&pkt))
        });
        let p = measure(2_000, || {
            with_passes.process(SimTime::ZERO, black_box(&pkt))
        });
        base_ns = base_ns.min(b);
        pass_ns = pass_ns.min(p);
        ratio = ratio.min(p / b);
    }
    report("process_512B_500alert_0pass", base_ns, Some(512));
    report("process_512B_500alert_50pass", pass_ns, Some(512));
    let overhead = ratio - 1.0;
    println!(
        "  {:<44} {:>11.2}%",
        "50-pass-rule overhead (innocuous traffic)",
        overhead * 100.0
    );
    assert!(
        overhead <= 0.15,
        "acceptance: 50 prefiltered pass rules must not scale per-packet \
         cost on innocuous traffic (got {:.2}% over alert-only)",
        overhead * 100.0
    );
    assert_eq!(
        with_passes.stats().pass_evaluations,
        0,
        "no pass rule may reach evaluation without a prefilter hit"
    );
}

fn bench_aho_vs_naive() {
    println!("multipattern");
    let patterns: Vec<(Vec<u8>, bool)> = (0..200)
        .map(|i| (format!("needle-{i}-xyz").into_bytes(), false))
        .collect();
    let hay = sample_payload(4096);
    let ac = AhoCorasick::new(&patterns);
    let ns = measure(500, || ac.matching_patterns(black_box(&hay)));
    report("aho_corasick_200pat_4KB", ns, Some(hay.len() as u64));
    // The dense byte-classed DFA the engine actually runs: same automaton,
    // flattened rows plus a root-row skip loop instead of fail-link chasing.
    let dfa = PrefilterDfa::new(&patterns.iter().map(|(p, _)| p.clone()).collect::<Vec<_>>());
    let ns = measure(2_000, || {
        let mut hits = 0usize;
        dfa.scan(black_box(&hay), |_, _| hits += 1);
        hits
    });
    report("dense_dfa_200pat_4KB", ns, Some(hay.len() as u64));
    let ns = measure(20, || {
        let mut hits = 0usize;
        for (p, nocase) in &patterns {
            if find_sub(black_box(&hay), p, *nocase, 0).is_some() {
                hits += 1;
            }
        }
        hits
    });
    report("naive_200pat_4KB", ns, Some(hay.len() as u64));
}

/// A prebuilt in-order packet trace for one flow: handshake + `segs`
/// 64-byte data segments. Built outside the timed region so the benches
/// below measure reassembly, not packet construction.
fn flow_trace(segs: usize) -> Vec<Packet> {
    let mut trace = vec![
        Packet::tcp(SRC, DST, 4000, 80, 100, 0, TcpFlags::syn(), vec![]),
        Packet::tcp(DST, SRC, 80, 4000, 500, 101, TcpFlags::syn_ack(), vec![]),
        Packet::tcp(SRC, DST, 4000, 80, 101, 501, TcpFlags::ack(), vec![]),
    ];
    let mut seq = 101u32;
    for _ in 0..segs {
        trace.push(Packet::tcp(
            SRC,
            DST,
            4000,
            80,
            seq,
            501,
            TcpFlags::psh_ack(),
            vec![0x61; 64],
        ));
        seq = seq.wrapping_add(64);
    }
    trace
}

/// Run a trace through a fresh reassembler. `clone_per_segment`
/// re-materialises the full direction window after each segment — the
/// seed's old behaviour, where every `FlowContext` carried an owned copy
/// of the stream. Returns the reassembler and the bytes the clones copied.
fn drive_flow(trace: &[Packet], clone_per_segment: bool) -> (StreamReassembler, u64) {
    let mut r = StreamReassembler::new();
    let mut cloned = 0u64;
    for pkt in trace {
        if let Some(ctx) = r.process(pkt) {
            if clone_per_segment && ctx.appended {
                let copy = r.stream_of(&ctx.key, ctx.direction).to_vec();
                cloned += copy.len() as u64;
                black_box(copy);
            }
        }
    }
    (r, cloned)
}

fn bench_reassembly() {
    println!("stream_reassembly");
    let short = flow_trace(100);
    let ns = measure(2_000, || drive_flow(&short, false));
    report("stream_reassembly_100seg", ns, Some(100 * 64));

    // Near-full 8 KB flow: 512 × 64 B = 32 KB through the 8 KB window, so
    // most segments land on a full window — the worst case for the seed's
    // clone-per-segment contexts and the steady state for long flows.
    const SEGS: usize = 512;
    let payload = (SEGS * 64) as u64;
    let trace = flow_trace(SEGS);
    let incr_ns = measure(500, || drive_flow(&trace, false));
    report("reassembly_8KB_flow_incremental", incr_ns, Some(payload));
    let clone_ns = measure(50, || drive_flow(&trace, true));
    report(
        "reassembly_8KB_flow_clone_baseline",
        clone_ns,
        Some(payload),
    );
    let speedup = clone_ns / incr_ns;
    println!(
        "  {:<44} {speedup:>11.1}x",
        "incremental vs clone-per-segment"
    );
    assert!(
        speedup >= 5.0,
        "acceptance: incremental reassembly must be ≥5x the clone-per-segment \
         baseline on near-full flows (got {speedup:.1}x)"
    );

    // And the structural property behind the speedup: the reassembler
    // itself never copies more than 2× the payload (append + one compaction
    // per byte), while the old behaviour cloned the whole window per segment.
    let (r, cloned) = drive_flow(&trace, true);
    let copied = r.stats().bytes_copied();
    println!(
        "  {:<44} {copied:>12} B (≤ {} B bound; old behaviour recopied {cloned} B)",
        "bytes copied for 32 KB payload",
        2 * payload
    );
    assert!(
        copied <= 2 * payload,
        "no per-segment O(window) clone: {copied} > {}",
        2 * payload
    );
}

/// The pre-hold-back `DirBuffer`: exact-sequence append only, every
/// out-of-order or overlapping segment silently dropped. Replicated here
/// (window compaction included) as the baseline the hold-back upgrade is
/// bounded against on the in-order fast path.
#[derive(Default)]
struct ExactSeqBuffer {
    next_seq: Option<u32>,
    data: Vec<u8>,
    start: usize,
}

impl ExactSeqBuffer {
    // Verbatim replica of the pre-hold-back `DirBuffer::push`.
    fn push(&mut self, seq: u32, payload: &[u8], stats: &mut ReassemblyStats) -> bool {
        if payload.is_empty() {
            return false;
        }
        match self.next_seq {
            Some(expected) if seq == expected => {
                self.next_seq = Some(expected.wrapping_add(payload.len() as u32));
            }
            Some(_) => return false,
            None => {
                self.next_seq = Some(seq.wrapping_add(payload.len() as u32));
            }
        }
        self.data.extend_from_slice(payload);
        stats.bytes_appended += payload.len() as u64;
        let live = self.data.len() - self.start;
        if live > MAX_DIR_BUFFER {
            self.start += live - MAX_DIR_BUFFER;
        }
        if self.start >= MAX_DIR_BUFFER {
            stats.bytes_compacted += (self.data.len() - self.start) as u64;
            self.data.drain(..self.start);
            self.start = 0;
        }
        true
    }
}

/// The hold-back queue must be near-free on flows that never reorder: an
/// in-order flow of MSS-sized segments through the upgraded `DirBuffer`
/// stays within 5% of the old exact-sequence-only buffer. Small (64 B)
/// segments are timed for the record — at ~4 ns/push every retired
/// instruction is >1%, so no bound is asserted there. A reordered
/// schedule is also timed (the old buffer silently *lost* those bytes;
/// the new one reconstructs the stream).
fn bench_reassembly_holdback() {
    println!("reassembly_holdback");
    const SEGS: usize = 512;
    const MSS: usize = 1448;
    let best = |f: &mut dyn FnMut() -> f64| (0..3).map(|_| f()).fold(f64::MAX, f64::min);
    let schedule = |seg_len: usize| -> Vec<(u32, Vec<u8>)> {
        (0..SEGS)
            .map(|i| {
                (
                    101u32.wrapping_add((i * seg_len) as u32),
                    vec![0x61; seg_len],
                )
            })
            .collect()
    };

    let mss_payload = (SEGS * MSS) as u64;
    let in_order_mss = schedule(MSS);
    // Interleave the two sides and assert on the best *paired* ratio
    // (new vs old sampled back-to-back within one round), so CPU
    // frequency drift across the run biases both equally instead of
    // inflating whichever block ran under the hotter clock.
    let mut old_ns = f64::MAX;
    let mut new_ns = f64::MAX;
    let mut ratio = f64::MAX;
    for _ in 0..3 {
        let o = measure(1_000, || {
            let mut buf = ExactSeqBuffer::default();
            let mut stats = ReassemblyStats::default();
            for (seq, p) in &in_order_mss {
                buf.push(*seq, p, &mut stats);
            }
            buf.data.len()
        });
        let n = measure(1_000, || {
            let mut buf = DirBuffer::default();
            let mut stats = ReassemblyStats::default();
            for (seq, p) in &in_order_mss {
                buf.push(
                    *seq,
                    p,
                    DirLimits::default(),
                    OverlapPolicy::KeepFirst,
                    &mut stats,
                );
            }
            buf.view().len()
        });
        old_ns = old_ns.min(o);
        new_ns = new_ns.min(n);
        ratio = ratio.min(n / o);
    }
    report("in_order_mss_exact_seq_baseline", old_ns, Some(mss_payload));
    report("in_order_mss_holdback_buffer", new_ns, Some(mss_payload));
    let overhead = ratio - 1.0;
    println!(
        "  {:<44} {:>11.2}%",
        "hold-back overhead (in-order fast path)",
        overhead * 100.0
    );
    assert!(
        overhead <= 0.05,
        "acceptance: the hold-back queue must stay within 5% of the \
         exact-sequence baseline on in-order MSS-sized flows (got {:.2}%)",
        overhead * 100.0
    );

    // Small segments, for the record (no bound: single-instruction noise).
    let in_order = schedule(64);
    let small_payload = (SEGS * 64) as u64;
    let small_old = best(&mut || {
        measure(2_000, || {
            let mut buf = ExactSeqBuffer::default();
            let mut stats = ReassemblyStats::default();
            for (seq, p) in &in_order {
                buf.push(*seq, p, &mut stats);
            }
            buf.data.len()
        })
    });
    report(
        "in_order_64B_exact_seq_baseline",
        small_old,
        Some(small_payload),
    );
    let small_new = best(&mut || {
        measure(2_000, || {
            let mut buf = DirBuffer::default();
            let mut stats = ReassemblyStats::default();
            for (seq, p) in &in_order {
                buf.push(
                    *seq,
                    p,
                    DirLimits::default(),
                    OverlapPolicy::KeepFirst,
                    &mut stats,
                );
            }
            buf.view().len()
        })
    });
    report(
        "in_order_64B_holdback_buffer",
        small_new,
        Some(small_payload),
    );

    // Adjacent-pair swapped schedule (first segment kept in place so the
    // buffer anchors at the stream start): every later segment is one
    // slot out of order, the worst sustained load for the hold-back scan.
    let mut swapped = in_order.clone();
    for pair in swapped[1..].chunks_mut(2) {
        if pair.len() == 2 {
            pair.swap(0, 1);
        }
    }
    let swapped_ns = measure(2_000, || {
        let mut buf = DirBuffer::default();
        let mut stats = ReassemblyStats::default();
        let mut total = 0usize;
        for (seq, p) in &swapped {
            total += buf.push(
                *seq,
                p,
                DirLimits::default(),
                OverlapPolicy::KeepFirst,
                &mut stats,
            );
        }
        total
    });
    report(
        "swapped_pairs_32KB_holdback_buffer",
        swapped_ns,
        Some(small_payload),
    );
    let mut stats = ReassemblyStats::default();
    let mut buf = DirBuffer::default();
    let mut total = 0usize;
    for (seq, p) in &swapped {
        total += buf.push(
            *seq,
            p,
            DirLimits::default(),
            OverlapPolicy::KeepFirst,
            &mut stats,
        );
    }
    assert_eq!(
        total,
        SEGS * 64,
        "hold-back reassembles the swapped schedule completely"
    );
    assert_eq!(stats.ooo_dropped, 0, "no drops within the hold-back bound");
}

/// The endpoint-model upgrade threaded an overlap policy through the
/// monitor's `DirBuffer::push` so monitor variants can mirror endpoint
/// reassembly semantics (E13's divergence matrix). The knob must be free
/// where it is not exercised: on in-order traffic the policy is never
/// consulted, so keep-last must price identically to keep-first on both
/// hot paths E13/E14 lean on — the in-order 8 KB reassembly path and the
/// batched steady-state engine path. Paired best-of ratios, 5% bound.
fn bench_overlap_policy_guard() {
    use underradar_ids::stream::ReassemblyConfig;
    println!("overlap_policy_guard");
    const SEGS: usize = 512;
    const MSS: usize = 1448;
    let in_order: Vec<(u32, Vec<u8>)> = (0..SEGS)
        .map(|i| (101u32.wrapping_add((i * MSS) as u32), vec![0x61; MSS]))
        .collect();
    let mss_payload = (SEGS * MSS) as u64;
    let buffer_side = |policy: OverlapPolicy| {
        measure(1_000, || {
            let mut buf = DirBuffer::default();
            let mut stats = ReassemblyStats::default();
            for (seq, p) in &in_order {
                buf.push(*seq, p, DirLimits::default(), policy, &mut stats);
            }
            buf.view().len()
        })
    };
    let mut first_ns = f64::MAX;
    let mut last_ns = f64::MAX;
    let mut ratio = f64::MAX;
    for _ in 0..3 {
        let f = buffer_side(OverlapPolicy::KeepFirst);
        let l = buffer_side(OverlapPolicy::KeepLast);
        first_ns = first_ns.min(f);
        last_ns = last_ns.min(l);
        ratio = ratio.min(l / f);
    }
    report("in_order_mss_keep_first", first_ns, Some(mss_payload));
    report("in_order_mss_keep_last", last_ns, Some(mss_payload));
    let overhead = ratio - 1.0;
    println!(
        "  {:<44} {:>11.2}%",
        "keep-last overhead (in-order 8 KB path)",
        overhead * 100.0
    );
    assert!(
        overhead <= 0.05,
        "acceptance: the overlap-policy knob must stay within 5% of \
         keep-first on the in-order reassembly path (got {:.2}%)",
        overhead * 100.0
    );

    // The batched steady-state engine path (the E14 shape): same fleet,
    // same rules, only the monitor's overlap policy differs. Fresh
    // engines per sample so the hot rounds are true appends — re-running
    // a trace would measure the retransmit path, where keep-last pays an
    // inherent (intended) rewrite memcpy rather than a regression.
    const FLOWS: usize = 512;
    const WARM: usize = 4;
    const HOT: usize = 16;
    let rounds = fleet_rounds(FLOWS, WARM + HOT, &sample_payload(64));
    let hot_packets = (FLOWS * HOT) as f64;
    let engine_side = |overlap: OverlapPolicy| -> f64 {
        let mut best = f64::MAX;
        for _ in 0..3 {
            let mut engine = DetectionEngine::with_reassembly(
                ruleset(10),
                ReassemblyConfig {
                    overlap,
                    ..ReassemblyConfig::default()
                },
            );
            let mut out = Vec::with_capacity(64);
            let now = SimTime::ZERO;
            for round in &rounds[..3 + WARM] {
                engine.process_batch(now, round, &mut out);
                out.clear();
            }
            let t0 = Instant::now();
            for round in &rounds[3 + WARM..] {
                engine.process_batch(now, round, &mut out);
                out.clear();
            }
            best = best.min(t0.elapsed().as_nanos() as f64 / hot_packets);
        }
        best
    };
    let mut first_ns = f64::MAX;
    let mut last_ns = f64::MAX;
    let mut ratio = f64::MAX;
    for _ in 0..3 {
        let f = engine_side(OverlapPolicy::KeepFirst);
        let l = engine_side(OverlapPolicy::KeepLast);
        first_ns = first_ns.min(f);
        last_ns = last_ns.min(l);
        ratio = ratio.min(l / f);
    }
    report("batched_64B_keep_first", first_ns, Some(64));
    report("batched_64B_keep_last", last_ns, Some(64));
    let overhead = ratio - 1.0;
    println!(
        "  {:<44} {:>11.2}%",
        "keep-last overhead (batched engine path)",
        overhead * 100.0
    );
    assert!(
        overhead <= 0.05,
        "acceptance: the overlap-policy knob must stay within 5% of \
         keep-first on the batched steady-state path (got {:.2}%)",
        overhead * 100.0
    );
}

fn bench_wire_codec() {
    println!("codec");
    let pkt = Packet::tcp(
        SRC,
        DST,
        40000,
        80,
        7,
        9,
        TcpFlags::psh_ack(),
        sample_payload(512),
    );
    let wire = pkt.to_wire();
    let ns = measure(2_000, || black_box(&pkt).to_wire());
    report("packet_encode_552B", ns, Some(wire.len() as u64));
    let ns = measure(2_000, || {
        Packet::from_wire(black_box(&wire)).expect("decode")
    });
    report("packet_decode_552B", ns, Some(wire.len() as u64));
    let query = DnsMessage::query(7, DnsName::parse("mail.example.com").expect("n"), QType::Mx);
    let qwire = query.encode();
    let ns = measure(2_000, || black_box(&query).encode());
    report("dns_encode", ns, None);
    let ns = measure(2_000, || {
        DnsMessage::decode(black_box(&qwire)).expect("decode")
    });
    report("dns_decode", ns, None);
}

fn bench_mvr() {
    println!("mvr");
    let mut rng = SimRng::seed_from_u64(1);
    let stream = PopulationTraffic::generate(&PopulationConfig::default(), &mut rng);
    let bytes: u64 = stream.iter().map(|tp| tp.packet.wire_len() as u64).sum();
    let ns = measure(20, || {
        let mut mvr = Mvr::new(MvrConfig::default());
        for tp in &stream {
            mvr.process(tp.time, &tp.packet);
        }
        mvr
    });
    report(
        &format!("mvr_classify_population_{}pkts", stream.len()),
        ns,
        Some(bytes),
    );
    println!(
        "  {:<44} {:>12.2} Mpkt/s",
        "mvr packet rate",
        stream.len() as f64 / ns * 1e9 / 1e6
    );
}

fn bench_generators() {
    println!("generators");
    let ns = measure(50, || {
        use underradar_spam::{measurement_spam, spam_score};
        let mut total = 0.0;
        for i in 0..100u64 {
            total += spam_score(black_box(&measurement_spam(i, "twitter.com")));
        }
        total
    });
    report("spam_score_100_messages", ns, None);
    let ns = measure(10, || {
        use underradar_workloads::syria::{SyriaLog, SyriaLogConfig};
        let config = SyriaLogConfig::paper_calibrated(2_000);
        let mut rng = SimRng::seed_from_u64(1);
        SyriaLog::generate(black_box(&config), &mut rng).total_requests()
    });
    report("syria_log_2000_users", ns, None);
}

fn bench_simulator() {
    use underradar_core::methods::ddos::DdosProbe;
    use underradar_core::testbed::{Testbed, TestbedConfig};
    println!("simulator");
    let ns = measure(5, || {
        let mut tb = Testbed::build(TestbedConfig::default());
        let target = tb.target("youtube.com").expect("t").web_ip;
        tb.spawn_on_client(
            SimTime::ZERO,
            Box::new(DdosProbe::new(target, "youtube.com", "/", 20)),
        );
        tb.run_secs(30);
        tb.sim.events_processed()
    });
    report("testbed_ddos_20_samples_end_to_end", ns, None);
}

/// Campaign engine substrate: the per-policy `TestbedTemplate` cache.
/// The engine prepares each policy column once (zone build + IDS rule
/// parse) and re-instantiates per trial; the naive alternative re-prepares
/// for every trial. The assertion pins the caching win the campaign
/// engine's throughput rests on.
fn bench_campaign() {
    use underradar_campaign::{engine, CampaignSpec, MethodKind, NamedPolicy};
    use underradar_censor::CensorPolicy;
    use underradar_core::testbed::{TargetSite, TestbedConfig, TestbedTemplate};
    println!("campaign");

    let targets: Vec<TargetSite> = ["twitter.com", "youtube.com", "bbc.com", "facebook.com"]
        .iter()
        .enumerate()
        .map(|(i, d)| TargetSite::numbered(d, i as u8))
        .collect();
    // Paper-scale policy: every target blocked plus a keyword list, so
    // the prepared ruleset has the size a real campaign column carries.
    let mut policy = CensorPolicy::new();
    for t in &targets {
        policy = policy.block_domain(&t.domain);
    }
    for kw in ["falun", "tibet", "vpn", "proxy", "tunnel", "circumvent"] {
        policy = policy.block_keyword(kw);
    }
    let config = || TestbedConfig {
        seed: 0,
        policy: policy.clone(),
        targets: targets.clone(),
        ..TestbedConfig::default()
    };
    let template = TestbedTemplate::prepare(config());
    let mut seed = 0u64;
    let cached_ns = measure(200, || {
        seed = seed.wrapping_add(1);
        black_box(template.instantiate(seed))
    });
    report("trial_setup_cached_template", cached_ns, None);
    let naive_ns = measure(50, || {
        seed = seed.wrapping_add(1);
        black_box(TestbedTemplate::prepare(config()).instantiate(seed))
    });
    report("trial_setup_prepare_per_trial", naive_ns, None);
    let speedup = naive_ns / cached_ns;
    println!("  {:<44} {speedup:>11.1}x", "cached vs prepare-per-trial");
    assert!(
        speedup >= 1.1,
        "acceptance: per-policy template caching must make trial setup \
         measurably (≥1.1x) faster than re-preparing per trial (got {speedup:.2}x)"
    );

    // End-to-end engine throughput, for the record: a 16-trial scan
    // campaign over two policies, sequential vs 4 workers.
    let spec = CampaignSpec::new("bench", 1)
        .targets(["twitter.com", "bbc.com"])
        .method(MethodKind::Scan)
        .policy(NamedPolicy::new("control", CensorPolicy::new()))
        .policy(NamedPolicy::new("keyword", policy.clone()))
        .trials_per_cell(4)
        .run_secs(30);
    let tel = underradar_telemetry::Telemetry::disabled();
    let ns = measure(3, || black_box(engine::run(&spec, 1, &tel)));
    report("engine_16_scan_trials_sequential", ns, None);
    let ns = measure(3, || black_box(engine::run(&spec, 4, &tel)));
    report("engine_16_scan_trials_4_workers", ns, None);
}

/// The durable run service: work stealing must beat static partitioning
/// on a skewed matrix (heavy ddos cells pinned to the first workers by
/// contiguous blocks, cheap scan cells everywhere else), and the
/// checkpoint journal must be near-free on the 512-trial paper matrix.
fn bench_runner() {
    use underradar_bench::experiments::campaign::paper_campaign;
    use underradar_campaign::{engine, steal, CampaignSpec, MethodKind, NamedPolicy};
    use underradar_censor::CensorPolicy;
    use underradar_runner::{run_service, NullSink, RunConfig};
    use underradar_telemetry::Telemetry;
    println!("runner");

    // Skewed matrix: trial order is method-major, so with 4 static
    // workers the 8 ddos trials land entirely on workers 0–1 while 2–3
    // finish their cheap scans and idle. Stealing levels it. Warm-up is
    // on, as in the paper campaign: each ddos trial carries its 60-sample
    // classification flood, which is exactly the heavy-cell shape the
    // scheduler has to absorb.
    //
    // The metric is **makespan** — the maximum per-worker sum of trial
    // costs under the assignment each scheduler actually produced — not
    // raw wall clock. On a box with >= `workers` cores the two coincide,
    // but CI containers often pin one core, where threads timeshare and
    // wall clock degenerates to total-work for *any* partitioning. The
    // assignment is recorded live from real scheduler runs (thread id per
    // trial); each trial is priced by a sequentially measured cost model
    // so timesharing noise cannot leak into the accounting.
    let spec = CampaignSpec::new("skewed", 3)
        .target("twitter.com")
        .methods([MethodKind::Ddos, MethodKind::Scan])
        .policy(NamedPolicy::new("control", CensorPolicy::new()))
        .trials_per_cell(8)
        .warmup(true)
        .run_secs(30);
    let preps = engine::prepare(&spec);
    let trials = spec.expand();
    let tel = Telemetry::disabled();
    let cfg = engine::ScopeConfig::of(&tel);
    let trial = |i: usize| {
        let t = &trials[i];
        engine::run_trial(&spec, &preps[t.policy_idx], t, cfg)
    };
    let workers = 4;
    // Per-trial cost model: best-of-3 sequential timing per index.
    let costs: Vec<f64> = (0..trials.len())
        .map(|i| {
            (0..3)
                .map(|_| {
                    let t0 = std::time::Instant::now();
                    std::hint::black_box(trial(i));
                    t0.elapsed().as_nanos() as f64
                })
                .fold(f64::MAX, f64::min)
        })
        .collect();
    let makespan = |assignment: &[(std::thread::ThreadId, usize)]| -> f64 {
        let mut per: std::collections::HashMap<std::thread::ThreadId, f64> =
            std::collections::HashMap::new();
        for &(tid, i) in assignment {
            *per.entry(tid).or_insert(0.0) += costs[i];
        }
        per.values().copied().fold(0.0, f64::max)
    };
    let attributed = |stealing: bool| -> f64 {
        let log: std::sync::Mutex<Vec<(std::thread::ThreadId, usize)>> =
            std::sync::Mutex::new(Vec::with_capacity(trials.len()));
        let run = |i: usize| {
            log.lock()
                .expect("assignment log")
                .push((std::thread::current().id(), i));
            std::hint::black_box(trial(i));
        };
        if stealing {
            steal::run_chunked(trials.len(), workers, run);
        } else {
            steal::run_static(trials.len(), workers, run);
        }
        makespan(&log.into_inner().expect("assignment log"))
    };
    // Paired best-of-3 ratio, as elsewhere, to cancel drift: the static
    // makespan is fixed by construction, while the stealing one depends
    // on which chunks migrated before each straggler drained.
    let mut static_ns = f64::MAX;
    let mut steal_ns = f64::MAX;
    let mut speedup = 0.0f64;
    for _ in 0..3 {
        let s = attributed(false);
        let c = attributed(true);
        static_ns = static_ns.min(s);
        steal_ns = steal_ns.min(c);
        speedup = speedup.max(s / c);
    }
    report("skewed_16_static_makespan_4_workers", static_ns, None);
    report("skewed_16_stealing_makespan_4_workers", steal_ns, None);
    println!(
        "  {:<44} {speedup:>11.2}x",
        "stealing vs static makespan (skewed)"
    );
    assert!(
        speedup >= 1.2,
        "acceptance: work stealing must beat static partitioning by ≥1.2x \
         on a skewed matrix (got {speedup:.2}x)"
    );

    // Checkpointing overhead on the full 512-trial paper matrix: the
    // journaled service run must stay within 5% of the unjournaled one.
    let spec = paper_campaign(4);
    let path = std::env::temp_dir().join(format!("underradar-perf-journal-{}", std::process::id()));
    let plain_cfg = RunConfig::new(4);
    let _ = std::fs::remove_file(&path);
    let mut plain_ns = f64::MAX;
    let mut ckpt_ns = f64::MAX;
    let mut ratio = f64::MAX;
    for _ in 0..3 {
        let p = measure(1, || {
            run_service(&spec, &plain_cfg, &tel, &mut NullSink).expect("service run")
        });
        let c = measure(1, || {
            // A fresh journal per run: reopening a finished journal would
            // resume (and execute nothing).
            let _ = std::fs::remove_file(&path);
            let cfg = RunConfig::new(4).checkpoint(path.clone());
            run_service(&spec, &cfg, &tel, &mut NullSink).expect("service run")
        });
        plain_ns = plain_ns.min(p);
        ckpt_ns = ckpt_ns.min(c);
        ratio = ratio.min(c / p);
    }
    let _ = std::fs::remove_file(&path);
    report("service_512_trials_no_journal", plain_ns, None);
    report("service_512_trials_journaled", ckpt_ns, None);
    let overhead = ratio - 1.0;
    println!(
        "  {:<44} {:>11.2}%",
        "checkpoint overhead (512-trial matrix)",
        overhead * 100.0
    );
    assert!(
        overhead <= 0.05,
        "acceptance: checkpointing must stay within 5% of the unjournaled \
         service run on the 512-trial matrix (got {:.2}%)",
        overhead * 100.0
    );

    // Progress-snapshot overhead on a 30k-trial synthetic service run:
    // the `--progress` emitter (committer-side recv_timeout poll, stderr
    // JSONL, worker busy accounting) must stay within 3% of the silent
    // run. Single-run paired best-of-3 — each side is a full 30k-trial
    // campaign, so `measure`'s batch repetition would cost minutes for no
    // extra signal.
    use underradar_bench::experiments::campaign::synthetic_campaign;
    use underradar_runner::ProgressConfig;
    let spec = synthetic_campaign(30_000);
    let once = |progress: bool| -> (f64, u64) {
        let mut cfg = RunConfig::new(4);
        if progress {
            cfg = cfg.progress(ProgressConfig {
                every_trials: 10_000,
                every_ms: 5_000,
            });
        }
        let t0 = Instant::now();
        let outcome = run_service(&spec, &cfg, &tel, &mut NullSink).expect("service run");
        (t0.elapsed().as_nanos() as f64, outcome.profile.snapshots)
    };
    let _ = once(false); // warmup
    let mut silent_ns = f64::MAX;
    let mut progress_ns = f64::MAX;
    let mut ratio = f64::MAX;
    let mut snapshots = 0u64;
    for _ in 0..3 {
        let (s, _) = once(false);
        let (p, snaps) = once(true);
        silent_ns = silent_ns.min(s);
        progress_ns = progress_ns.min(p);
        ratio = ratio.min(p / s);
        snapshots = snapshots.max(snaps);
    }
    report("service_30k_synthetic_silent", silent_ns, None);
    report("service_30k_synthetic_progress", progress_ns, None);
    let overhead = ratio - 1.0;
    println!(
        "  {:<44} {:>11.2}%",
        "progress overhead (30k-trial service run)",
        overhead * 100.0
    );
    assert!(
        snapshots >= 3,
        "acceptance: progress snapshots must stream during the run (got {snapshots})"
    );
    assert!(
        overhead <= 0.03,
        "acceptance: progress snapshots must stay within 3% of the silent \
         service run on the 30k-trial synthetic matrix (got {:.2}%)",
        overhead * 100.0
    );
}

/// The reassembly hot loop with telemetry handles on the per-segment
/// path — the instrumentation shape subsystem code uses (pre-resolved
/// handles, one branchy call per segment).
fn drive_flow_telemetry(trace: &[Packet], tel: &underradar_telemetry::Telemetry) -> u64 {
    let segments = tel.counter("bench.reassembly.segments");
    let bytes = tel.counter("bench.reassembly.bytes");
    let mut r = StreamReassembler::new();
    let mut appended = 0u64;
    for pkt in trace {
        if let Some(ctx) = r.process(pkt) {
            if ctx.appended {
                segments.incr();
                bytes.add(pkt.body.payload().len() as u64);
                appended += 1;
            }
        }
    }
    appended
}

/// The 8 KB reassembly loop with a flight-recorder handle attached — the
/// shape every pipeline stage runs in under `--trace`. With a dead handle
/// the only added work is one branch per segment; a live handle also pays
/// the per-packet clock push and the stats-delta salience check.
fn drive_flow_traced(trace: &[Packet], tracer: &underradar_telemetry::Tracer) -> u64 {
    let mut r = StreamReassembler::new();
    r.set_tracer(tracer.clone());
    let live = tracer.is_live();
    let mut appended = 0u64;
    let mut now = 0u64;
    for pkt in trace {
        // Clock bookkeeping only when live — the disabled steady state
        // pays exactly one predicted branch per packet, like real hosts.
        if live {
            r.set_now(now);
            now += 1;
        }
        if let Some(ctx) = r.process(pkt) {
            if ctx.appended {
                appended += 1;
            }
        }
    }
    appended
}

fn bench_telemetry() {
    use underradar_telemetry::{FieldValue, MemorySink, Telemetry};
    println!("telemetry");

    // Raw per-op cost of the pre-resolved handles.
    let tel = Telemetry::enabled();
    let live = tel.counter("bench.ops");
    let ns = measure(1_000_000, || live.incr());
    report("counter_incr_enabled", ns, None);
    let dead = underradar_telemetry::Counter::disabled();
    let ns = measure(1_000_000, || dead.incr());
    report("counter_incr_disabled", ns, None);

    // NoopSink (inactive) must skip event rendering entirely: recording an
    // event through it should cost well under half of rendering+buffering
    // the same event through an active sink.
    let fields: [(&str, FieldValue); 2] = [
        ("kind", FieldValue::from("keyword_rst")),
        ("client", FieldValue::from("10.0.1.2")),
    ];
    let noop_tel = Telemetry::enabled(); // NoopSink, inactive
    let noop_ns = measure(100_000, || noop_tel.event(7, "censor.action", &fields));
    report("event_noop_sink", noop_ns, None);
    let sink_tel = Telemetry::with_sink(Box::new(MemorySink::new()));
    let sink_ns = measure(100_000, || sink_tel.event(7, "censor.action", &fields));
    report("event_memory_sink", sink_ns, None);
    assert!(
        noop_ns < sink_ns,
        "acceptance: NoopSink must skip rendering (noop {noop_ns:.0} ns ≥ \
         active-sink {sink_ns:.0} ns)"
    );

    // The headline bound: with *disabled* telemetry handles on the
    // per-segment path, 8 KB flow reassembly stays within 3% of the
    // uninstrumented loop. The flight recorder holds the same bound: a
    // reassembler carrying a dead tracer — what every run outside
    // `--trace` resolves, the attached-handle steady state — stays within
    // 3% of the bare loop too. All three loops are sampled in alternating
    // rounds (best of 3 per side) so CPU frequency drift across the run
    // biases them equally instead of inflating the later blocks.
    const SEGS: usize = 512;
    let trace = flow_trace(SEGS);
    let disabled = Telemetry::disabled();
    let dead_tracer = Telemetry::enabled().tracer();
    assert!(
        !dead_tracer.is_live(),
        "telemetry without with_trace must resolve a dead tracer"
    );
    let mut plain_ns = f64::MAX;
    let mut instr_ns = f64::MAX;
    let mut dead_trace_ns = f64::MAX;
    // Assert on the best *paired* ratio — instrumented vs plain sampled
    // back-to-back within one round — so the bound measures the
    // instrumentation, not clock drift between separately-timed blocks.
    let mut tel_ratio = f64::MAX;
    let mut trace_ratio = f64::MAX;
    for _ in 0..5 {
        let p = measure(500, || drive_flow(&trace, false));
        let i = measure(500, || drive_flow_telemetry(&trace, &disabled));
        let t = measure(500, || drive_flow_traced(&trace, &dead_tracer));
        plain_ns = plain_ns.min(p);
        instr_ns = instr_ns.min(i);
        dead_trace_ns = dead_trace_ns.min(t);
        tel_ratio = tel_ratio.min(i / p);
        trace_ratio = trace_ratio.min(t / p);
    }
    let overhead = tel_ratio - 1.0;
    report("reassembly_8KB_plain", plain_ns, Some((SEGS * 64) as u64));
    report(
        "reassembly_8KB_disabled_telemetry",
        instr_ns,
        Some((SEGS * 64) as u64),
    );
    println!(
        "  {:<44} {:>11.2}%",
        "disabled-telemetry overhead",
        overhead * 100.0
    );
    assert!(
        overhead <= 0.03,
        "acceptance: disabled telemetry must stay within 3% of the \
         uninstrumented 8 KB reassembly throughput (got {:.2}%)",
        overhead * 100.0
    );

    // Live telemetry on the same path, for the record (no bound — enabled
    // cost is allowed, it just must be opt-in).
    let live_tel = Telemetry::enabled();
    let live_ns = measure(500, || drive_flow_telemetry(&trace, &live_tel));
    report(
        "reassembly_8KB_enabled_telemetry",
        live_ns,
        Some((SEGS * 64) as u64),
    );

    let trace_overhead = trace_ratio - 1.0;
    report(
        "reassembly_8KB_disabled_trace",
        dead_trace_ns,
        Some((SEGS * 64) as u64),
    );
    println!(
        "  {:<44} {:>11.2}%",
        "disabled-trace overhead",
        trace_overhead * 100.0
    );
    assert!(
        trace_overhead <= 0.03,
        "acceptance: a disabled flight-recorder handle must stay within 3% \
         of the uninstrumented 8 KB reassembly throughput (got {:.2}%)",
        trace_overhead * 100.0
    );

    // Live recorder on the same in-order (record-free) flow, for the
    // record: the salience filter pays a stats-delta check per segment
    // but appends nothing, so the ring stays empty.
    let live_tracer = Telemetry::with_trace(underradar_telemetry::DEFAULT_TRACE_CAPACITY).tracer();
    let live_trace_ns = measure(500, || drive_flow_traced(&trace, &live_tracer));
    report(
        "reassembly_8KB_live_trace_quiet_flow",
        live_trace_ns,
        Some((SEGS * 64) as u64),
    );
}

/// A passive monitor node carrying a [`DetectionEngine`], switchable
/// between per-packet and batched dispatch — the two sides of the scale
/// section's coalescing comparison. Mirrors the tap/surveillance nodes:
/// pure observer, no randomness, no injected traffic.
struct EngineMonitor {
    name: String,
    engine: DetectionEngine,
    batch: bool,
    alerts: Vec<underradar_ids::alert::Alert>,
}

impl underradar_netsim::node::Node for EngineMonitor {
    fn name(&self) -> &str {
        &self.name
    }
    fn receive(
        &mut self,
        ctx: &mut underradar_netsim::node::NodeCtx<'_>,
        _iface: underradar_netsim::node::IfaceId,
        packet: Packet,
    ) {
        let mut fired = self.engine.process(ctx.now(), &packet);
        self.alerts.append(&mut fired);
    }
    fn wants_batch(&self) -> bool {
        self.batch
    }
    fn receive_batch(
        &mut self,
        ctx: &mut underradar_netsim::node::NodeCtx<'_>,
        _iface: underradar_netsim::node::IfaceId,
        packets: &mut Vec<Packet>,
    ) {
        self.engine
            .process_batch(ctx.now(), packets, &mut self.alerts);
        packets.clear();
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Round-major flow fleet: `flows` concurrent TCP sessions advancing in
/// lockstep (SYN round, SYN-ACK round, ACK round, `data_rounds` payload
/// rounds), every round at one shared instant. This is exactly the shape
/// `drain_batch` coalesces — maximal same-instant runs to one node.
fn fleet_rounds(flows: usize, data_rounds: usize, payload: &[u8]) -> Vec<Vec<Packet>> {
    // Three address octets so fleets past 65k flows stay distinct.
    let client = |f: usize| Ipv4Addr::new(10, (f >> 16) as u8, (f >> 8) as u8, f as u8);
    let mut rounds = Vec::with_capacity(3 + data_rounds);
    rounds.push(
        (0..flows)
            .map(|f| Packet::tcp(client(f), DST, 4000, 80, 100, 0, TcpFlags::syn(), vec![]))
            .collect(),
    );
    rounds.push(
        (0..flows)
            .map(|f| {
                Packet::tcp(
                    DST,
                    client(f),
                    80,
                    4000,
                    500,
                    101,
                    TcpFlags::syn_ack(),
                    vec![],
                )
            })
            .collect(),
    );
    rounds.push(
        (0..flows)
            .map(|f| Packet::tcp(client(f), DST, 4000, 80, 101, 501, TcpFlags::ack(), vec![]))
            .collect(),
    );
    let mut seq = 101u32;
    for _ in 0..data_rounds {
        rounds.push(
            (0..flows)
                .map(|f| {
                    Packet::tcp(
                        client(f),
                        DST,
                        4000,
                        80,
                        seq,
                        501,
                        TcpFlags::psh_ack(),
                        payload.to_vec(),
                    )
                })
                .collect(),
        );
        seq = seq.wrapping_add(payload.len() as u32);
    }
    rounds
}

/// The population-scale core: the four acceptance bounds of the arena /
/// wheel / batch redesign. (1) timer-wheel insertion+drain beats the
/// `BinaryHeap` on a 100k-timer storm; (2) batched delivery dispatch is
/// ≥ 1.5× per-packet dispatch through the full simulator→engine
/// pipeline; (3) the steady-state packet path performs zero heap
/// allocations (counted, not sampled); (4) 100k concurrent flows fit the
/// per-flow byte budget the e14 experiment runs under.
fn bench_scale() {
    use underradar_ids::stream::ReassemblyConfig;
    use underradar_netsim::event::{EventKind, EventQueue, HeapQueue, TimerToken};
    use underradar_netsim::node::{IfaceId, NodeId};
    use underradar_netsim::sim::Simulator;
    println!("scale");

    // -- (1) 100k-timer storm: wheel vs heap, push-all then pop-all. The
    // times are a seeded uniform spray over 30 simulated seconds — the
    // worst case for the heap's log n sift and a representative cascade
    // load for the wheel's six levels.
    const TIMERS: u64 = 100_000;
    let mut rng = SimRng::seed_from_u64(14);
    let times: Vec<SimTime> = (0..TIMERS)
        .map(|_| SimTime::from_nanos(rng.next_u64() % 30_000_000_000))
        .collect();
    let mut heap_ns = f64::MAX;
    let mut wheel_ns = f64::MAX;
    let mut speedup = 0.0f64;
    for _ in 0..3 {
        let h = measure(5, || {
            let mut q = HeapQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(
                    *t,
                    EventKind::Timer {
                        node: NodeId(0),
                        token: TimerToken(i as u64),
                    },
                );
            }
            let mut popped = 0u64;
            while q.pop().is_some() {
                popped += 1;
            }
            popped
        });
        let w = measure(5, || {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(
                    *t,
                    EventKind::Timer {
                        node: NodeId(0),
                        token: TimerToken(i as u64),
                    },
                );
            }
            let mut popped = 0u64;
            while q.pop().is_some() {
                popped += 1;
            }
            popped
        });
        heap_ns = heap_ns.min(h);
        wheel_ns = wheel_ns.min(w);
        speedup = speedup.max(h / w);
    }
    report("timer_storm_100k_heap", heap_ns, None);
    report("timer_storm_100k_wheel", wheel_ns, None);
    println!("  {:<44} {speedup:>11.2}x", "wheel vs heap (100k storm)");
    assert!(
        speedup >= 1.0,
        "acceptance: the timer wheel must beat the binary heap on a \
         100k-timer storm (got {speedup:.2}x)"
    );

    // -- (2a) full-pipeline TCP fleet, for the record: one simulator, one
    // engine-carrying monitor, identical round-major traffic; the only
    // difference is `wants_batch`. Injection, queue and engine costs are
    // shared, so the gap here is diluted — the gated measurement below
    // isolates the dispatch term.
    const FLOWS: usize = 512;
    let rounds = fleet_rounds(FLOWS, 4, &sample_payload(64));
    let n_packets: usize = rounds.iter().map(Vec::len).sum();
    let fleet_side = |batch: bool| -> f64 {
        let mut sim = Simulator::new(7);
        sim.set_event_budget(u64::MAX);
        let node = sim.add_node(Box::new(EngineMonitor {
            name: "mon".into(),
            engine: DetectionEngine::with_reassembly(ruleset(10), ReassemblyConfig::default()),
            batch,
            alerts: Vec::new(),
        }));
        let mut base = 0u64;
        measure(30, || {
            for (r, round) in rounds.iter().enumerate() {
                let t = SimTime::from_nanos(base + (r as u64 + 1) * 1_000);
                for pkt in round {
                    sim.inject_at(node, IfaceId(0), pkt.clone(), t)
                        .expect("inject");
                }
            }
            base += 1_000_000;
            sim.run_to_completion().expect("drain");
            sim.events_processed()
        })
    };
    report(
        &format!("fleet_{n_packets}pkts_per_packet"),
        fleet_side(false),
        None,
    );
    report(
        &format!("fleet_{n_packets}pkts_batched"),
        fleet_side(true),
        None,
    );

    // -- (2b) the gated dispatch measurement: the queue is pre-filled
    // *outside* the timed region, so the clock covers exactly the drain
    // loop — pop, dispatch, engine entry. The workload is empty UDP
    // datagrams, which the engine rejects in constant time (no flow, no
    // payload, no TCP rule group), so per-packet work is a floor and the
    // ratio measures the per-delivery dispatch the batch path amortizes
    // into one `receive_batch` per same-instant run.
    const DISPATCH_INSTANTS: u64 = 64;
    const PER_INSTANT: u64 = 2_048;
    let dispatch_side = |batch: bool| -> f64 {
        let mut sim = Simulator::new(7);
        sim.set_event_budget(u64::MAX);
        let node = sim.add_node(Box::new(EngineMonitor {
            name: "mon".into(),
            engine: DetectionEngine::with_reassembly(ruleset(10), ReassemblyConfig::default()),
            batch,
            alerts: Vec::new(),
        }));
        let pkt = Packet::udp(SRC, DST, 4000, 53, vec![]);
        let mut base = 1_000_000u64;
        let mut best = f64::MAX;
        for _ in 0..3 {
            for i in 0..DISPATCH_INSTANTS {
                let t = SimTime::from_nanos(base + (i + 1) * 1_000_000);
                for _ in 0..PER_INSTANT {
                    sim.inject_at(node, IfaceId(0), pkt.clone(), t)
                        .expect("inject");
                }
            }
            base += DISPATCH_INSTANTS * 2_000_000;
            let t0 = Instant::now();
            while sim.drain_batch().expect("drain") > 0 {}
            best =
                best.min(t0.elapsed().as_nanos() as f64 / (DISPATCH_INSTANTS * PER_INSTANT) as f64);
        }
        best
    };
    let mut per_packet_ns = f64::MAX;
    let mut batched_ns = f64::MAX;
    let mut dispatch_speedup = 0.0f64;
    for _ in 0..3 {
        let p = dispatch_side(false);
        let b = dispatch_side(true);
        per_packet_ns = per_packet_ns.min(p);
        batched_ns = batched_ns.min(b);
        dispatch_speedup = dispatch_speedup.max(p / b);
    }
    report("dispatch_udp_flood_per_packet", per_packet_ns, None);
    report("dispatch_udp_flood_batched", batched_ns, None);
    println!(
        "  {:<44} {dispatch_speedup:>11.2}x",
        "delivery-run coalescing (for the record)"
    );
    assert!(
        dispatch_speedup >= 1.0,
        "coalesced delivery runs must not be slower than per-packet \
         delivery (got {dispatch_speedup:.2}x)"
    );

    // -- (2c) the gated 1.5× bound: batched arena processing vs the
    // seed's per-packet dispatch. The baseline drives the real engine
    // per packet (per-call alert vec included) plus a replica of the
    // per-packet hot-path work the arena redesign retired — the seed
    // resolved three hashed maps per data segment (the reassembler's
    // stream-view-by-key, `(FlowKey, Direction)` match state, and the
    // per-flow dedup set), where the redesign pays one hash at flow
    // lookup and index dereferences after. Same replica-baseline idiom
    // as `ExactSeqBuffer` and the clone-per-segment reassembly bound.
    {
        use underradar_ids::stream::{Direction, FlowKey};
        use underradar_netsim::flow::FlowTuple;
        use underradar_netsim::hash::FxHashMap;
        let now = SimTime::ZERO;
        // Population scale is the point: with tens of thousands of
        // concurrent flows the seed's hashed probes are random-access
        // cache misses, while the arena walks dense state in flow order.
        const GATE_FLOWS: usize = 32_768;
        const GATE_WARM: usize = 8;
        const GATE_HOT: usize = 16;
        let rounds = fleet_rounds(GATE_FLOWS, GATE_WARM + GATE_HOT, &sample_payload(16));
        let keys: Vec<Vec<FlowKey>> = rounds
            .iter()
            .map(|round| {
                round
                    .iter()
                    .map(|p| FlowTuple::of_packet(p).canonical())
                    .collect()
            })
            .collect();
        let warm = 0..3 + GATE_WARM;
        let hot = 3 + GATE_WARM..rounds.len();
        let hot_packets = (GATE_FLOWS * GATE_HOT) as f64;
        // Fresh engines per repetition so every timed segment is a true
        // append (re-running a trace would measure the retransmit
        // short-circuit, where the seed paid no hashes either); one
        // `Instant` pass per side, pairwise best-of-3 as elsewhere.
        let mut old_ns = f64::MAX;
        let mut new_ns = f64::MAX;
        let mut arena_speedup = 0.0f64;
        let mut out = Vec::with_capacity(64);
        for _ in 0..3 {
            let mut old_engine =
                DetectionEngine::with_reassembly(ruleset(10), ReassemblyConfig::default());
            let mut streams_by_key: FxHashMap<FlowKey, u64> = FxHashMap::default();
            let mut match_state: FxHashMap<(FlowKey, Direction), u32> = FxHashMap::default();
            let mut dedup: FxHashMap<FlowKey, Vec<u32>> = FxHashMap::default();
            for key in &keys[0] {
                streams_by_key.insert(*key, 0);
                match_state.insert((*key, Direction::ToServer), 0);
                dedup.insert(*key, Vec::new());
            }
            for r in warm.clone() {
                for pkt in &rounds[r] {
                    black_box(old_engine.process(now, pkt));
                }
            }
            let t0 = Instant::now();
            let mut touched = 0u64;
            for r in hot.clone() {
                for (pkt, key) in rounds[r].iter().zip(&keys[r]) {
                    // The three retired per-packet hash resolutions.
                    if let Some(v) = streams_by_key.get_mut(key) {
                        *v = v.wrapping_add(1);
                    }
                    if let Some(c) = match_state.get_mut(&(*key, Direction::ToServer)) {
                        *c = c.wrapping_add(1);
                    }
                    if let Some(seen) = dedup.get(key) {
                        touched += seen.len() as u64;
                    }
                    black_box(old_engine.process(now, black_box(pkt)));
                }
            }
            black_box(touched);
            let o = t0.elapsed().as_nanos() as f64 / hot_packets;

            let mut new_engine =
                DetectionEngine::with_reassembly(ruleset(10), ReassemblyConfig::default());
            for r in warm.clone() {
                new_engine.process_batch(now, &rounds[r], &mut out);
                out.clear();
            }
            let t0 = Instant::now();
            for r in hot.clone() {
                new_engine.process_batch(now, black_box(&rounds[r]), &mut out);
                out.clear();
            }
            let n = t0.elapsed().as_nanos() as f64 / hot_packets;
            old_ns = old_ns.min(o);
            new_ns = new_ns.min(n);
            arena_speedup = arena_speedup.max(o / n);
        }
        report("steady_16B_per_packet_hashed_dispatch", old_ns, Some(16));
        report("steady_16B_batched_arena", new_ns, Some(16));
        println!(
            "  {:<44} {arena_speedup:>11.2}x",
            "batched arena vs hashed per-packet"
        );
        assert!(
            arena_speedup >= 1.5,
            "acceptance: batched arena processing must be ≥ 1.5x the seed's \
             hashed per-packet dispatch on steady-state data segments \
             (got {arena_speedup:.2}x)"
        );
    }

    // -- (3) zero-allocation steady state: established flows with full
    // windows, in-order data, no rule hits — the population steady state.
    // One counted pass both times the per-packet cost and asserts the
    // allocator was never called. (Window 8 KB / 64 B segments → 140
    // warm-up rounds overfill every window, so the hot rounds run wholly
    // in the append-compact regime with stable capacities.)
    const SS_FLOWS: usize = 128;
    const WARM_ROUNDS: usize = 140;
    const HOT_ROUNDS: usize = 256;
    let rounds = fleet_rounds(SS_FLOWS, WARM_ROUNDS + HOT_ROUNDS, &sample_payload(64));
    let mut engine = DetectionEngine::with_reassembly(ruleset(100), ReassemblyConfig::default());
    let mut out = Vec::with_capacity(64);
    let now = SimTime::ZERO;
    for round in &rounds[..3 + WARM_ROUNDS] {
        engine.process_batch(now, round, &mut out);
    }
    let hot = &rounds[3 + WARM_ROUNDS..];
    let hot_packets = (SS_FLOWS * HOT_ROUNDS) as u64;
    let before = ALLOCS.load(Ordering::Relaxed);
    let t0 = Instant::now();
    for round in hot {
        engine.process_batch(now, round, &mut out);
    }
    let per_packet = t0.elapsed().as_nanos() as f64 / hot_packets as f64;
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    assert!(out.is_empty(), "steady-state traffic must raise no alerts");
    report("steady_state_batched_packet", per_packet, Some(64));
    println!(
        "  {:<44} {allocs:>12} allocs / {hot_packets} packets",
        "steady-state heap allocations"
    );
    assert_eq!(
        allocs, 0,
        "acceptance: the steady-state packet path must perform zero heap \
         allocations (counted {allocs} over {hot_packets} packets)"
    );

    // -- (4) 100k concurrent flows: handshake cost per flow, and the
    // arena + side-table budget the e14 experiment asserts end to end.
    const BIG: usize = 100_000;
    let mut engine = DetectionEngine::with_reassembly(
        ruleset(10),
        ReassemblyConfig {
            max_flows: BIG + 4_096,
            ..ReassemblyConfig::default()
        },
    );
    let rounds = fleet_rounds(BIG, 0, &[]);
    let t0 = Instant::now();
    for round in &rounds {
        engine.process_batch(now, round, &mut out);
    }
    let per_flow_ns = t0.elapsed().as_nanos() as f64 / BIG as f64;
    report("flow_setup_100k_handshakes", per_flow_ns, None);
    assert!(
        engine.live_flows() >= BIG,
        "all {BIG} flows must be resident (got {})",
        engine.live_flows()
    );
    let per_flow_bytes = engine.flow_memory_bytes() / engine.live_flows();
    println!(
        "  {:<44} {per_flow_bytes:>12} B/flow (≤ 1024 B bound, {} flows)",
        "resident per-flow memory",
        engine.live_flows()
    );
    assert!(
        per_flow_bytes <= 1024,
        "acceptance: 100k resident flows must fit the 1 KiB per-flow \
         budget (got {per_flow_bytes} B/flow)"
    );
}

fn main() {
    println!("perf benches (median of 5 batches; hand-rolled harness)");
    let filters: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    let sections: [(&str, fn()); 13] = [
        ("ids_engine", bench_engine),
        ("multipattern", bench_aho_vs_naive),
        ("stream_reassembly", bench_reassembly),
        ("reassembly_holdback", bench_reassembly_holdback),
        ("overlap_policy_guard", bench_overlap_policy_guard),
        ("codec", bench_wire_codec),
        ("mvr", bench_mvr),
        ("generators", bench_generators),
        ("simulator", bench_simulator),
        ("campaign", bench_campaign),
        ("runner", bench_runner),
        ("telemetry", bench_telemetry),
        ("scale", bench_scale),
    ];
    for (name, run) in sections {
        if filters.is_empty() || filters.iter().any(|f| name.contains(f.as_str())) {
            run();
        }
    }
    println!("done: all acceptance assertions held");
    // Unfiltered runs snapshot every result row to `BENCH_perf.json`
    // (workspace root, next to `BENCH_telemetry.json`). The committed
    // copy pins the bench *schema* — names and keys — not the timings;
    // `scripts/ci.sh` regenerates it and fails on schema drift.
    if filters.is_empty() {
        let rows = RESULTS.lock().expect("perf result collector");
        let json = format!("{{\"benches\":[{}]}}\n", rows.join(","));
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_perf.json");
        match std::fs::write(path, &json) {
            Ok(()) => eprintln!("perf snapshot written to {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}
