//! `cargo bench --bench experiments` regenerates every paper table and
//! figure in one run (E1–E12). Not a timing benchmark — a reproduction
//! harness (harness = false).
//!
//! Alongside the stdout report it writes `BENCH_telemetry.json`: every
//! experiment's telemetry registry (netsim scheduler, censor, ids,
//! surveillance, workload metrics) plus a merged view. The experiments
//! shard across worker threads but each records into its own registry, so
//! the file is byte-identical to a sequential run of the same seed.

fn main() {
    // Respect `cargo bench -- --list`-style probing by ignoring args.
    let (results, profile) =
        underradar_bench::experiments::collect_profiled(&underradar_bench::experiments::ALL);
    for (_, report, _) in &results {
        print!("{report}");
    }
    // Wall-clock worker/stage profile — stderr, so the stdout report stays
    // deterministic.
    eprint!("{}", profile.render_footer());
    let json = underradar_bench::experiments::telemetry_json(&results);
    // cargo runs benches with cwd = the package dir; anchor the artifact
    // at the workspace root so it lands next to the other reports.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.json");
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("telemetry registry written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
