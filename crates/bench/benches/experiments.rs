//! `cargo bench --bench experiments` regenerates every paper table and
//! figure in one run (E1–E12). Not a timing benchmark — a reproduction
//! harness (harness = false).

fn main() {
    // Respect `cargo bench -- --list`-style probing by ignoring args.
    print!("{}", underradar_bench::experiments::run_all());
}
