//! Cross-path determinism and safety-regression tests for the exposure
//! ledger: the audit reconstructed from the merged registry must be
//! byte-identical for any shard count and for the durable run service vs
//! the plain engine, and hosts with no sensitive traffic must score zero
//! under every censor policy.

use underradar_bench::experiments::campaign::paper_campaign;
use underradar_campaign::engine;
use underradar_campaign::report::CellStat;
use underradar_runner::{run_service, NullSink, RunConfig};
use underradar_surveil::exposure::{DeclaredCell, ExposureLedger, SafetyAudit};
use underradar_telemetry::{Registry, Telemetry};

/// The audit renders (text + sorted-key JSON) derived from a merged
/// registry and the declared per-cell evasion counts.
fn audit_renders(cells: &[CellStat], reg: &Registry) -> (String, String) {
    let ledger = ExposureLedger::from_registry(reg);
    let declared: Vec<DeclaredCell> = cells
        .iter()
        .map(|c| DeclaredCell {
            cell: format!("{}/{}", c.method, c.policy),
            trials: c.trials as u64,
            evaded: c.evaded as u64,
        })
        .collect();
    let audit = SafetyAudit::build(&ledger, &declared);
    (audit.render_text(), audit.render_json())
}

/// A stable dump of the raw ledger, independent of the audit layer.
fn ledger_dump(reg: &Registry) -> String {
    ExposureLedger::from_registry(reg)
        .iter()
        .map(|((cell, host), e)| format!("{cell} {host} {e:?}\n"))
        .collect()
}

#[test]
fn audit_is_byte_identical_across_shards_and_service_vs_engine() {
    let spec = paper_campaign(1);

    let tel1 = Telemetry::enabled();
    let report1 = engine::run(&spec, 1, &tel1);
    let (text1, json1) = audit_renders(&report1.cells(), &tel1.snapshot());
    let dump1 = ledger_dump(&tel1.snapshot());
    assert!(
        !ExposureLedger::from_registry(&tel1.snapshot()).is_empty(),
        "paper campaign must produce exposure entries"
    );

    let tel4 = Telemetry::enabled();
    let report4 = engine::run(&spec, 4, &tel4);
    let (text4, json4) = audit_renders(&report4.cells(), &tel4.snapshot());
    assert_eq!(dump1, ledger_dump(&tel4.snapshot()), "1 vs 4 shard ledger");
    assert_eq!(text1, text4, "1 vs 4 shard audit text");
    assert_eq!(json1, json4, "1 vs 4 shard audit JSON");

    let tel_svc = Telemetry::enabled();
    let outcome = run_service(&spec, &RunConfig::new(4), &tel_svc, &mut NullSink)
        .expect("service run succeeds");
    let (text_svc, json_svc) = audit_renders(&outcome.report.cells(), &tel_svc.snapshot());
    assert_eq!(dump1, ledger_dump(&tel_svc.snapshot()), "service ledger");
    assert_eq!(text1, text_svc, "service vs engine audit text");
    assert_eq!(json1, json_svc, "service vs engine audit JSON");
}

#[test]
fn hosts_with_no_sensitive_traffic_score_zero_under_every_policy() {
    let spec = paper_campaign(1);
    let tel = Telemetry::enabled();
    let report = engine::run(&spec, 1, &tel);
    let ledger = ExposureLedger::from_registry(&tel.snapshot());

    let policies: Vec<String> = report
        .cells()
        .iter()
        .map(|c| c.policy.clone())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    assert!(
        policies.len() >= 4,
        "paper matrix carries all four policies"
    );

    let mut passive_with_bytes = 0u64;
    for policy in &policies {
        let suffix = format!("/{policy}");
        let mut saw_cell = false;
        let mut saw_passive = false;
        for ((cell, host), e) in ledger.iter() {
            if !cell.ends_with(&suffix) {
                continue;
            }
            saw_cell = true;
            if e.attributable_events() == 0 && e.sensitive_flows == 0 {
                saw_passive = true;
                assert_eq!(
                    e.score(),
                    0,
                    "host {host} in {cell} has no sensitive traffic but scores {}",
                    e.score()
                );
                if e.retained_bytes > 0 {
                    passive_with_bytes += 1;
                }
            }
        }
        assert!(saw_cell, "no exposure entries for policy {policy}");
        assert!(
            saw_passive,
            "no passively-retained host to exercise the zero-score gate for {policy}"
        );
    }
    assert!(
        passive_with_bytes > 0,
        "at least one zero-score host must still have retained bytes"
    );
}
