//! Telemetry determinism regression (ISSUE satellite): the registries an
//! experiment produces — and the `BENCH_telemetry.json` rendering built
//! from them — must be byte-identical run-to-run and between the
//! sequential and sharded (`run_sharded`) execution paths.
//!
//! Uses the cheaper experiments so the double-run stays fast; the sharded
//! path is the same code `run_all_with_telemetry` uses for all fourteen.

use underradar_bench::experiments::{collect, collect_sequential, telemetry_json, Experiment, ALL};

/// A representative, fast subset: pure-generator (E3, E8, E10) and
/// pipeline (E9) experiments.
fn subset() -> Vec<Experiment> {
    ALL.iter()
        .copied()
        .filter(|(name, _)| {
            matches!(
                *name,
                "e03_fig2_spam_cdf" | "e08_syria" | "e09_mvr" | "e10_spoofability"
            )
        })
        .collect()
}

#[test]
fn telemetry_json_is_identical_across_repeat_runs() {
    let exps = subset();
    let a = telemetry_json(&collect_sequential(&exps));
    let b = telemetry_json(&collect_sequential(&exps));
    assert_eq!(a, b, "same experiments, same seed, same bytes");
    assert!(a.contains("\"e09_mvr\""));
    assert!(a.contains("\"merged\""));
}

#[test]
fn sharded_and_sequential_runs_agree_byte_for_byte() {
    let exps = subset();
    let sequential = collect_sequential(&exps);
    let sharded = collect(&exps);
    for ((n1, r1, reg1), (n2, r2, reg2)) in sequential.iter().zip(sharded.iter()) {
        assert_eq!(n1, n2);
        assert_eq!(r1, r2, "{n1}: report differs under sharding");
        assert_eq!(
            reg1.to_json(),
            reg2.to_json(),
            "{n1}: registry differs under sharding"
        );
    }
    assert_eq!(telemetry_json(&sequential), telemetry_json(&sharded));
}

#[test]
fn campaign_sequential_and_sharded_agree_byte_for_byte() {
    use underradar_campaign::{engine, CampaignSpec, MethodKind, NamedPolicy};
    use underradar_censor::CensorPolicy;
    use underradar_protocols::dns::DnsName;
    use underradar_telemetry::Telemetry;

    // Flat + routed methods across two policies so the sharded path
    // crosses policy-prep and method boundaries, not just trial repeats.
    // The client-link impairment knobs are on: every reorder/duplicate/
    // corrupt draw comes from the per-trial simulator RNG in simulated-
    // time order, so shard scheduling must not change a single byte.
    let blocked = CensorPolicy::new().block_domain(&DnsName::parse("twitter.com").expect("n"));
    let spec = CampaignSpec::new("determinism", 42)
        .targets(["twitter.com", "bbc.com"])
        .methods([MethodKind::Overt, MethodKind::Scan, MethodKind::Stateful])
        .policy(NamedPolicy::new("control", CensorPolicy::new()))
        .policy(NamedPolicy::new("dns-block", blocked))
        .trials_per_cell(2)
        .client_link_reorder(0.2)
        .client_link_duplicate(0.1)
        .client_link_corrupt(0.05)
        .run_secs(30);
    let sequential_tel = Telemetry::enabled();
    let sequential = engine::run(&spec, 1, &sequential_tel);
    let sharded_tel = Telemetry::enabled();
    let sharded = engine::run(&spec, 4, &sharded_tel);
    assert_eq!(
        sequential.to_json(),
        sharded.to_json(),
        "campaign report differs under sharding"
    );
    assert_eq!(
        sequential_tel.snapshot().to_json(),
        sharded_tel.snapshot().to_json(),
        "merged campaign telemetry differs under sharding"
    );
}

/// ISSUE satellite: the flight recorder must be as deterministic as the
/// report — a traced campaign run yields byte-identical trace JSONL (and
/// explainer chains) whether it runs sequentially or across 4 workers.
#[test]
fn campaign_trace_is_byte_identical_across_shard_counts() {
    use underradar_campaign::{engine, CampaignSpec, MethodKind, NamedPolicy};
    use underradar_censor::CensorPolicy;
    use underradar_protocols::dns::DnsName;
    use underradar_telemetry::{trace, Telemetry, DEFAULT_TRACE_CAPACITY};

    let blocked = CensorPolicy::new()
        .block_domain(&DnsName::parse("twitter.com").expect("n"))
        .block_keyword("falun");
    let spec = CampaignSpec::new("trace-determinism", 7)
        .targets(["twitter.com", "bbc.com"])
        .methods([MethodKind::Overt, MethodKind::Scan])
        .policy(NamedPolicy::new("control", CensorPolicy::new()))
        .policy(NamedPolicy::new("blocked", blocked))
        .trials_per_cell(2)
        .run_secs(30);
    let run = |shards: usize| {
        let tel = Telemetry::with_trace(DEFAULT_TRACE_CAPACITY);
        let report = engine::run(&spec, shards, &tel);
        let snap = tel.snapshot();
        let chains = trace::render_chains(&trace::explain(&snap.trace));
        (report.render_text(), snap.trace_jsonl(), chains)
    };
    let (report_1, jsonl_1, chains_1) = run(1);
    let (report_4, jsonl_4, chains_4) = run(4);
    assert_eq!(report_1, report_4, "report differs under sharding");
    assert_eq!(jsonl_1, jsonl_4, "trace JSONL differs under sharding");
    assert_eq!(chains_1, chains_4, "explainer chains differ under sharding");
    // And the trace actually recorded the pipeline: stream-stage records
    // exist, the blocked cells produced censor actions, and every line
    // parses as a JSON object with the mandatory keys.
    assert!(!jsonl_1.is_empty(), "traced campaign produced no records");
    assert!(jsonl_1.lines().count() > 16);
    for line in jsonl_1.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "bad row: {line}"
        );
        for key in ["\"kind\":", "\"stage\":", "\"t_ns\":"] {
            assert!(line.contains(key), "row missing {key}: {line}");
        }
    }
    assert!(jsonl_1.contains("\"stage\":\"campaign\""));
    assert!(jsonl_1.contains("\"kind\":\"verdict\""));
    assert!(jsonl_1.contains("\"stage\":\"censor\""));
}

#[test]
fn e09_registry_covers_the_surveillance_pipeline() {
    let exps: Vec<Experiment> = ALL
        .iter()
        .copied()
        .filter(|(name, _)| *name == "e09_mvr")
        .collect();
    let results = collect_sequential(&exps);
    let registry = &results[0].2;
    assert!(registry.counter("surveil.observed") > 0);
    assert!(registry.counter("surveil.mvr.total_bytes") > 0);
    assert!(registry.counter("surveil.store.metadata.inserted") > 0);
    assert!(registry.counter("workloads.population.packets") > 0);
    assert!(
        !registry.histograms["workloads.population.pkt_bytes"].is_empty(),
        "packet-size histogram populated"
    );
}
