//! Telemetry determinism regression (ISSUE satellite): the registries an
//! experiment produces — and the `BENCH_telemetry.json` rendering built
//! from them — must be byte-identical run-to-run and between the
//! sequential and sharded (`run_sharded`) execution paths.
//!
//! Uses the cheaper experiments so the double-run stays fast; the sharded
//! path is the same code `run_all_with_telemetry` uses for all fourteen.

use underradar_bench::experiments::{collect, collect_sequential, telemetry_json, Experiment, ALL};

/// A representative, fast subset: pure-generator (E3, E8, E10) and
/// pipeline (E9) experiments.
fn subset() -> Vec<Experiment> {
    ALL.iter()
        .copied()
        .filter(|(name, _)| {
            matches!(
                *name,
                "e03_fig2_spam_cdf" | "e08_syria" | "e09_mvr" | "e10_spoofability"
            )
        })
        .collect()
}

#[test]
fn telemetry_json_is_identical_across_repeat_runs() {
    let exps = subset();
    let a = telemetry_json(&collect_sequential(&exps));
    let b = telemetry_json(&collect_sequential(&exps));
    assert_eq!(a, b, "same experiments, same seed, same bytes");
    assert!(a.contains("\"e09_mvr\""));
    assert!(a.contains("\"merged\""));
}

#[test]
fn sharded_and_sequential_runs_agree_byte_for_byte() {
    let exps = subset();
    let sequential = collect_sequential(&exps);
    let sharded = collect(&exps);
    for ((n1, r1, reg1), (n2, r2, reg2)) in sequential.iter().zip(sharded.iter()) {
        assert_eq!(n1, n2);
        assert_eq!(r1, r2, "{n1}: report differs under sharding");
        assert_eq!(
            reg1.to_json(),
            reg2.to_json(),
            "{n1}: registry differs under sharding"
        );
    }
    assert_eq!(telemetry_json(&sequential), telemetry_json(&sharded));
}

#[test]
fn campaign_sequential_and_sharded_agree_byte_for_byte() {
    use underradar_campaign::{engine, CampaignSpec, MethodKind, NamedPolicy};
    use underradar_censor::CensorPolicy;
    use underradar_protocols::dns::DnsName;
    use underradar_telemetry::Telemetry;

    // Flat + routed methods across two policies so the sharded path
    // crosses policy-prep and method boundaries, not just trial repeats.
    // The client-link impairment knobs are on: every reorder/duplicate/
    // corrupt draw comes from the per-trial simulator RNG in simulated-
    // time order, so shard scheduling must not change a single byte.
    let blocked = CensorPolicy::new().block_domain(&DnsName::parse("twitter.com").expect("n"));
    let spec = CampaignSpec::new("determinism", 42)
        .targets(["twitter.com", "bbc.com"])
        .methods([MethodKind::Overt, MethodKind::Scan, MethodKind::Stateful])
        .policy(NamedPolicy::new("control", CensorPolicy::new()))
        .policy(NamedPolicy::new("dns-block", blocked))
        .trials_per_cell(2)
        .client_link_reorder(0.2)
        .client_link_duplicate(0.1)
        .client_link_corrupt(0.05)
        .run_secs(30);
    let sequential_tel = Telemetry::enabled();
    let sequential = engine::run(&spec, 1, &sequential_tel);
    let sharded_tel = Telemetry::enabled();
    let sharded = engine::run(&spec, 4, &sharded_tel);
    assert_eq!(
        sequential.to_json(),
        sharded.to_json(),
        "campaign report differs under sharding"
    );
    assert_eq!(
        sequential_tel.snapshot().to_json(),
        sharded_tel.snapshot().to_json(),
        "merged campaign telemetry differs under sharding"
    );
}

#[test]
fn e09_registry_covers_the_surveillance_pipeline() {
    let exps: Vec<Experiment> = ALL
        .iter()
        .copied()
        .filter(|(name, _)| *name == "e09_mvr")
        .collect();
    let results = collect_sequential(&exps);
    let registry = &results[0].2;
    assert!(registry.counter("surveil.observed") > 0);
    assert!(registry.counter("surveil.mvr.total_bytes") > 0);
    assert!(registry.counter("surveil.store.metadata.inserted") > 0);
    assert!(registry.counter("workloads.population.packets") > 0);
    assert!(
        !registry.histograms["workloads.population.pkt_bytes"].is_empty(),
        "packet-size histogram populated"
    );
}
