//! CLI golden test: the exact stdout bytes every output mode produces,
//! rendered through [`OutputSpec`] from one fixed report and registry.
//! Guards the `--json`/`--jsonl`/`--telemetry`/`--trace` surface against
//! accidental format drift — downstream pipelines parse these bytes.

use underradar_bench::cli::OutputSpec;
use underradar_telemetry::{Telemetry, TraceRecord};

fn fixed_registry() -> underradar_telemetry::Registry {
    let tel = Telemetry::with_trace(8);
    tel.count("netsim.events_processed", 42);
    tel.set_gauge("censor.tap.live_flows", 3);
    tel.tracer().record(TraceRecord {
        t_ns: 1500,
        seq: 0,
        stage: "stream",
        kind: "ooo_held",
        flow: None,
        fields: vec![],
    });
    tel.snapshot()
}

const REPORT: &str = "row one\nrow two \"quoted\"\n";

#[test]
fn golden_text() {
    let out = OutputSpec::new().render("e00_demo", REPORT, &fixed_registry());
    assert_eq!(out, REPORT);
}

#[test]
fn golden_text_with_telemetry() {
    let out = OutputSpec::new()
        .telemetry(true)
        .render("e00_demo", REPORT, &fixed_registry());
    assert_eq!(
        out,
        "row one\n\
         row two \"quoted\"\n\
         --- telemetry ---\n\
         counter netsim.events_processed = 42\n\
         counter telemetry.trace.dropped = 0\n\
         gauge   censor.tap.live_flows = 3\n\
         trace   1 records\n"
    );
}

#[test]
fn golden_json() {
    let out = OutputSpec::new()
        .json(true)
        .render("e00_demo", REPORT, &fixed_registry());
    assert_eq!(
        out,
        "{\"experiment\":\"e00_demo\",\
         \"report\":\"row one\\nrow two \\\"quoted\\\"\\n\",\
         \"telemetry\":{\
         \"counters\":{\"netsim.events_processed\":42,\"telemetry.trace.dropped\":0},\
         \"gauges\":{\"censor.tap.live_flows\":3},\
         \"histograms\":{},\"spans\":[],\"events\":[]}}\n"
    );
}

#[test]
fn golden_jsonl() {
    let out = OutputSpec::new()
        .jsonl(true)
        .render("e00_demo", REPORT, &fixed_registry());
    assert_eq!(
        out,
        "{\"experiment\":\"e00_demo\",\"line\":0,\"text\":\"row one\"}\n\
         {\"experiment\":\"e00_demo\",\"line\":1,\"text\":\"row two \\\"quoted\\\"\"}\n\
         {\"experiment\":\"e00_demo\",\"telemetry\":{\
         \"counters\":{\"netsim.events_processed\":42,\"telemetry.trace.dropped\":0},\
         \"gauges\":{\"censor.tap.live_flows\":3},\
         \"histograms\":{},\"spans\":[],\"events\":[]}}\n"
    );
}

#[test]
fn golden_trace() {
    let out = OutputSpec::new()
        .trace(true)
        .render("e00_demo", REPORT, &fixed_registry());
    assert_eq!(
        out,
        "row one\n\
         row two \"quoted\"\n\
         --- trace ---\n\
         {\"kind\":\"ooo_held\",\"seq\":0,\"stage\":\"stream\",\"t_ns\":1500}\n\
         --- explain ---\n\
         trace verdict=(none) steps=1 because=stream.ooo_held@t=1500ns\n\
         \x20 t=1500ns [stream] ooo_held\n"
    );
}

#[test]
fn flag_combinations_resolve_by_precedence_not_order() {
    // Every combination resolves identically regardless of flag order:
    // trace > jsonl > json > telemetry.
    let all = OutputSpec::new()
        .telemetry(true)
        .json(true)
        .jsonl(true)
        .trace(true);
    assert_eq!(
        all.render("e", REPORT, &fixed_registry()),
        OutputSpec::new()
            .trace(true)
            .render("e", REPORT, &fixed_registry())
    );
    assert_eq!(
        OutputSpec::new()
            .json(true)
            .jsonl(true)
            .render("e", REPORT, &fixed_registry()),
        OutputSpec::new()
            .jsonl(true)
            .render("e", REPORT, &fixed_registry())
    );
    assert_eq!(
        OutputSpec::new()
            .telemetry(true)
            .json(true)
            .render("e", REPORT, &fixed_registry()),
        OutputSpec::new()
            .json(true)
            .render("e", REPORT, &fixed_registry())
    );
}
