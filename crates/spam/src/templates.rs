//! Message generators.
//!
//! [`measurement_spam`] builds the emails the Method #2 client sends: they
//! must *look like spam to the filter* (evasion — Figure 2) while their
//! delivery path measures DNS and IP censorship of the recipient domain.
//! [`ham_message`] builds ordinary correspondence for the population
//! baseline.
//!
//! Generators are deterministic functions of an index so experiments are
//! reproducible without threading an RNG through.

use underradar_protocols::email::EmailMessage;

/// splitmix64: cheap deterministic mixing for template variation.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

const SUBJECTS: &[&str] = &[
    "YOU WON! Claim your prize NOW!!!",
    "Limited time offer — act now!",
    "FREE pharmacy discount inside $$$",
    "Congratulations WINNER! Risk-free prize",
    "Earn money from home — no obligation!",
    "CHEAP meds, offer expires tonight!!!",
    "Your million dollars award is waiting",
    "Exclusive casino bonus — click here!",
];

const PITCHES: &[&str] = &[
    "Dear friend, you have been selected to receive a prize.",
    "Act now! This limited time offer expires in 24 hours.",
    "Our pharmacy has the best discount prices, guarantee!",
    "Work from home and earn money risk-free, no obligation.",
    "You are today's winner! Claim your free reward below.",
];

const SENDERS: &[&str] = &[
    "promotions@best-deals-4u.example",
    "winner-notify@prize-center.example",
    "offers@discount-meds.example",
    "rewards@casino-club.example",
];

/// Build the `i`-th measurement-spam message addressed to a mailbox at
/// `recipient_domain` (the domain under measurement).
pub fn measurement_spam(i: u64, recipient_domain: &str) -> EmailMessage {
    let h = mix(i);
    let subject = SUBJECTS[(h % SUBJECTS.len() as u64) as usize];
    let pitch = PITCHES[((h >> 8) % PITCHES.len() as u64) as usize];
    let sender = SENDERS[((h >> 16) % SENDERS.len() as u64) as usize];
    // Vary the link host and a tracking token per message so messages are
    // not byte-identical (real campaigns vary too).
    let token = h % 1_000_000;
    let link_octet = 1 + (h >> 24) % 250;
    // Optional sections vary the score across the campaign (real campaigns
    // template-rotate too); the paper's Figure 2 shows a CDF spread over
    // roughly 40–100, not a point mass.
    let link = if h & 0x10000000 != 0 {
        format!("http://203.0.113.{link_octet}/claim?t={token}")
    } else {
        format!("http://deals-{token}.example/claim")
    };
    let mut body = format!("{pitch}\n\nClick here: {link}\n");
    if h & 0x1000000 != 0 {
        body.push_str("This is not spam. ");
    }
    if h & 0x2000000 != 0 {
        body.push_str("100% guarantee, totally free! ");
    }
    if h & 0x4000000 != 0 {
        body.push_str("Offer expires at midnight — cheap prices! ");
    }
    if h & 0x8000000 != 0 {
        body.push_str(&format!(
            "Also visit http://deals-{token}.example/win today! "
        ));
    }
    body.push_str("\nTo unsubscribe reply STOP.");
    let mut msg = EmailMessage::new(
        sender,
        &format!("postmaster@{recipient_domain}"),
        subject,
        &body,
    )
    .with_header(
        "X-Mailer",
        if h & 0x40000000 != 0 {
            "bulk-sender 2.1"
        } else {
            "mailer v1"
        },
    );
    if h & 0x20000000 != 0 {
        msg = msg.with_header("Precedence", "bulk");
    }
    msg
}

const HAM_SUBJECTS: &[&str] = &[
    "Meeting notes from Thursday",
    "Re: draft of section 3",
    "Lunch on Friday?",
    "Travel reimbursement form",
    "Seminar schedule update",
];

const HAM_BODIES: &[&str] = &[
    "Hi,\n\nHere are the notes from our discussion. Let me know if I missed \
     anything important.\n\nThanks",
    "Hello,\n\nThe draft looks good overall. I left a few comments on the \
     methodology paragraph; happy to talk them through tomorrow.\n\nBest",
    "Hey,\n\nAre you free for lunch on Friday around noon? The usual place?\n\nCheers",
    "Hi,\n\nPlease find the updated schedule attached. The first talk moved \
     to 10am.\n\nRegards",
];

/// Build the `i`-th ordinary (ham) message between users at `domain`.
pub fn ham_message(i: u64, domain: &str) -> EmailMessage {
    let h = mix(i.wrapping_add(0x5eed));
    let subject = HAM_SUBJECTS[(h % HAM_SUBJECTS.len() as u64) as usize];
    let body = HAM_BODIES[((h >> 8) % HAM_BODIES.len() as u64) as usize];
    let a = (h >> 16) % 1000;
    let b = (h >> 32) % 1000;
    EmailMessage::new(
        &format!("user{a}@{domain}"),
        &format!("user{b}@{domain}"),
        subject,
        body,
    )
    .with_header("Message-ID", &format!("<{h:x}@{domain}>"))
    .with_header("Date", "Thu, 02 Jul 2015 10:00:00 -0400")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::{is_spam, spam_score};

    #[test]
    fn measurement_spam_is_classified_as_spam() {
        // The Figure 2 property: every measurement message lands in the
        // spam range.
        for i in 0..100 {
            let msg = measurement_spam(i, "twitter.com");
            let s = spam_score(&msg);
            assert!(s >= 40.0, "message {i} scored {s}");
            assert!(is_spam(&msg), "message {i} not classified as spam");
        }
    }

    #[test]
    fn ham_is_not_classified_as_spam() {
        for i in 0..100 {
            let msg = ham_message(i, "university.example");
            let s = spam_score(&msg);
            assert!(s < 40.0, "ham {i} scored {s}");
            assert!(!is_spam(&msg));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(measurement_spam(7, "x.com"), measurement_spam(7, "x.com"));
        assert_eq!(ham_message(7, "x.com"), ham_message(7, "x.com"));
    }

    #[test]
    fn messages_vary_across_indices() {
        let a = measurement_spam(1, "x.com");
        let b = measurement_spam(2, "x.com");
        assert_ne!(a.body, b.body, "campaign varies per message");
    }

    #[test]
    fn recipient_domain_is_the_measured_target() {
        let msg = measurement_spam(3, "youtube.com");
        assert_eq!(msg.to_domain(), Some("youtube.com"));
    }

    #[test]
    fn spam_scores_spread_over_a_range() {
        // Figure 2 shows a CDF over 40..100, not a point mass: scores
        // should not all be identical.
        let scores: Vec<f64> = (0..100)
            .map(|i| spam_score(&measurement_spam(i, "t.com")))
            .collect();
        let min = scores.iter().cloned().fold(f64::MAX, f64::min);
        let max = scores.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > min, "scores vary: {min}..{max}");
    }
}
