//! The heuristic spam scorer.
//!
//! Produces a 0–100 score like Proofpoint's. The score is a weighted sum
//! of content features, clamped; [`SPAM_THRESHOLD`] marks the
//! quarantine-as-spam decision. The exact weights are not Proofpoint's
//! (those are proprietary) — what matters for the reproduction is the
//! *separation*: bulk-mail-shaped messages score high, ordinary
//! correspondence scores low, and the measurement templates land firmly in
//! the spam range like the paper's Figure 2 shows.

use underradar_protocols::email::EmailMessage;

/// Score at or above which a message is classified as spam.
pub const SPAM_THRESHOLD: f64 = 50.0;

/// Phrases that bulk mail leans on, with weights.
const SPAM_PHRASES: &[(&str, f64)] = &[
    ("free", 6.0),
    ("winner", 8.0),
    ("won", 5.0),
    ("prize", 8.0),
    ("click here", 10.0),
    ("act now", 9.0),
    ("limited time", 8.0),
    ("no obligation", 9.0),
    ("risk-free", 9.0),
    ("viagra", 14.0),
    ("pharmacy", 10.0),
    ("casino", 10.0),
    ("earn money", 10.0),
    ("work from home", 9.0),
    ("cheap", 5.0),
    ("discount", 5.0),
    ("offer expires", 9.0),
    ("guarantee", 6.0),
    ("million dollars", 12.0),
    ("dear friend", 8.0),
    ("unsubscribe", 4.0),
    ("this is not spam", 15.0),
];

/// Per-feature contributions, for explainability and tests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScoreBreakdown {
    /// Weighted spam-phrase hits.
    pub phrases: f64,
    /// URL density and raw-IP URL contributions.
    pub urls: f64,
    /// Subject-line features (caps, punctuation).
    pub subject: f64,
    /// Header anomalies (missing Message-ID/Date, bulk mailers).
    pub headers: f64,
    /// Sender/link domain mismatch.
    pub mismatch: f64,
    /// Final clamped score.
    pub total: f64,
}

fn phrase_score(msg: &EmailMessage) -> f64 {
    let haystack = format!("{} {}", msg.subject, msg.body).to_ascii_lowercase();
    SPAM_PHRASES
        .iter()
        .filter(|(phrase, _)| haystack.contains(phrase))
        .map(|(_, w)| w)
        .sum()
}

fn url_score(msg: &EmailMessage) -> f64 {
    let urls = msg.url_count() as f64;
    let words = msg.body.split_whitespace().count().max(1) as f64;
    let density = urls / words;
    let mut score = (urls * 3.0).min(12.0) + (density * 60.0).min(12.0);
    // Raw-IP URLs are a strong tell.
    if body_has_raw_ip_url(&msg.body) {
        score += 10.0;
    }
    score
}

fn body_has_raw_ip_url(body: &str) -> bool {
    for prefix in ["http://", "https://"] {
        let mut rest = body;
        while let Some(pos) = rest.find(prefix) {
            let after = &rest[pos + prefix.len()..];
            let host: String = after
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.')
                .collect();
            if host.split('.').count() == 4
                && host
                    .split('.')
                    .all(|o| !o.is_empty() && o.parse::<u8>().is_ok())
            {
                return true;
            }
            rest = &rest[pos + prefix.len()..];
        }
    }
    false
}

fn subject_score(msg: &EmailMessage) -> f64 {
    let mut score = 0.0;
    let letters: Vec<char> = msg
        .subject
        .chars()
        .filter(|c| c.is_ascii_alphabetic())
        .collect();
    if !letters.is_empty() {
        let caps = letters.iter().filter(|c| c.is_ascii_uppercase()).count() as f64;
        let ratio = caps / letters.len() as f64;
        if ratio > 0.6 && letters.len() > 3 {
            score += 10.0;
        }
    }
    let bangs = msg.subject.matches('!').count() as f64;
    score += (bangs * 4.0).min(8.0);
    if msg.subject.contains('$') {
        score += 6.0;
    }
    score
}

fn header_score(msg: &EmailMessage) -> f64 {
    let mut score = 0.0;
    let has = |name: &str| {
        msg.extra_headers
            .iter()
            .any(|(n, _)| n.eq_ignore_ascii_case(name))
    };
    if !has("Message-ID") {
        score += 5.0;
    }
    if !has("Date") {
        score += 4.0;
    }
    if msg
        .extra_headers
        .iter()
        .any(|(n, v)| n.eq_ignore_ascii_case("X-Mailer") && v.to_ascii_lowercase().contains("bulk"))
    {
        score += 8.0;
    }
    if has("Precedence") {
        score += 4.0;
    }
    score
}

fn mismatch_score(msg: &EmailMessage) -> f64 {
    let Some(from_domain) = msg.from_domain() else {
        return 6.0;
    };
    let from_domain = from_domain.to_ascii_lowercase();
    let body = msg.body.to_ascii_lowercase();
    if msg.url_count() > 0 && !body.contains(&from_domain) {
        8.0
    } else {
        0.0
    }
}

/// Score a message with a full per-feature breakdown.
pub fn score_breakdown(msg: &EmailMessage) -> ScoreBreakdown {
    let mut b = ScoreBreakdown {
        phrases: phrase_score(msg),
        urls: url_score(msg),
        subject: subject_score(msg),
        headers: header_score(msg),
        mismatch: mismatch_score(msg),
        total: 0.0,
    };
    b.total = (b.phrases + b.urls + b.subject + b.headers + b.mismatch).clamp(0.0, 100.0);
    b
}

/// The 0–100 spam score of a message.
pub fn spam_score(msg: &EmailMessage) -> f64 {
    score_breakdown(msg).total
}

/// Whether the filter classifies the message as spam.
pub fn is_spam(msg: &EmailMessage) -> bool {
    spam_score(msg) >= SPAM_THRESHOLD
}

/// Mirror a batch of scored messages into `tel` under `spam.*`: message
/// and over-threshold counts (counters) plus a histogram of rounded
/// scores. Counters are idempotent; the histogram appends, so call once
/// per batch.
pub fn export_score_telemetry(tel: &underradar_telemetry::Telemetry, scores: &[f64]) {
    if !tel.is_enabled() {
        return;
    }
    tel.set_counter("spam.messages", scores.len() as u64);
    tel.set_counter(
        "spam.flagged",
        scores.iter().filter(|&&s| s >= SPAM_THRESHOLD).count() as u64,
    );
    let hist = tel.histogram("spam.score");
    for &s in scores {
        hist.observe(s.round().max(0.0) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ham() -> EmailMessage {
        EmailMessage::new(
            "alice@university.example",
            "bob@university.example",
            "Meeting notes from Thursday",
            "Hi Bob,\n\nAttached are the notes from Thursday's seminar. The key \
             action item is to re-run the measurement with the larger topology \
             before the deadline.\n\nBest,\nAlice",
        )
        .with_header("Message-ID", "<abc@university.example>")
        .with_header("Date", "Thu, 02 Jul 2015 10:00:00 -0400")
    }

    fn blatant_spam() -> EmailMessage {
        EmailMessage::new(
            "winner@prizes.example",
            "user@twitter.com",
            "YOU ARE A WINNER!!! CLAIM YOUR PRIZE $$$",
            "Dear friend, you have WON a prize! Act now, this limited time \
             offer expires soon. Click here: http://192.0.2.55/claim and \
             http://prizes-4u.example/win — risk-free, no obligation, \
             guarantee! This is not spam.",
        )
        .with_header("X-Mailer", "bulk-blaster-3000")
    }

    #[test]
    fn ham_scores_low() {
        let s = spam_score(&ham());
        assert!(s < 25.0, "ham scored {s}");
        assert!(!is_spam(&ham()));
    }

    #[test]
    fn blatant_spam_scores_high() {
        let s = spam_score(&blatant_spam());
        assert!(s > 80.0, "spam scored {s}");
        assert!(is_spam(&blatant_spam()));
    }

    #[test]
    fn breakdown_components_nonzero_for_spam() {
        let b = score_breakdown(&blatant_spam());
        assert!(b.phrases > 20.0, "{b:?}");
        assert!(b.urls > 10.0, "{b:?}");
        assert!(b.subject > 10.0, "{b:?}");
        assert!(b.headers > 5.0, "{b:?}");
        assert!(b.mismatch > 0.0, "{b:?}");
        assert!(b.total <= 100.0);
    }

    #[test]
    fn score_is_clamped() {
        let mut over = blatant_spam();
        over.body
            .push_str(&" viagra pharmacy casino earn money million dollars".repeat(5));
        assert_eq!(spam_score(&over), 100.0);
    }

    #[test]
    fn raw_ip_url_detection() {
        assert!(body_has_raw_ip_url("go to http://10.1.2.3/x now"));
        assert!(body_has_raw_ip_url("https://192.0.2.1"));
        assert!(!body_has_raw_ip_url("go to http://example.com/x now"));
        assert!(!body_has_raw_ip_url("no urls at all"));
        assert!(!body_has_raw_ip_url("http://999.1.2.3/ is not an ip"));
    }

    #[test]
    fn missing_headers_raise_score() {
        let with = ham();
        let mut without = ham();
        without.extra_headers.clear();
        assert!(spam_score(&without) > spam_score(&with));
    }

    #[test]
    fn shouting_subject_raises_score() {
        let calm = EmailMessage::new("a@b.c", "d@e.f", "quarterly report", "see attached");
        let shouting = EmailMessage::new("a@b.c", "d@e.f", "QUARTERLY REPORT", "see attached");
        assert!(spam_score(&shouting) > spam_score(&calm));
    }
}
