//! Empirical CDF helper for regenerating Figure 2.

/// Compute the empirical CDF of `values`: returns `(value, fraction ≤ value)`
/// pairs sorted by value. NaNs are dropped.
pub fn empirical_cdf(values: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered"));
    let n = sorted.len();
    if n == 0 {
        return Vec::new();
    }
    sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, (i + 1) as f64 / n as f64))
        .collect()
}

/// Render a CDF as a fixed-width ASCII plot (x = value, y = fraction),
/// mirroring the paper's Figure 2 axes.
pub fn render_ascii(cdf: &[(f64, f64)], x_label: &str, width: usize, height: usize) -> String {
    if cdf.is_empty() {
        return String::from("(empty)\n");
    }
    let x_min = cdf.first().map(|&(v, _)| v).unwrap_or(0.0);
    let x_max = cdf.last().map(|&(v, _)| v).unwrap_or(1.0);
    let span = (x_max - x_min).max(1e-9);
    let mut grid = vec![vec![b' '; width]; height];
    for &(v, f) in cdf {
        let x = (((v - x_min) / span) * (width - 1) as f64).round() as usize;
        let y = ((1.0 - f) * (height - 1) as f64).round() as usize;
        grid[y.min(height - 1)][x.min(width - 1)] = b'*';
    }
    let mut out = String::new();
    out.push_str("1.0 +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    for row in grid {
        out.push_str("    |");
        out.push_str(&String::from_utf8_lossy(&row));
        out.push('\n');
    }
    out.push_str("0.0 +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "     {x_min:<10.1}{}{x_max:>10.1}\n",
        " ".repeat(width.saturating_sub(20))
    ));
    out.push_str(&format!("     {x_label}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let values = [55.0, 70.0, 70.0, 90.0, 41.0];
        let cdf = empirical_cdf(&values);
        assert_eq!(cdf.len(), 5);
        assert_eq!(cdf[0].0, 41.0);
        assert!((cdf.last().expect("nonempty").1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn empty_and_nan_inputs() {
        assert!(empirical_cdf(&[]).is_empty());
        let cdf = empirical_cdf(&[f64::NAN, 1.0]);
        assert_eq!(cdf.len(), 1);
    }

    #[test]
    fn fractions_are_uniform_steps() {
        let cdf = empirical_cdf(&[1.0, 2.0, 3.0, 4.0]);
        let fracs: Vec<f64> = cdf.iter().map(|&(_, f)| f).collect();
        assert_eq!(fracs, vec![0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn ascii_render_has_axes() {
        let cdf = empirical_cdf(&[40.0, 60.0, 80.0, 100.0]);
        let plot = render_ascii(&cdf, "Proofpoint Spam Score", 40, 10);
        assert!(plot.contains("1.0 +"));
        assert!(plot.contains("0.0 +"));
        assert!(plot.contains("Proofpoint Spam Score"));
        assert!(plot.contains('*'));
        assert_eq!(render_ascii(&[], "x", 10, 5), "(empty)\n");
    }
}
