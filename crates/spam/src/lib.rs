#![warn(missing_docs)]
// Library paths must surface failures as typed errors or documented
// invariant expects — never bare unwraps (test code is exempt).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! # underradar-spam
//!
//! A Proofpoint-like heuristic spam scorer.
//!
//! The paper's Figure 2 validates the spam-cloaking method by sending 100
//! measurement emails through the university's Proofpoint deployment and
//! plotting the CDF of spam scores (0 = not spam, 100 = spam): every
//! message scored in the spam range, demonstrating that the measurement
//! traffic *evades as spam*. This crate reproduces that apparatus:
//!
//! * [`score`] — a feature-based scorer over [`EmailMessage`]s with the
//!   classic content heuristics commercial filters use (spammy phrases,
//!   URL density, shouting subjects, header anomalies, raw-IP links).
//! * [`templates`] — the measurement-spam generator (what the Method #2
//!   client sends) and a ham generator for the population baseline.
//! * [`cdf`] — the empirical-CDF helper that regenerates Figure 2.

pub mod cdf;
pub mod score;
pub mod templates;

pub use cdf::empirical_cdf;
pub use score::{is_spam, spam_score, ScoreBreakdown, SPAM_THRESHOLD};
pub use templates::{ham_message, measurement_spam};

pub use underradar_protocols::email::EmailMessage;
