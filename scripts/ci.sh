#!/usr/bin/env bash
# Local CI: the exact gates a PR must pass.
#   ./scripts/ci.sh
# Offline by design — the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test (telemetry disabled)"
cargo build --offline --release --workspace
cargo test --offline -q --workspace

echo "==> tier-1 re-run with telemetry enabled (UNDERRADAR_TELEMETRY=1)"
UNDERRADAR_TELEMETRY=1 cargo test --offline -q --workspace

echo "==> full-scale churn acceptance (release-only sizing)"
cargo test --offline --release -q -p underradar-ids --lib one_million_flow_churn

echo "==> perf smoke (no-op sink + reassembly hold-back overhead bounds)"
cargo bench --offline -p underradar-bench --bench perf -- telemetry reassembly_holdback

echo "==> campaign determinism smoke (sequential vs 4-shard byte identity)"
cargo build --offline --release -p underradar-bench --bin exp_campaign
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
./target/release/exp_campaign --json --shards 1 > "$tmpdir/campaign_1.json"
./target/release/exp_campaign --json --shards 4 > "$tmpdir/campaign_4.json"
cmp "$tmpdir/campaign_1.json" "$tmpdir/campaign_4.json"

echo "==> impairment determinism smoke (reorder/duplicate knobs, 1 vs 4 shards)"
./target/release/exp_campaign --impair --json --shards 1 > "$tmpdir/campaign_impair_1.json"
./target/release/exp_campaign --impair --json --shards 4 > "$tmpdir/campaign_impair_4.json"
cmp "$tmpdir/campaign_impair_1.json" "$tmpdir/campaign_impair_4.json"
if cmp -s "$tmpdir/campaign_1.json" "$tmpdir/campaign_impair_1.json"; then
  echo "impairment knobs had no effect on the campaign output" >&2
  exit 1
fi

echo "CI green"
