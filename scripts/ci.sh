#!/usr/bin/env bash
# Local CI: the exact gates a PR must pass.
#   ./scripts/ci.sh
# Offline by design — the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test (telemetry disabled)"
cargo build --offline --release --workspace
cargo test --offline -q --workspace

echo "==> tier-1 re-run with telemetry enabled (UNDERRADAR_TELEMETRY=1)"
UNDERRADAR_TELEMETRY=1 cargo test --offline -q --workspace

echo "==> full-scale churn acceptance (release-only sizing)"
cargo test --offline --release -q -p underradar-ids --lib one_million_flow_churn

echo "==> engine equivalence (grouped/DFA hot path vs reference semantics)"
# Property-driven: random rulesets and packet schedules through the
# production engine and a naive evaluate-everything reference; alert
# output must be byte-identical (see crates/ids/tests/engine_equiv.rs).
cargo test --offline --release -q -p underradar-ids --test engine_equiv

echo "==> perf bench + snapshot schema (all acceptance bounds; BENCH_perf.json drift)"
# The committed snapshot pins the bench *schema* — the set of quoted
# strings (bench names + JSON keys); timings drift run to run and are
# not compared. An unfiltered bench run rewrites the file in place, so
# stash the committed copy first and restore it after the check.
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
cp BENCH_perf.json "$tmpdir/BENCH_perf.committed.json"
cargo bench --offline -p underradar-bench --bench perf
grep -o '"[^"]*"' "$tmpdir/BENCH_perf.committed.json" | sort > "$tmpdir/schema_committed"
grep -o '"[^"]*"' BENCH_perf.json | sort > "$tmpdir/schema_fresh"
if ! diff -u "$tmpdir/schema_committed" "$tmpdir/schema_fresh"; then
  echo "BENCH_perf.json schema drifted: re-run 'cargo bench --bench perf' and commit the new snapshot" >&2
  cp "$tmpdir/BENCH_perf.committed.json" BENCH_perf.json
  exit 1
fi
cp "$tmpdir/BENCH_perf.committed.json" BENCH_perf.json

echo "==> e14 population-scale smoke (120k flows; batch + 1-vs-4-shard identity internal)"
# The experiment itself asserts flow residency under the per-flow byte
# budget, batched-vs-per-packet verdict identity, and 1-vs-4-shard merged
# output identity; stdout is deterministic (throughput goes to stderr),
# so a double run pins report byte-stability too.
cargo build --offline --release -p underradar-bench --bin exp_e14_scale
./target/release/exp_e14_scale > "$tmpdir/e14_a.txt" 2>/dev/null
./target/release/exp_e14_scale > "$tmpdir/e14_b.txt" 2>/dev/null
cmp "$tmpdir/e14_a.txt" "$tmpdir/e14_b.txt"
grep -q "batched vs per-packet verdicts: identical" "$tmpdir/e14_a.txt"
grep -q "shard merged output: byte-identical" "$tmpdir/e14_a.txt"
grep -q "PASSED" "$tmpdir/e14_a.txt"

echo "==> e13 divergence-matrix smoke (35-cell golden; 1-vs-4-shard verdict identity)"
# The matrix sweep is fully deterministic (seeded impairments, trace time
# = schedule position), so a double run pins report byte-stability, the
# golden line pins the divergence count, and the shard line pins that
# worker count cannot change campaign verdicts.
cargo build --offline --release -p underradar-bench --bin exp_e13_evasion
./target/release/exp_e13_evasion > "$tmpdir/e13_a.txt" 2>/dev/null
./target/release/exp_e13_evasion > "$tmpdir/e13_b.txt" 2>/dev/null
cmp "$tmpdir/e13_a.txt" "$tmpdir/e13_b.txt"
grep -q "divergence matrix: 35 cells, 30 verdict flips" "$tmpdir/e13_a.txt"
grep -q "1-vs-4-shard verdicts: byte-identical" "$tmpdir/e13_a.txt"
grep -q "PASSED" "$tmpdir/e13_a.txt"

echo "==> campaign determinism smoke (sequential vs 4-shard byte identity)"
cargo build --offline --release -p underradar-bench --bin exp_campaign
./target/release/exp_campaign --json --shards 1 > "$tmpdir/campaign_1.json"
./target/release/exp_campaign --json --shards 4 > "$tmpdir/campaign_4.json"
cmp "$tmpdir/campaign_1.json" "$tmpdir/campaign_4.json"

echo "==> impairment determinism smoke (reorder/duplicate knobs, 1 vs 4 shards)"
./target/release/exp_campaign --impair --json --shards 1 > "$tmpdir/campaign_impair_1.json"
./target/release/exp_campaign --impair --json --shards 4 > "$tmpdir/campaign_impair_4.json"
cmp "$tmpdir/campaign_impair_1.json" "$tmpdir/campaign_impair_4.json"
if cmp -s "$tmpdir/campaign_1.json" "$tmpdir/campaign_impair_1.json"; then
  echo "impairment knobs had no effect on the campaign output" >&2
  exit 1
fi

echo "==> flight-recorder smoke (--trace: report unchanged, shard-stable, chains non-empty)"
./target/release/exp_campaign --shards 1 > "$tmpdir/campaign_plain.txt"
./target/release/exp_campaign --trace --shards 1 > "$tmpdir/campaign_trace_1.txt"
./target/release/exp_campaign --trace --shards 4 > "$tmpdir/campaign_trace_4.txt"
# Tracing is additive: the traced output must start with the exact bytes
# of the untraced report (so leaving --trace off can never change results),
# and must itself be byte-identical across shard counts.
plain_bytes=$(wc -c < "$tmpdir/campaign_plain.txt")
head -c "$plain_bytes" "$tmpdir/campaign_trace_1.txt" | cmp - "$tmpdir/campaign_plain.txt"
cmp "$tmpdir/campaign_trace_1.txt" "$tmpdir/campaign_trace_4.txt"
# Every non-Inconclusive verdict must come with a non-empty causal chain:
# the explainer may answer "because=no-recorded-decisions" only for
# inconclusive trials.
awk '
  /^--- explain ---$/ { in_explain = 1; next }
  in_explain && /^trial=/ {
    chains++
    if ($0 !~ /verdict=inconclusive/ && $0 ~ /because=no-recorded-decisions/) {
      print "unexplained verdict: " $0; bad = 1
    }
  }
  END {
    if (chains == 0) { print "no explainer chains in traced output"; exit 1 }
    print "explainer chains: " chains
    exit bad
  }
' "$tmpdir/campaign_trace_1.txt"

echo "==> run-service smoke (service vs plain engine; 1 vs 8 workers byte identity)"
./target/release/exp_campaign --service --shards 1 > "$tmpdir/service_1.txt" 2>/dev/null
./target/release/exp_campaign --service --shards 8 > "$tmpdir/service_8.txt" 2>/dev/null
cmp "$tmpdir/campaign_plain.txt" "$tmpdir/service_1.txt"
cmp "$tmpdir/service_1.txt" "$tmpdir/service_8.txt"

echo "==> safety-audit smoke (--audit: double run, 1-vs-4-shard and service-vs-batch identity)"
# The exposure ledger rides the merged telemetry registry, so the audit
# inherits the campaign's determinism contract: byte-identical for any
# shard count and for the durable service vs the plain engine. The paper
# matrix must also surface at least one declared-vs-observed divergence
# (a cell that declares itself fully evaded while the adversary holds
# attributable events).
./target/release/exp_campaign --audit > "$tmpdir/audit_a.txt" 2>/dev/null
./target/release/exp_campaign --audit > "$tmpdir/audit_b.txt" 2>/dev/null
cmp "$tmpdir/audit_a.txt" "$tmpdir/audit_b.txt"
./target/release/exp_campaign --audit --shards 4 > "$tmpdir/audit_4.txt" 2>/dev/null
cmp "$tmpdir/audit_a.txt" "$tmpdir/audit_4.txt"
./target/release/exp_campaign --audit --service --shards 8 > "$tmpdir/audit_svc.txt" 2>/dev/null
cmp "$tmpdir/audit_a.txt" "$tmpdir/audit_svc.txt"
grep -q '^divergence: ' "$tmpdir/audit_a.txt"
# Auditing is additive: the plain report's exact bytes lead the output.
head -c "$plain_bytes" "$tmpdir/audit_a.txt" | cmp - "$tmpdir/campaign_plain.txt"

echo "==> crash-resume smoke (SIGKILL mid-run, resume from journal, byte identity vs clean run)"
# A synthetic matrix big enough that the kill lands mid-run (~5s clean on
# CI hardware); the resumed run must both restore journaled trials and
# execute the remainder, and its stdout must match the uninterrupted run.
n=30000
./target/release/exp_campaign --service --synthetic "$n" --shards 4 > "$tmpdir/service_clean.txt" 2>/dev/null
./target/release/exp_campaign --service --synthetic "$n" --shards 4 \
  --checkpoint "$tmpdir/ckpt.journal" > /dev/null 2>&1 &
victim=$!
sleep 1.5
kill -9 "$victim" 2>/dev/null || true
wait "$victim" 2>/dev/null || true
./target/release/exp_campaign --service --synthetic "$n" --shards 4 \
  --checkpoint "$tmpdir/ckpt.journal" > "$tmpdir/service_resumed.txt" 2> "$tmpdir/service_resumed.err"
cmp "$tmpdir/service_clean.txt" "$tmpdir/service_resumed.txt"
grep -E 'service: [0-9]+ executed, [0-9]+ restored' "$tmpdir/service_resumed.err"
if grep -qE 'service: 0 executed|service: [0-9]+ executed, 0 restored' "$tmpdir/service_resumed.err"; then
  echo "crash-resume smoke did not exercise a mid-run kill (adjust n or the sleep)" >&2
  exit 1
fi

echo "==> progress smoke (--progress: snapshots stream on stderr, stdout untouched)"
# Interval snapshots go to stderr only; stdout must be byte-identical to
# the silent run of the same matrix (service_clean.txt from above).
./target/release/exp_campaign --service --synthetic "$n" --shards 4 --progress=5000 \
  > "$tmpdir/progress_on.txt" 2> "$tmpdir/progress_on.err"
cmp "$tmpdir/service_clean.txt" "$tmpdir/progress_on.txt"
grep -q '"rows_per_sec"' "$tmpdir/progress_on.err"

echo "CI green"
