//! Robustness across seeds: the headline conclusions must not depend on a
//! lucky RNG stream. Each scenario runs under several seeds; verdicts and
//! evasion outcomes must be identical in every run.

use underradar::censor::CensorPolicy;
use underradar::core::methods::scan::SynScanProbe;
use underradar::core::methods::spam::SpamProbe;
use underradar::core::methods::stateless::StatelessDnsMimicry;
use underradar::core::ports::top_ports;
use underradar::core::probe::Probe;
use underradar::core::risk::RiskReport;
use underradar::core::testbed::{TargetSite, Testbed, TestbedConfig};
use underradar::netsim::addr::Cidr;
use underradar::netsim::time::SimTime;
use underradar::protocols::dns::{DnsName, QType};

const SEEDS: [u64; 5] = [1, 42, 1337, 9001, 123_456];

#[test]
fn scan_conclusions_stable_across_seeds() {
    let target = TargetSite::numbered("twitter.com", 0).web_ip;
    for &seed in &SEEDS {
        let policy = CensorPolicy::new().block_ip(Cidr::host(target));
        let mut tb = Testbed::build(TestbedConfig {
            policy,
            seed,
            ..TestbedConfig::default()
        });
        let idx = tb.spawn_on_client(
            SimTime::ZERO,
            Box::new(SynScanProbe::new(target, top_ports(40), vec![80])),
        );
        tb.run_secs(30);
        let verdict = tb.client_task::<SynScanProbe>(idx).expect("scan").verdict();
        let report = RiskReport::evaluate(&tb, &verdict);
        assert!(verdict.is_censored(), "seed {seed}: {verdict}");
        assert!(report.evades(), "seed {seed}: {}", report.summary());
    }
}

#[test]
fn spam_dns_detection_stable_across_seeds() {
    for &seed in &SEEDS {
        let policy = CensorPolicy::new().block_domain(&DnsName::parse("twitter.com").expect("n"));
        let mut tb = Testbed::build(TestbedConfig {
            policy,
            seed,
            ..TestbedConfig::default()
        });
        let idx = tb.spawn_on_client(
            SimTime::ZERO,
            Box::new(SpamProbe::new(
                &DnsName::parse("twitter.com").expect("n"),
                tb.resolver_ip,
                seed,
            )),
        );
        tb.run_secs(30);
        let verdict = tb.client_task::<SpamProbe>(idx).expect("probe").verdict();
        assert_eq!(
            verdict.mechanism(),
            Some(underradar::core::verdict::Mechanism::DnsPoison),
            "seed {seed}"
        );
    }
}

#[test]
fn stateless_anonymity_set_exact_across_seeds() {
    for &seed in &SEEDS {
        let policy = CensorPolicy::new().block_domain(&DnsName::parse("twitter.com").expect("n"));
        let mut tb = Testbed::build(TestbedConfig {
            policy,
            seed,
            cover_hosts: 6,
            ..TestbedConfig::default()
        });
        let cover = tb.cover_ips.clone();
        let idx = tb.spawn_on_client(
            SimTime::ZERO,
            Box::new(StatelessDnsMimicry::new(
                &DnsName::parse("twitter.com").expect("n"),
                QType::A,
                tb.resolver_ip,
                cover.clone(),
            )),
        );
        tb.run_secs(10);
        let verdict = tb
            .client_task::<StatelessDnsMimicry>(idx)
            .expect("p")
            .verdict();
        let report = RiskReport::evaluate(&tb, &verdict);
        assert_eq!(report.anonymity_set, Some(cover.len() + 1), "seed {seed}");
    }
}

#[test]
fn no_false_positives_in_uncensored_worlds_across_seeds() {
    // The accuracy half nobody should forget: with no censorship, no
    // method may ever claim censorship, whatever the seed.
    for &seed in &SEEDS {
        let mut tb = Testbed::build(TestbedConfig {
            seed,
            ..TestbedConfig::default()
        });
        let web = tb.target("bbc.com").expect("t").web_ip;
        let scan_idx = tb.spawn_on_client(
            SimTime::ZERO,
            Box::new(SynScanProbe::new(web, vec![80, 443, 22], vec![80])),
        );
        let spam_idx = tb.spawn_on_client(
            SimTime::ZERO + underradar::netsim::SimDuration::from_secs(8),
            Box::new(SpamProbe::new(
                &DnsName::parse("bbc.com").expect("n"),
                tb.resolver_ip,
                seed,
            )),
        );
        tb.run_secs(40);
        let scan = tb
            .client_task::<SynScanProbe>(scan_idx)
            .expect("scan")
            .verdict();
        let spam = tb
            .client_task::<SpamProbe>(spam_idx)
            .expect("spam")
            .verdict();
        assert!(scan.is_reachable(), "seed {seed}: scan said {scan}");
        assert!(spam.is_reachable(), "seed {seed}: spam said {spam}");
    }
}
