//! §4.1's hosting argument: "The rise of cloud services makes it possible
//! to host the measurement target in a location that may resemble a real
//! target of interest, thereby evading blocking. For example, the target
//! could be hosted on Amazon Web Services, which shares IP ranges with
//! real measurement targets."
//!
//! These tests model the economics: a censor can blackhole the
//! measurement server's exact address, but as soon as the measurer moves
//! within the shared prefix, the censor's only durable options are
//! whack-a-mole or blocking the whole prefix — which takes down the real
//! services hosted beside it (collateral damage).

use std::net::Ipv4Addr;

use underradar::censor::CensorPolicy;
use underradar::core::methods::ddos::DdosProbe;
use underradar::core::testbed::{Testbed, TestbedConfig};
use underradar::netsim::addr::Cidr;
use underradar::netsim::time::{SimDuration, SimTime};

/// The testbed's collector (198.51.100.99) and measurement server
/// (198.51.100.200) share the 198.51.100.0/24 "cloud" prefix by
/// construction; we stand up web service on the collector to play the
/// innocent cloud tenant.
const CLOUD_PREFIX: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 0);

fn fetch_status(tb: &Testbed, idx: usize) -> Option<u16> {
    tb.client_task::<DdosProbe>(idx).and_then(|p| {
        p.samples.first().and_then(|s| match s {
            underradar::core::methods::ddos::SampleOutcome::Status(code) => Some(*code),
            _ => None,
        })
    })
}

#[test]
fn exact_block_hits_only_the_measurement_server() {
    // Censor blackholes the measurement server's /32.
    let policy = CensorPolicy::new().block_ip(Cidr::host(Ipv4Addr::new(198, 51, 100, 200)));
    let mut tb = Testbed::build(TestbedConfig {
        policy,
        seed: 300,
        ..TestbedConfig::default()
    });
    // The innocent tenant (a normal website) stays reachable.
    let innocent = tb.target("bbc.com").expect("t").web_ip;
    let idx = tb.spawn_on_client(
        SimTime::ZERO,
        Box::new(DdosProbe::new(innocent, "bbc.com", "/", 1)),
    );
    tb.run_secs(30);
    assert_eq!(fetch_status(&tb, idx), Some(200));
}

#[test]
fn prefix_block_causes_collateral_damage() {
    // The durable counter-measure — blocking the whole shared /24 — takes
    // the collector-hosted real service down with it.
    let policy = CensorPolicy::new().block_ip(Cidr::slash24(CLOUD_PREFIX));
    let mut tb = Testbed::build(TestbedConfig {
        policy,
        seed: 301,
        ..TestbedConfig::default()
    });
    let collector = tb.collector_ip;
    assert!(
        Cidr::slash24(CLOUD_PREFIX).contains(collector),
        "shared prefix by construction"
    );
    assert!(Cidr::slash24(CLOUD_PREFIX).contains(tb.mserver_ip));

    // A legitimate fetch of the cloud-hosted service (the collector's web
    // endpoint) now times out: collateral damage.
    struct CloudFetch {
        target: Ipv4Addr,
        timed_out: bool,
    }
    impl underradar::netsim::HostTask for CloudFetch {
        fn on_start(&mut self, api: &mut underradar::netsim::HostApi<'_, '_>) {
            api.tcp_connect(self.target, 443);
        }
        fn on_tcp(
            &mut self,
            _api: &mut underradar::netsim::HostApi<'_, '_>,
            _c: underradar::netsim::ConnId,
            ev: underradar::netsim::TcpEvent,
        ) {
            if ev == underradar::netsim::TcpEvent::TimedOut {
                self.timed_out = true;
            }
        }
    }
    let idx = tb.spawn_on_client(
        SimTime::ZERO,
        Box::new(CloudFetch {
            target: collector,
            timed_out: false,
        }),
    );
    tb.run_secs(30);
    let host = tb
        .sim
        .node_ref::<underradar::netsim::Host>(tb.client)
        .expect("client");
    assert!(
        host.task_ref::<CloudFetch>(idx).expect("task").timed_out,
        "the innocent cloud service died with the prefix block"
    );
    // And sites outside the cloud prefix are unaffected.
    let outside = tb.target("example.org").expect("t").web_ip;
    let idx2 = tb.spawn_on_client(
        SimTime::ZERO + SimDuration::from_secs(1),
        Box::new(DdosProbe::new(outside, "example.org", "/", 1)),
    );
    tb.run_secs(30);
    assert_eq!(fetch_status(&tb, idx2), Some(200));
}

#[test]
fn measurer_can_rotate_within_the_shared_prefix() {
    // Whack-a-mole: a /32 block on the old address does nothing once the
    // measurer rotates to a new one in the same prefix.
    let old_addr = Ipv4Addr::new(198, 51, 100, 200);
    let policy = CensorPolicy::new().block_ip(Cidr::host(old_addr));
    let mut tb = Testbed::build(TestbedConfig {
        policy,
        seed: 302,
        ..TestbedConfig::default()
    });
    // The collector (a different address in the same /24) stands in for
    // the rotated measurement endpoint.
    let rotated = tb.collector_ip;
    struct Reach {
        target: Ipv4Addr,
        connected: bool,
    }
    impl underradar::netsim::HostTask for Reach {
        fn on_start(&mut self, api: &mut underradar::netsim::HostApi<'_, '_>) {
            api.tcp_connect(self.target, 443);
        }
        fn on_tcp(
            &mut self,
            _api: &mut underradar::netsim::HostApi<'_, '_>,
            _c: underradar::netsim::ConnId,
            ev: underradar::netsim::TcpEvent,
        ) {
            if ev == underradar::netsim::TcpEvent::Connected {
                self.connected = true;
            }
        }
    }
    let idx = tb.spawn_on_client(
        SimTime::ZERO,
        Box::new(Reach {
            target: rotated,
            connected: false,
        }),
    );
    tb.run_secs(10);
    let host = tb
        .sim
        .node_ref::<underradar::netsim::Host>(tb.client)
        .expect("client");
    assert!(
        host.task_ref::<Reach>(idx).expect("task").connected,
        "rotation defeats /32 blocks"
    );
}
