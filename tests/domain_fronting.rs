//! §4.1's fronting remark: "The use of specially crafted Web requests and
//! the use of domain fronting may also make it possible to create a wide
//! range of stateful mimicry traffic."
//!
//! Model: the censor filters HTTP by the domain appearing in the request
//! (Host header / URL). A fronted request reaches the measurement endpoint
//! through a shared cloud IP while its visible Host header names an
//! innocuous domain — the censor's string matching finds nothing.

use std::net::Ipv4Addr;

use underradar::censor::CensorPolicy;
use underradar::core::testbed::{Testbed, TestbedConfig};
use underradar::netsim::time::SimTime;
use underradar::netsim::{ConnId, HostApi, HostTask, TcpEvent};
use underradar::protocols::http::{HttpRequest, HttpResponse};

/// Fetch `path` from `target` with an arbitrary Host header.
struct FrontedFetch {
    target: Ipv4Addr,
    host_header: String,
    path: String,
    status: Option<u16>,
    reset: bool,
    buf: Vec<u8>,
}

impl FrontedFetch {
    fn new(target: Ipv4Addr, host_header: &str, path: &str) -> Self {
        FrontedFetch {
            target,
            host_header: host_header.to_string(),
            path: path.to_string(),
            status: None,
            reset: false,
            buf: Vec::new(),
        }
    }
}

impl HostTask for FrontedFetch {
    fn on_start(&mut self, api: &mut HostApi<'_, '_>) {
        api.tcp_connect(self.target, 443);
    }
    fn on_tcp(&mut self, api: &mut HostApi<'_, '_>, conn: ConnId, ev: TcpEvent) {
        match ev {
            TcpEvent::Connected => {
                let req = HttpRequest::get(&self.host_header, &self.path);
                api.tcp_send(conn, &req.to_wire());
            }
            TcpEvent::Data(d) => {
                self.buf.extend_from_slice(&d);
                if let Ok(resp) = HttpResponse::parse(&self.buf) {
                    self.status = Some(resp.status);
                }
            }
            TcpEvent::Reset => self.reset = true,
            _ => {}
        }
    }
}

fn run_fetch(policy: CensorPolicy, host_header: &str) -> (Option<u16>, bool) {
    let mut tb = Testbed::build(TestbedConfig {
        policy,
        seed: 400,
        ..TestbedConfig::default()
    });
    // The collector host doubles as the shared cloud frontend (port 443
    // serves content regardless of Host header, like a CDN edge).
    let edge = tb.collector_ip;
    let idx = tb.spawn_on_client(
        SimTime::ZERO,
        Box::new(FrontedFetch::new(edge, host_header, "/")),
    );
    tb.run_secs(20);
    let host = tb
        .sim
        .node_ref::<underradar::netsim::Host>(tb.client)
        .expect("client");
    let task = host.task_ref::<FrontedFetch>(idx).expect("task");
    (task.status, task.reset)
}

#[test]
fn naming_the_blocked_domain_gets_the_flow_killed() {
    // The censor string-matches the blocked domain anywhere in TCP payload.
    let policy = CensorPolicy::new().block_keyword("blocked-news.example");
    let (status, reset) = run_fetch(policy, "blocked-news.example");
    assert!(reset, "overt Host header draws the RST");
    assert_eq!(status, None);
}

#[test]
fn fronted_request_to_the_same_edge_passes() {
    let policy = CensorPolicy::new().block_keyword("blocked-news.example");
    let (status, reset) = run_fetch(policy, "cdn-assets.example");
    assert!(!reset, "innocuous front evades the string matcher");
    assert_eq!(
        status,
        Some(200),
        "same edge IP, same content, no interference"
    );
}

#[test]
fn fronting_defeats_url_filtering_too() {
    let policy = CensorPolicy::new().block_url("/banned-report");
    // The fronted request hides the real resource behind an innocuous path
    // (the mapping happens at the edge, out of the censor's sight).
    let (status, reset) = run_fetch(policy, "cdn-assets.example");
    assert!(!reset);
    assert_eq!(status, Some(200));
}
