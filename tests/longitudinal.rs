//! Longitudinal risk: running measurements *repeatedly* is where overt and
//! covert techniques diverge hardest. One overt probe is one alert; a
//! monitoring campaign is an alert stream that walks the client up the
//! analyst's ranking. The covert methods stay flat at zero.

use underradar::censor::CensorPolicy;
use underradar::core::methods::overt::OvertProbe;
use underradar::core::methods::scan::SynScanProbe;
use underradar::core::ports::top_ports;
use underradar::core::probe::Probe;
use underradar::core::testbed::{TargetSite, Testbed, TestbedConfig};
use underradar::netsim::time::{SimDuration, SimTime};
use underradar::protocols::dns::DnsName;

#[test]
fn repeated_overt_monitoring_escalates_to_pursuit() {
    let policy = CensorPolicy::new().block_domain(&DnsName::parse("twitter.com").expect("n"));
    let mut tb = Testbed::build(TestbedConfig {
        policy,
        seed: 500,
        ..TestbedConfig::default()
    });
    let resolver = tb.resolver_ip;
    let collector = tb.collector_ip;
    // A daily-monitoring campaign, compressed: 8 rounds of the same probe.
    for round in 0..8u64 {
        let d = DnsName::parse("twitter.com").expect("n");
        tb.spawn_on_client(
            SimTime::ZERO + SimDuration::from_secs(round * 30),
            Box::new(OvertProbe::new(&d, resolver, collector, "/")),
        );
    }
    tb.run_secs(8 * 30 + 30);
    let s = tb.surveillance();
    let alerts = s.alerts_for(tb.client_ip);
    assert!(
        alerts >= 16,
        "each round adds lookup + collector alerts: {alerts}"
    );
    assert!(s.is_attributed(tb.client_ip));
    assert!(
        s.is_pursued(tb.client_ip),
        "sustained overt monitoring gets the user pursued"
    );
}

#[test]
fn repeated_covert_monitoring_stays_flat() {
    let target = TargetSite::numbered("twitter.com", 0).web_ip;
    let policy = CensorPolicy::new().block_ip(underradar::netsim::addr::Cidr::host(target));
    let mut tb = Testbed::build(TestbedConfig {
        policy,
        seed: 501,
        ..TestbedConfig::default()
    });
    // The same 8-round campaign, scan-cloaked.
    for round in 0..8u64 {
        tb.spawn_on_client(
            SimTime::ZERO + SimDuration::from_secs(round * 30),
            Box::new(SynScanProbe::new(target, top_ports(40), vec![80])),
        );
    }
    tb.run_secs(8 * 30 + 60);
    let s = tb.surveillance();
    assert_eq!(s.alerts_for(tb.client_ip), 0, "8 rounds, zero alerts");
    assert!(!s.is_attributed(tb.client_ip));
    // And the campaign kept measuring correctly the whole time.
    for idx in 0..8 {
        let verdict = tb.client_task::<SynScanProbe>(idx).expect("scan").verdict();
        assert!(verdict.is_censored(), "round {idx}: {verdict}");
    }
}

#[test]
fn alert_retention_outlives_the_measurement_campaign() {
    // §2.1: alerts are kept ~a year. A one-day campaign's alerts are still
    // in the store long after content and metadata have been evicted.
    let policy = CensorPolicy::new().block_domain(&DnsName::parse("twitter.com").expect("n"));
    let mut tb = Testbed::build(TestbedConfig {
        policy,
        seed: 502,
        ..TestbedConfig::default()
    });
    let resolver = tb.resolver_ip;
    let collector = tb.collector_ip;
    let d = DnsName::parse("twitter.com").expect("n");
    tb.spawn_on_client(
        SimTime::ZERO,
        Box::new(OvertProbe::new(&d, resolver, collector, "/")),
    );
    tb.run_secs(30);
    let alerts_now = tb.surveillance().stores().alerts.len();
    assert!(alerts_now > 0);
    // 40 days later: metadata (30 d) gone, alerts (1 y) remain.
    tb.sim
        .run_until(SimTime::ZERO + SimDuration::from_days(40))
        .expect("idle fast-forward");
    // Eviction is lazy (happens on insert), so trigger it with one more
    // observed packet.
    tb.spawn_on_client(
        SimTime::ZERO + SimDuration::from_days(40),
        Box::new(SynScanProbe::new(
            TargetSite::numbered("bbc.com", 10).web_ip,
            vec![80],
            vec![80],
        )),
    );
    tb.run_secs(10);
    let s = tb.surveillance();
    assert!(
        s.stores().alerts.len() >= alerts_now,
        "alerts survive 40 days"
    );
    assert!(
        s.stores().metadata.len() < s.stores().metadata.total_inserted() as usize,
        "old flow metadata evicted"
    );
}
