//! Cross-crate integration tests: full measurement scenarios running
//! through the assembled testbed (netsim + protocols + ids + censor +
//! surveil + core).

use underradar::censor::CensorPolicy;
use underradar::core::methods::ddos::DdosProbe;
use underradar::core::methods::overt::OvertProbe;
use underradar::core::methods::scan::SynScanProbe;
use underradar::core::methods::spam::SpamProbe;
use underradar::core::methods::stateless::{StatelessDnsMimicry, StatelessSynMimicry};
use underradar::core::ports::top_ports;
use underradar::core::probe::Probe;
use underradar::core::testbed::{TargetSite, Testbed, TestbedConfig};
use underradar::core::verdict::Mechanism;
use underradar::netsim::addr::Cidr;
use underradar::netsim::time::{SimDuration, SimTime};
use underradar::protocols::dns::{DnsName, QType};

fn name(s: &str) -> DnsName {
    DnsName::parse(s).expect("valid domain literal")
}

#[test]
fn every_method_agrees_on_an_uncensored_world() {
    // With no censorship at all, all methods should read "reachable" and
    // nothing should be attributed to the client.
    let mut tb = Testbed::build(TestbedConfig {
        seed: 100,
        ..TestbedConfig::default()
    });
    let resolver = tb.resolver_ip;
    let web = tb.target("bbc.com").expect("bbc").web_ip;

    let overt = tb.spawn_on_client(
        SimTime::ZERO,
        Box::new(OvertProbe::new(
            &name("bbc.com"),
            resolver,
            tb.collector_ip,
            "/",
        )),
    );
    let scan = tb.spawn_on_client(
        SimTime::ZERO + SimDuration::from_secs(5),
        Box::new(SynScanProbe::new(web, vec![80, 443], vec![80])),
    );
    let spam = tb.spawn_on_client(
        SimTime::ZERO + SimDuration::from_secs(12),
        Box::new(SpamProbe::new(&name("bbc.com"), resolver, 1)),
    );
    let ddos = tb.spawn_on_client(
        SimTime::ZERO + SimDuration::from_secs(20),
        Box::new(DdosProbe::new(web, "bbc.com", "/", 10)),
    );
    let mimicry = tb.spawn_on_client(
        SimTime::ZERO + SimDuration::from_secs(30),
        Box::new(StatelessDnsMimicry::new(
            &name("bbc.com"),
            QType::A,
            resolver,
            vec![],
        )),
    );
    tb.run_secs(90);

    assert!(tb
        .client_task::<OvertProbe>(overt)
        .expect("overt")
        .verdict()
        .is_reachable());
    assert!(tb
        .client_task::<SynScanProbe>(scan)
        .expect("scan")
        .verdict()
        .is_reachable());
    assert!(tb
        .client_task::<SpamProbe>(spam)
        .expect("spam")
        .verdict()
        .is_reachable());
    assert!(tb
        .client_task::<DdosProbe>(ddos)
        .expect("ddos")
        .verdict()
        .is_reachable());
    assert!(tb
        .client_task::<StatelessDnsMimicry>(mimicry)
        .expect("mimicry")
        .verdict()
        .is_reachable());
    assert!(!tb.censor_acted());
}

#[test]
fn methods_detect_the_mechanisms_they_are_built_for() {
    // DNS poisoning.
    {
        let policy = CensorPolicy::new().block_domain(&name("twitter.com"));
        let mut tb = Testbed::build(TestbedConfig {
            policy,
            seed: 101,
            ..TestbedConfig::default()
        });
        let idx = tb.spawn_on_client(
            SimTime::ZERO,
            Box::new(SpamProbe::new(&name("twitter.com"), tb.resolver_ip, 3)),
        );
        tb.run_secs(30);
        assert_eq!(
            tb.client_task::<SpamProbe>(idx)
                .expect("probe")
                .verdict()
                .mechanism(),
            Some(Mechanism::DnsPoison)
        );
    }
    // IP blackholing.
    {
        let target = TargetSite::numbered("twitter.com", 0).web_ip;
        let policy = CensorPolicy::new().block_ip(Cidr::host(target));
        let mut tb = Testbed::build(TestbedConfig {
            policy,
            seed: 102,
            ..TestbedConfig::default()
        });
        let idx = tb.spawn_on_client(
            SimTime::ZERO,
            Box::new(StatelessSynMimicry::new(target, 80, tb.cover_ips.clone())),
        );
        tb.run_secs(10);
        assert_eq!(
            tb.client_task::<StatelessSynMimicry>(idx)
                .expect("probe")
                .verdict()
                .mechanism(),
            Some(Mechanism::Blackhole)
        );
    }
    // Keyword RST injection.
    {
        let policy = CensorPolicy::new().block_keyword("falun");
        let mut tb = Testbed::build(TestbedConfig {
            policy,
            seed: 103,
            ..TestbedConfig::default()
        });
        let web = tb.target("bbc.com").expect("bbc").web_ip;
        let idx = tb.spawn_on_client(
            SimTime::ZERO,
            Box::new(DdosProbe::new(web, "bbc.com", "/falun", 10)),
        );
        tb.run_secs(60);
        assert_eq!(
            tb.client_task::<DdosProbe>(idx)
                .expect("probe")
                .verdict()
                .mechanism(),
            Some(Mechanism::RstInjection)
        );
    }
}

#[test]
fn identical_seeds_give_identical_runs() {
    let run = |seed: u64| -> (String, usize, u64) {
        let policy = CensorPolicy::new().block_domain(&name("twitter.com"));
        let mut tb = Testbed::build(TestbedConfig {
            policy,
            seed,
            ..TestbedConfig::default()
        });
        let idx = tb.spawn_on_client(
            SimTime::ZERO,
            Box::new(OvertProbe::new(
                &name("twitter.com"),
                tb.resolver_ip,
                tb.collector_ip,
                "/",
            )),
        );
        tb.run_secs(20);
        let verdict = tb
            .client_task::<OvertProbe>(idx)
            .expect("probe")
            .verdict()
            .to_string();
        let alerts = tb.surveillance().alerts_for(tb.client_ip);
        (verdict, alerts, tb.sim.events_processed())
    };
    let a = run(9);
    let b = run(9);
    assert_eq!(a, b, "same seed, same everything");
    let c = run(10);
    assert_eq!(a.0, c.0, "conclusions are seed-independent");
}

#[test]
fn surveillance_sees_everything_but_keeps_content_selectively() {
    let mut tb = Testbed::build(TestbedConfig {
        seed: 104,
        ..TestbedConfig::default()
    });
    let web = tb.target("example.org").expect("t").web_ip;
    tb.spawn_on_client(
        SimTime::ZERO,
        Box::new(SynScanProbe::new(web, top_ports(40), vec![80])),
    );
    tb.run_secs(30);
    let s = tb.surveillance();
    let stats = s.stats();
    assert!(stats.observed > 40);
    assert!(stats.discarded > 0, "scan class discarded");
    // Metadata for everything observed; content only for retained.
    assert_eq!(s.stores().metadata.total_inserted(), stats.observed);
    assert!(s.stores().content.total_inserted() < stats.observed);
}

#[test]
fn censor_overblocking_hits_innocent_traffic_too() {
    // §2.1: "censors block a lot of content and often have a tendency to
    // overblock." A keyword policy resets ANY flow carrying the keyword —
    // including an innocent user's — which is exactly what measurement
    // exploits but also what collateral damage looks like.
    let policy = CensorPolicy::new().block_keyword("falun");
    let mut tb = Testbed::build(TestbedConfig {
        policy,
        seed: 105,
        ..TestbedConfig::default()
    });
    let web = tb.target("bbc.com").expect("t").web_ip;
    // An innocent search query containing the keyword as a substring.
    let idx = tb.spawn_on_client(
        SimTime::ZERO,
        Box::new(DdosProbe::new(
            web,
            "bbc.com",
            "/search?q=falun+dafa+history",
            3,
        )),
    );
    tb.run_secs(30);
    let probe = tb.client_task::<DdosProbe>(idx).expect("probe");
    assert!(probe.verdict().is_censored(), "overblocking confirmed");
}

#[test]
fn capture_shows_injected_rsts_racing_real_traffic() {
    let policy = CensorPolicy::new().block_keyword("falun");
    let mut tb = Testbed::build(TestbedConfig {
        policy,
        capture: true,
        seed: 106,
        ..TestbedConfig::default()
    });
    let web = tb.target("bbc.com").expect("t").web_ip;
    tb.spawn_on_client(
        SimTime::ZERO,
        Box::new(DdosProbe::new(web, "bbc.com", "/falun", 2)),
    );
    tb.run_secs(30);
    let cap = tb.sim.capture().expect("capture enabled");
    // The censor's RSTs appear on the wire from the censor node.
    let injected = cap
        .sent_by(tb.censor)
        .filter(|r| {
            r.packet
                .as_tcp()
                .map(|t| t.flags.has_rst())
                .unwrap_or(false)
        })
        .count();
    assert!(injected >= 2, "RST pair(s) injected, saw {injected}");
}
