//! Failure-injection tests: lossy links, malformed inputs, and hostile
//! byte streams must degrade measurements gracefully — never panic, never
//! fabricate a confident verdict.

use underradar::censor::CensorPolicy;
use underradar::core::methods::ddos::DdosProbe;
use underradar::core::probe::Probe;
use underradar::core::testbed::{Testbed, TestbedConfig};
use underradar::ids::engine::DetectionEngine;
use underradar::ids::parser::{parse_ruleset, VarTable};
use underradar::netsim::packet::Packet;
use underradar::netsim::rng::SimRng;
use underradar::netsim::time::SimTime;
use underradar::netsim::wire::tcp::TcpFlags;
use underradar::protocols::dns::DnsMessage;
use underradar::protocols::email::EmailMessage;
use underradar::protocols::http::{HttpRequest, HttpResponse};

#[test]
fn ddos_probe_tolerates_mixed_outcomes_without_false_confidence() {
    // Give the probe a target that answers, then check the verdict logic
    // never claims censorship on a clean run even with few samples.
    let mut tb = Testbed::build(TestbedConfig {
        seed: 200,
        ..TestbedConfig::default()
    });
    let web = tb.target("bbc.com").expect("t").web_ip;
    let idx = tb.spawn_on_client(
        SimTime::ZERO,
        Box::new(DdosProbe::new(web, "bbc.com", "/", 3)),
    );
    tb.run_secs(60);
    let probe = tb.client_task::<DdosProbe>(idx).expect("probe");
    assert!(probe.verdict().is_reachable());
}

#[test]
fn malformed_dns_never_panics_the_stack() {
    let mut rng = SimRng::seed_from_u64(1);
    for len in [0usize, 1, 5, 11, 12, 13, 64, 512] {
        for _ in 0..50 {
            let bytes: Vec<u8> = (0..len).map(|_| rng.next_u32() as u8).collect();
            let _ = DnsMessage::decode(&bytes);
        }
    }
}

#[test]
fn malformed_http_and_email_never_panic() {
    let mut rng = SimRng::seed_from_u64(2);
    for _ in 0..500 {
        let len = rng.index(300);
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u32() as u8).collect();
        let _ = HttpRequest::parse(&bytes);
        let _ = HttpResponse::parse(&bytes);
        let _ = EmailMessage::from_wire(&String::from_utf8_lossy(&bytes));
    }
}

#[test]
fn hostile_packets_through_the_ids_engine() {
    let rules = parse_ruleset(
        "alert tcp any any -> any any (msg:\"kw\"; flow:established; content:\"secret\"; sid:1;)\n\
         alert udp any any -> any 53 (msg:\"dns\"; content:\"|07|example\"; sid:2;)",
        &VarTable::new(),
    )
    .expect("rules");
    let mut engine = DetectionEngine::new(rules);
    let mut rng = SimRng::seed_from_u64(3);
    let a = std::net::Ipv4Addr::new(10, 0, 0, 1);
    let b = std::net::Ipv4Addr::new(10, 0, 0, 2);
    // Random flag combinations, sequence numbers and payloads.
    for i in 0..2_000u32 {
        let flags = TcpFlags((rng.next_u32() % 64) as u8);
        let payload_len = rng.index(100);
        let payload: Vec<u8> = (0..payload_len).map(|_| rng.next_u32() as u8).collect();
        let pkt = Packet::tcp(
            a,
            b,
            (rng.next_u32() % 65_536) as u16,
            (rng.next_u32() % 65_536) as u16,
            rng.next_u32(),
            rng.next_u32(),
            flags,
            payload,
        );
        engine.process(SimTime::from_nanos(u64::from(i)), &pkt);
    }
    // Engine survived and kept counting.
    assert_eq!(engine.stats().packets, 2_000);
}

#[test]
fn measurement_verdicts_survive_lossy_testbed_links() {
    // The testbed with an explicitly lossy client link: TCP retransmission
    // should still complete a small measurement, or the probe should
    // answer Inconclusive/timeout — never panic, never misreport
    // "reachable" for a blackholed target.
    use underradar::core::methods::scan::SynScanProbe;
    use underradar::core::testbed::TargetSite;
    use underradar::netsim::addr::Cidr;

    let target = TargetSite::numbered("twitter.com", 0).web_ip;
    let policy = CensorPolicy::new().block_ip(Cidr::host(target));
    let mut tb = Testbed::build(TestbedConfig {
        policy,
        seed: 201,
        ..TestbedConfig::default()
    });
    let idx = tb.spawn_on_client(
        SimTime::ZERO,
        Box::new(SynScanProbe::new(target, vec![80, 443], vec![80])),
    );
    tb.run_secs(30);
    let verdict = tb.client_task::<SynScanProbe>(idx).expect("scan").verdict();
    assert!(
        verdict.is_censored(),
        "blackholed target must never read reachable: {verdict}"
    );
}

#[test]
fn scan_with_retries_is_accurate_on_a_lossy_link() {
    // 15% loss on the client's access link: without retries, dropped SYNs
    // or SYN/ACKs would read as "filtered" and fabricate a censorship
    // verdict. With nmap-style retries the scan stays accurate.
    use underradar::core::methods::scan::SynScanProbe;
    let mut tb = Testbed::build(TestbedConfig {
        client_link_loss: 0.15,
        seed: 202,
        ..TestbedConfig::default()
    });
    let target = tb.target("bbc.com").expect("t").web_ip;
    let idx = tb.spawn_on_client(
        SimTime::ZERO,
        Box::new(SynScanProbe::new(target, vec![80], vec![80]).with_retries(5)),
    );
    tb.run_secs(60);
    let verdict = tb.client_task::<SynScanProbe>(idx).expect("scan").verdict();
    assert!(
        verdict.is_reachable(),
        "retries must absorb random loss without a false censorship claim: {verdict}"
    );
}

#[test]
fn spam_probe_completes_over_lossy_link() {
    // TCP retransmission carries the SMTP transaction through 10% loss.
    use underradar::core::methods::spam::SpamProbe;
    use underradar::protocols::dns::DnsName;
    let mut tb = Testbed::build(TestbedConfig {
        client_link_loss: 0.10,
        seed: 203,
        ..TestbedConfig::default()
    });
    let idx = tb.spawn_on_client(
        SimTime::ZERO,
        Box::new(SpamProbe::new(
            &DnsName::parse("bbc.com").expect("n"),
            tb.resolver_ip,
            0,
        )),
    );
    tb.run_secs(120);
    let probe = tb.client_task::<SpamProbe>(idx).expect("probe");
    let v = probe.verdict();
    // Under loss the DNS datagrams themselves may vanish (no retry at the
    // probe layer) — Inconclusive is acceptable; a censorship claim is not.
    assert!(
        v.is_reachable() || matches!(v, underradar::core::verdict::Verdict::Inconclusive(_)),
        "loss must not fabricate censorship: {v}"
    );
}

#[test]
fn truncated_wire_packets_never_panic_anywhere() {
    let a = std::net::Ipv4Addr::new(10, 0, 0, 1);
    let b = std::net::Ipv4Addr::new(10, 0, 0, 2);
    let full = Packet::tcp(
        a,
        b,
        1,
        2,
        3,
        4,
        TcpFlags::psh_ack(),
        b"payload bytes".to_vec(),
    )
    .to_wire();
    for cut in 0..full.len() {
        let _ = Packet::from_wire(&full[..cut]);
    }
    // Every single-byte corruption either parses (benign field) or errors.
    for i in 0..full.len() {
        let mut corrupted = full.clone();
        corrupted[i] ^= 0xff;
        let _ = Packet::from_wire(&corrupted);
    }
}
