//! Ablation tests for the design decisions DESIGN.md §5 calls out:
//! RST-teardown semantics, MVR/alert ordering, and attribution
//! granularity. Each ablation flips one knob and checks the behaviour the
//! paper's argument depends on appears/disappears accordingly.

use underradar::censor::{CensorPolicy, TapCensor};
use underradar::core::methods::scan::SynScanProbe;
use underradar::core::methods::stateful::{MimicServer, RoutedMimicryNet, StatefulMimicry};
use underradar::core::ports::top_ports;
use underradar::core::probe::Probe;
use underradar::core::risk::RiskReport;
use underradar::core::testbed::{TargetSite, Testbed, TestbedConfig};
use underradar::netsim::addr::Cidr;
use underradar::netsim::host::Host;
use underradar::netsim::time::{SimDuration, SimTime};
use underradar::spoof::anonymity_set;

const PORT: u16 = 7443;
const ISS: u32 = 0x0102_0304;

/// Drive a spoofed stateful flow where the spoofed neighbor's RST fires
/// mid-stream (unlimited reply TTL), with the keyword split so only
/// *continuous* reassembly can catch it.
fn split_keyword_run(censor_rst_teardown: bool) -> (bool, bool) {
    let policy = CensorPolicy::new().block_keyword("falun");
    let mut net = RoutedMimicryNet::build(71, policy);
    if let Some(censor) = net.sim.node_mut::<TapCensor>(net.censor) {
        censor.set_rst_teardown(censor_rst_teardown);
    }
    net.sim
        .node_mut::<Host>(net.mserver)
        .expect("mserver")
        .spawn_task_at(
            SimTime::ZERO,
            // Unlimited TTL: the neighbor WILL see the SYN/ACK and RST the flow.
            Box::new(MimicServer::new(PORT, ISS, None)),
        );
    net.sim
        .node_mut::<Host>(net.client)
        .expect("client")
        .spawn_task_at(
            SimTime::ZERO,
            Box::new(
                StatefulMimicry::new(net.cover_ip, net.mserver_ip, PORT, ISS, b"GET /falun HTTP")
                    .with_split_payload(),
            ),
        );
    net.sim.run_for(SimDuration::from_secs(10)).expect("run");
    let censor = net.sim.node_ref::<TapCensor>(net.censor).expect("censor");
    let neighbor = net.sim.node_ref::<Host>(net.cover).expect("cover");
    (
        censor.stats().rst_injections > 0,
        neighbor.counters().rst_sent > 0,
    )
}

#[test]
fn rst_teardown_breaks_split_keyword_matching() {
    // Default censor (tears down on RST): the neighbor's RST lands between
    // the two keyword halves, the censor's reassembler forgets the flow,
    // and the split keyword is never assembled.
    let (censor_fired, neighbor_rst) = split_keyword_run(true);
    assert!(neighbor_rst, "the replay RST happened");
    assert!(
        !censor_fired,
        "teardown censor lost the stream and missed the split keyword"
    );
}

#[test]
fn rst_ignoring_censor_still_catches_split_keyword() {
    // Ablation: a censor that ignores RSTs keeps its buffer and catches
    // the keyword despite the replay RST.
    let (censor_fired, neighbor_rst) = split_keyword_run(false);
    assert!(neighbor_rst);
    assert!(
        censor_fired,
        "RST-ignoring censor reassembled across the RST"
    );
}

#[test]
fn mvr_ordering_is_what_protects_the_scan() {
    let target = TargetSite::numbered("twitter.com", 0).web_ip;
    let run = |alert_first: bool| -> usize {
        let policy = CensorPolicy::new().block_ip(Cidr::host(target));
        let mut tb = Testbed::build(TestbedConfig {
            policy,
            surveillance_alert_first: alert_first,
            seed: 72,
            ..TestbedConfig::default()
        });
        let idx = tb.spawn_on_client(
            SimTime::ZERO,
            Box::new(SynScanProbe::new(target, top_ports(120), vec![80])),
        );
        tb.run_secs(60);
        let verdict = tb.client_task::<SynScanProbe>(idx).expect("scan").verdict();
        assert!(verdict.is_censored(), "accuracy unaffected by the ablation");
        RiskReport::evaluate(&tb, &verdict).alerts_on_client
    };
    assert_eq!(run(false), 0, "discard-first: the scan evades");
    assert!(
        run(true) > 0,
        "alert-first: the SYN-fanout rule re-identifies the scan"
    );
}

#[test]
fn attribution_granularity_collapses_anonymity_sets() {
    // 32 observed sources spread over two /24s.
    let sources: Vec<std::net::Ipv4Addr> = (0..32u8)
        .map(|i| std::net::Ipv4Addr::new(10, 0, if i < 20 { 1 } else { 2 }, 10 + i))
        .collect();
    assert_eq!(anonymity_set(&sources, 32), 32);
    assert_eq!(anonymity_set(&sources, 24), 2);
    assert_eq!(anonymity_set(&sources, 16), 1);
    // The lesson: cover traffic confined to one /24 is only as good as the
    // adversary's attribution granularity is fine.
}

#[test]
fn censor_without_teardown_tracks_more_flows() {
    use underradar::ids::stream::StreamReassembler;
    use underradar::netsim::packet::Packet;
    use underradar::netsim::wire::tcp::TcpFlags;
    let c = std::net::Ipv4Addr::new(10, 0, 0, 1);
    let s = std::net::Ipv4Addr::new(10, 0, 0, 2);
    let run = |teardown: bool| -> usize {
        let mut r = StreamReassembler::new();
        r.rst_teardown = teardown;
        for i in 0..50u16 {
            let syn = Packet::tcp(c, s, 4000 + i, 80, 0, 0, TcpFlags::syn(), vec![]);
            r.process(&syn);
            let rst = Packet::tcp(c, s, 4000 + i, 80, 1, 0, TcpFlags::rst(), vec![]);
            r.process(&rst);
        }
        r.flow_count()
    };
    assert_eq!(run(true), 0, "teardown frees state");
    assert_eq!(run(false), 50, "the ablation pays with 50 lingering flows");
}
